"""Unit tests for cycle detection and topological ordering."""

import pytest

from repro.errors import CycleError
from repro.graph.cycles import find_cycle, graph_has_cycle, topological_order
from repro.graph.depgraph import DependencyGraph

A, B, C, D, E = (1, "a"), (1, "b"), (2, "c"), (2, "d"), (3, "e")


def deps_of(graph):
    return graph.dependencies


class TestFindCycle:
    def test_acyclic_returns_none(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        assert find_cycle([C], deps_of(g)) is None

    def test_self_loop(self):
        g = DependencyGraph()
        g.add_edge(A, A)
        cycle = find_cycle([A], deps_of(g))
        assert cycle == [A]

    def test_two_cycle(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(B, A)
        cycle = find_cycle([A], deps_of(g))
        assert cycle is not None and set(cycle) == {A, B}

    def test_long_cycle_found_from_outside(self):
        g = DependencyGraph()
        g.add_edge(A, B)  # A -> B means B depends... dependencies(B)=[A]
        g.add_edge(B, C)
        g.add_edge(C, A)
        g.add_edge(C, D)  # D hangs off the cycle
        cycle = find_cycle([D], deps_of(g))
        assert cycle is not None and set(cycle) == {A, B, C}

    def test_graph_has_cycle_wrapper(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        assert graph_has_cycle(g) is None
        g.add_edge(B, A)
        assert graph_has_cycle(g) is not None

    def test_diamond_is_not_a_cycle(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(A, C)
        g.add_edge(B, D)
        g.add_edge(C, D)
        assert find_cycle([D], deps_of(g)) is None


class TestTopologicalOrder:
    def test_dependencies_come_first(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        g.add_edge(A, C)
        order = topological_order([C], deps_of(g))
        assert order.index(A) < order.index(B) < order.index(C)

    def test_raises_on_cycle(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(B, A)
        with pytest.raises(CycleError):
            topological_order([A], deps_of(g))

    def test_multiple_seeds_deduplicated(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(A, C)
        order = topological_order([B, C], deps_of(g))
        assert order.count(A) == 1
        assert set(order) == {A, B, C}

    def test_deep_chain_no_recursion_error(self):
        g = DependencyGraph()
        slots = [(i, "x") for i in range(5000)]
        for a, b in zip(slots, slots[1:]):
            g.add_edge(a, b)
        order = topological_order([slots[-1]], deps_of(g))
        assert order[0] == slots[0] and order[-1] == slots[-1]
