"""Unit tests for the dependency graph."""

from repro.graph.depgraph import DependencyGraph, could_change

A, B, C, D = (1, "a"), (1, "b"), (2, "c"), (2, "d")


class TestEdges:
    def test_add_and_query(self):
        g = DependencyGraph()
        assert g.add_edge(A, B)
        assert g.has_edge(A, B)
        assert g.dependents(A) == [B]
        assert g.dependencies(B) == [A]
        assert len(g) == 1

    def test_duplicate_add_is_noop(self):
        g = DependencyGraph()
        assert g.add_edge(A, B)
        assert not g.add_edge(A, B)
        assert len(g) == 1

    def test_remove_edge(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        assert g.remove_edge(A, B)
        assert not g.has_edge(A, B)
        assert len(g) == 0
        assert g.dependents(A) == []

    def test_remove_missing_edge_is_noop(self):
        g = DependencyGraph()
        assert not g.remove_edge(A, B)

    def test_remove_slot_drops_both_directions(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        g.remove_slot(B)
        assert len(g) == 0
        assert g.dependents(A) == []
        assert g.dependencies(C) == []

    def test_degrees(self):
        g = DependencyGraph()
        g.add_edge(A, C)
        g.add_edge(B, C)
        g.add_edge(C, D)
        assert g.in_degree(C) == 2
        assert g.out_degree(C) == 1
        assert g.in_degree(A) == 0

    def test_insertion_order_preserved(self):
        g = DependencyGraph()
        g.add_edge(A, D)
        g.add_edge(A, B)
        g.add_edge(A, C)
        assert g.dependents(A) == [D, B, C]

    def test_slots_enumeration(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        assert set(g.slots()) == {A, B, C}


class TestIteratorViews:
    def test_iter_dependents_matches_list_view(self):
        g = DependencyGraph()
        g.add_edge(A, D)
        g.add_edge(A, B)
        g.add_edge(A, C)
        assert list(g.iter_dependents(A)) == g.dependents(A)
        assert list(g.iter_dependencies(B)) == g.dependencies(B)

    def test_iter_views_empty_for_unknown_slot(self):
        g = DependencyGraph()
        assert list(g.iter_dependents(A)) == []
        assert list(g.iter_dependencies(A)) == []

    def test_iter_view_is_live_not_a_copy(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        view = g.iter_dependents(A)
        g.add_edge(A, C)
        assert list(view) == [B, C]

    def test_empty_view_shared_and_not_polluted(self):
        g = DependencyGraph()
        empty = g.iter_dependents(A)
        g.add_edge(A, B)
        # A fresh lookup sees the edge; the old empty view stays empty.
        assert list(g.iter_dependents(A)) == [B]
        assert list(empty) == []


class TestCouldChange:
    def test_linear_chain(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(B, C)
        g.add_edge(C, D)
        region, edges = could_change(g, [A])
        assert region == {A, B, C, D}
        assert edges == 3

    def test_diamond_counts_internal_edges(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(A, C)
        g.add_edge(B, D)
        g.add_edge(C, D)
        region, edges = could_change(g, [A])
        assert region == {A, B, C, D}
        assert edges == 4

    def test_unreachable_excluded(self):
        g = DependencyGraph()
        g.add_edge(A, B)
        g.add_edge(C, D)
        region, __ = could_change(g, [A])
        assert region == {A, B}

    def test_seed_only(self):
        g = DependencyGraph()
        region, edges = could_change(g, [A])
        assert region == {A}
        assert edges == 0
