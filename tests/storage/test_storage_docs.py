"""docs/STORAGE.md must stay truthful about the names it cites.

Unlike docs/OBSERVABILITY.md (the exhaustive reference, held to the
registries by tests/obs/test_docs.py), STORAGE.md is narrative -- but every
metric, event type, and WAL payload kind it mentions must exist, and the
``reorg`` metric namespace it owns must be covered completely.
"""

from __future__ import annotations

import pathlib
import re

from repro.core.database import Database
from repro.obs.events import EVENT_TYPES
from repro.persistence.wal import REORG_PAYLOAD_TYPES
from repro.workloads import sum_node_schema

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "STORAGE.md"
# Backticked dotted names in the namespaces this doc talks about.
METRIC_REF = re.compile(r"`((?:reorg|wal|scheduler|latency)\.[a-z_.]+)`")
# `reorg_begin`/`reorg_end` in prose are WAL payload kinds, not events.
EVENT_REF = re.compile(r"`(reorg_epoch_start|reorg_step|reorg_epoch_end)`")
PAYLOAD_KIND = re.compile(r"\"type\": \"(\w+)\"")


def live_metrics() -> set[str]:
    return set(Database(sum_node_schema()).metrics().flatten())


def test_every_cited_metric_is_live():
    live = live_metrics()
    for name in METRIC_REF.findall(DOC.read_text()):
        # Timer families are cited by prefix (`latency.reorg_step` stands
        # for its .count/.mean/... children).
        resolves = name in live or any(m.startswith(name + ".") for m in live)
        assert resolves, f"STORAGE.md cites unknown metric {name!r}"


def test_reorg_namespace_fully_documented():
    text = DOC.read_text()
    reorg_metrics = {m for m in live_metrics() if m.startswith("reorg.")}
    cited = set(METRIC_REF.findall(text))
    assert reorg_metrics <= cited, (
        f"reorg metrics missing from STORAGE.md: {sorted(reorg_metrics - cited)}"
    )


def test_every_cited_event_type_is_live():
    cited = set(EVENT_REF.findall(DOC.read_text()))
    live_reorg_events = {t for t in EVENT_TYPES if t.startswith("reorg")}
    assert cited == live_reorg_events, (
        f"STORAGE.md events {sorted(cited)} != live {sorted(live_reorg_events)}"
    )


def test_wal_payload_kinds_match_registry():
    kinds = set(PAYLOAD_KIND.findall(DOC.read_text()))
    assert kinds == set(REORG_PAYLOAD_TYPES), (
        f"STORAGE.md WAL examples {sorted(kinds)} != "
        f"registry {sorted(REORG_PAYLOAD_TYPES)}"
    )


def test_cited_test_and_bench_files_exist():
    root = DOC.parent.parent
    for rel in re.findall(r"`((?:tests|benchmarks)/[\w/]+\.py)`", DOC.read_text()):
        assert (root / rel).exists(), f"STORAGE.md cites missing file {rel}"
