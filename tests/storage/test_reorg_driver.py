"""Online incremental reorganisation: driver, migration steps, idle lane."""

import pytest

from repro.core.database import Database
from repro.errors import StorageError
from repro.storage.manager import StorageManager
from repro.txn.manager import MultiUserScheduler
from repro.workloads import (
    build_software_project,
    link,
    skewed_access_pattern,
    sum_node_schema,
)


def partition(db: Database) -> set[frozenset[int]]:
    """The layout as a set of block populations (block ids abstracted away)."""
    groups: dict[int, set[int]] = {}
    for iid in db.instance_ids():
        groups.setdefault(db.storage.block_of(iid), set()).add(iid)
    return {frozenset(members) for members in groups.values()}


def block_invariants(db: Database) -> None:
    """Every instance placed exactly once; block accounting consistent."""
    seen: set[int] = set()
    for block_id in db.storage.disk.blocks:
        block = db.storage.disk.block(block_id)
        for iid, size in block.residents.items():
            assert iid not in seen, f"instance {iid} placed twice"
            seen.add(iid)
            assert db.storage.block_of(iid) == block_id
        assert block.used <= block.capacity
    assert seen == set(db.instance_ids())


@pytest.fixture
def trained():
    db = Database(sum_node_schema(), block_capacity=512, pool_capacity=4)
    project = build_software_project(
        db, n_components=6, modules_per_component=8, cross_links=2, seed=5
    )
    for iid in skewed_access_pattern(project, 200, seed=6):
        db.get_attr(iid, "total")
    return db, project


class TestMigrateGroup:
    def _manager(self) -> StorageManager:
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        for iid in (1, 2, 3, 4):
            mgr.place(iid, 30)
        return mgr

    def test_group_lands_in_one_fresh_block(self):
        mgr = self._manager()
        target, moved, skipped, __ = mgr.migrate_group([1, 3], lambda i: 30)
        assert moved == 2 and skipped == 0
        assert mgr.block_of(1) == target == mgr.block_of(3)

    def test_emptied_source_block_released(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 80)  # alone in its block
        source = mgr.block_of(1)
        __, __, __, released = mgr.migrate_group([1], lambda i: 80)
        assert released == 1
        assert source not in mgr.disk.blocks

    def test_dirty_source_frame_written_back_on_release(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 80)
        mgr.touch(1, dirty=True)  # resident and dirty
        before = mgr.buffer.stats.drop_writebacks
        mgr.migrate_group([1], lambda i: 80)
        assert mgr.buffer.stats.drop_writebacks == before + 1

    def test_surviving_source_block_marked_dirty(self):
        mgr = self._manager()  # 1,2,3 share a block (30*3), 4 overflows
        mgr.touch(2)  # make the shared block resident (clean)
        mgr.migrate_group([1], lambda i: 30)
        source = mgr.block_of(2)
        assert mgr.buffer._frames[source]  # dirty: must reach disk on eviction

    def test_deleted_instance_skipped(self):
        mgr = self._manager()
        mgr.remove(3)
        target, moved, skipped, __ = mgr.migrate_group([1, 3], lambda i: 30)
        assert moved == 1 and skipped == 1
        assert mgr.block_of(1) == target

    def test_grown_instance_stays_in_place(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 30)
        mgr.place(2, 30)
        mgr.resize(2, 90)  # no longer fits alongside 1 in a fresh block
        source = mgr.block_of(2)
        __, moved, skipped, __ = mgr.migrate_group([1, 2], lambda i: 90 if i == 2 else 30)
        assert moved == 1 and skipped == 1
        assert mgr.block_of(2) == source

    def test_all_skipped_releases_unused_target(self):
        mgr = self._manager()
        blocks_before = set(mgr.disk.blocks)
        target, moved, __, __ = mgr.migrate_group([99], lambda i: 30)
        assert target is None and moved == 0
        assert set(mgr.disk.blocks) == blocks_before

    def test_fill_block_reset_when_released(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 30)  # current fill block
        mgr.migrate_group([1], lambda i: 30)
        mgr.place(2, 30)  # must not raise on a released fill block

    def test_charged_to_reorg_writes(self):
        mgr = self._manager()
        reads_before = mgr.disk.stats.reads
        mgr.migrate_group([1, 2], lambda i: 30)
        assert mgr.disk.stats.reads == reads_before
        assert mgr.reorg_writes == 1

    def test_stepwise_migration_matches_apply_layout(self):
        plan = [[1, 3], [2], [4]]
        incremental = self._manager()
        for group in plan:
            incremental.migrate_group(group, lambda i: 30)
        offline = self._manager()
        offline.apply_layout(plan, sizes=lambda i: 30)

        def groups(mgr):
            by_block: dict[int, set[int]] = {}
            for iid in (1, 2, 3, 4):
                by_block.setdefault(mgr.block_of(iid), set()).add(iid)
            return {frozenset(v) for v in by_block.values()}

        assert groups(incremental) == groups(offline)


class TestReorgDriver:
    def test_epoch_reaches_offline_placement(self, trained):
        db, __ = trained
        twin = Database(sum_node_schema(), block_capacity=512, pool_capacity=4)
        twin_project = build_software_project(
            twin, n_components=6, modules_per_component=8, cross_links=2, seed=5
        )
        for iid in skewed_access_pattern(twin_project, 200, seed=6):
            twin.get_attr(iid, "total")
        db.reorganize_online()
        db.reorg.run_to_completion()
        twin.reorganize()
        assert partition(db) == partition(twin)

    def test_values_unchanged_across_epoch(self, trained):
        db, project = trained
        before = {iid: db.get_attr(iid, "total") for iid in project.all_nodes}
        epoch = db.reorganize_online()
        # Interleave queries with manual steps: the mixed layout must serve
        # exact values at every boundary.
        probe = project.all_nodes[::7]
        while db.reorg.active:
            db.reorg.step()
            for iid in probe:
                assert db.get_attr(iid, "total") == before[iid]
        assert epoch.completed
        after = {iid: db.get_attr(iid, "total") for iid in project.all_nodes}
        assert before == after

    def test_epoch_refreshes_statistics(self, trained):
        db, project = trained
        db.usage.observe_io(project.all_nodes[0], "inputs", 9.0)
        db.reorganize_online()
        db.reorg.run_to_completion()
        assert all(
            db.usage.access_count(iid) == 0 for iid in project.all_nodes
        )
        assert db.usage._averages == {}
        sampled = 0
        for iid in project.all_nodes:
            for port, __ in db.neighbors(iid):
                assert (iid, port) in db.usage.worst_case
                sampled += 1
        assert sampled > 0

    def test_offline_reorganize_refused_mid_epoch(self, trained):
        db, __ = trained
        db.reorganize_online()
        with pytest.raises(StorageError, match="online"):
            db.reorganize()
        db.reorg.run_to_completion()
        db.reorganize()  # fine once the epoch is done

    def test_second_epoch_refused_while_active(self, trained):
        db, __ = trained
        db.reorganize_online()
        with pytest.raises(StorageError, match="active"):
            db.reorganize_online()
        db.reorg.abandon()

    def test_abandon_leaves_consistent_layout(self, trained):
        db, project = trained
        before = {iid: db.get_attr(iid, "total") for iid in project.all_nodes}
        epoch = db.reorganize_online()
        for __ in range(3):
            db.reorg.step()
        db.reorg.abandon()
        assert epoch.abandoned and not epoch.completed
        assert not db.reorg.active
        block_invariants(db)
        assert {iid: db.get_attr(iid, "total") for iid in project.all_nodes} == before
        # Counters were not reset: the aborted epoch consumed no signal.
        assert sum(db.usage.instance_accesses.values()) > 0

    def test_empty_database_epoch_completes_immediately(self):
        db = Database(sum_node_schema())
        epoch = db.reorganize_online()
        assert epoch.completed and not db.reorg.active

    def test_background_lane_advances_epoch(self, trained):
        db, project = trained
        epoch = db.reorganize_online(steps_per_drain=2)
        pending = epoch.pending_steps
        assert pending > 0
        # Normal update work drains the scheduler, whose idle lane then runs
        # migration steps -- no explicit step() calls anywhere.
        target = project.components[0][0]
        rounds = 0
        while db.reorg.active and rounds < 200:
            db.set_attr(target, "weight", rounds)
            rounds += 1
        assert epoch.completed, f"epoch stalled at {epoch.pending_steps} pending"
        assert db.metrics().flatten()["scheduler.background_executed"] > 0
        block_invariants(db)

    def test_events_and_metrics(self, trained):
        db, __ = trained
        events = []
        db.obs.hub.subscribe(events.append)
        db.reorganize_online()
        db.reorg.run_to_completion()
        kinds = [e.TYPE for e in events if e.TYPE.startswith("reorg")]
        assert kinds[0] == "reorg_epoch_start"
        assert kinds[-1] == "reorg_epoch_end"
        steps = [e for e in events if e.TYPE == "reorg_step"]
        assert len(steps) == kinds.count("reorg_step") == len(kinds) - 2
        flat = db.metrics().flatten()
        assert flat["reorg.epochs_completed"] == 1
        assert flat["reorg.steps_run"] == len(steps)
        assert flat["reorg.instances_moved"] == sum(e.moved for e in steps)
        assert flat["latency.reorg_step.count"] == len(steps)

    def test_query_io_after_epoch_not_worse(self, trained):
        db, project = trained
        accesses = skewed_access_pattern(project, 200, seed=6)

        def epoch_reads():
            db.storage.buffer.clear()
            before = db.storage.disk.stats.snapshot()
            for iid in accesses:
                db.get_attr(iid, "total")
            return db.storage.disk.stats.delta_since(before).reads

        unclustered = epoch_reads()
        db.reorganize_online()
        db.reorg.run_to_completion()
        assert epoch_reads() <= unclustered


class TestConcurrentSessions:
    def test_sessions_keep_to_guarantees_during_epoch(self, trained):
        db, project = trained
        epoch = db.reorganize_online(steps_per_drain=1)
        hot = project.components[0]
        cold = project.components[-1]

        def writer(session):
            for i, iid in enumerate(hot[:4]):
                session.set_attr(iid, "weight", 100 + i)
                yield

        def reader(session):
            for iid in cold[:4]:
                session.get_attr(iid, "total")
                yield

        result = MultiUserScheduler(db).run(
            [("alice", writer), ("bob", reader)]
        )
        assert set(result.committed) == {"alice", "bob"}
        assert result.failed == {}
        # The epoch ran (or finished) from the idle lane without disturbing
        # either session's view.
        assert epoch.steps_run > 0
        if db.reorg.active:
            db.reorg.run_to_completion()
        block_invariants(db)
        for i, iid in enumerate(hot[:4]):
            assert db.get_attr(iid, "weight") == 100 + i
