"""Round-trip property tests for the storage codec (hypothesis).

Recovery correctness rests on this codec: every committed delta survives
only as ``encode_record`` output in the WAL, and every checkpoint as
``encode_value`` output in the image.  These properties pin the exact
round-trip contract -- values (including nested tuples/dicts and
non-string dict keys) and all five log-record kinds come back equal, with
container types preserved.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.instance import Connection
from repro.storage.codec import (
    decode_record,
    decode_value,
    encode_record,
    encode_value,
)
from repro.txn.log import (
    ConnectRecord,
    CreateRecord,
    DeleteRecord,
    DisconnectRecord,
    SetAttrRecord,
)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=60,
)

scalars = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
)

# Dict keys must decode back to something hashable: scalars and (nested)
# tuples of scalars -- deliberately including non-string keys.
hashable_keys = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=3).map(tuple),
    max_leaves=6,
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(hashable_keys, children, max_size=4),
    ),
    max_leaves=25,
)


def _assert_same_shape(a, b):
    """Equality plus container identity (tuple stays tuple, list stays list)."""
    assert type(a) is type(b) or (a == b and not isinstance(a, (tuple, list, dict)))
    if isinstance(a, (tuple, list)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_same_shape(x, y)
    elif isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            _assert_same_shape(a[key], b[key])
    else:
        assert a == b


@settings(**COMMON)
@given(values)
def test_value_round_trip(value):
    decoded = decode_value(encode_value(value))
    assert decoded == value
    _assert_same_shape(decoded, value)


@settings(**COMMON)
@given(st.dictionaries(hashable_keys, values, min_size=1, max_size=4))
def test_non_string_dict_keys_round_trip(mapping):
    decoded = decode_value(encode_value(mapping))
    assert decoded == mapping
    for original_key, decoded_key in zip(sorted(mapping, key=repr), sorted(decoded, key=repr)):
        assert type(original_key) is type(decoded_key)


@settings(**COMMON)
@given(values)
def test_encoding_is_json_safe(value):
    import json

    json.loads(json.dumps(encode_value(value)))


# -- log records -------------------------------------------------------------

iids = st.integers(min_value=1, max_value=10_000)
names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"),
    min_size=1,
    max_size=10,
)

set_attr_records = st.builds(
    SetAttrRecord, iid=iids, attr=names, old_value=values, new_value=values
)
create_records = st.builds(
    CreateRecord,
    iid=iids,
    class_name=names,
    intrinsics=st.dictionaries(names, values, max_size=3),
)
connect_records = st.builds(
    ConnectRecord, iid_a=iids, port_a=names, iid_b=iids, port_b=names
)
disconnect_records = st.builds(
    DisconnectRecord,
    iid_a=iids,
    port_a=names,
    iid_b=iids,
    port_b=names,
    index_a=st.integers(min_value=0, max_value=50),
    index_b=st.integers(min_value=0, max_value=50),
)

connections = st.builds(Connection, peer=iids, peer_port=names)


@st.composite
def delete_records(draw):
    # The snapshot's out_of_date list is stored sorted, and its subtype set
    # comes back from a sorted list; generate canonical forms so equality
    # is exact.
    snapshot = {
        "iid": draw(iids),
        "class_name": draw(names),
        "attrs": draw(st.dictionaries(names, values, max_size=3)),
        "connections": draw(
            st.dictionaries(names, st.lists(connections, max_size=3), max_size=3)
        ),
        "active_subtypes": draw(st.sets(names, max_size=3)),
        "out_of_date": sorted(draw(st.sets(names, max_size=3))),
    }
    return DeleteRecord(snapshot=snapshot)


log_records = st.one_of(
    set_attr_records,
    create_records,
    delete_records(),
    connect_records,
    disconnect_records,
)


@settings(**COMMON)
@given(log_records)
def test_log_record_round_trip(record):
    assert decode_record(encode_record(record)) == record


@settings(**COMMON)
@given(st.lists(log_records, max_size=6))
def test_record_sequences_round_trip_through_json(records):
    import json

    payload = json.loads(json.dumps([encode_record(r) for r in records]))
    assert [decode_record(p) for p in payload] == records
