"""Unit tests for disk blocks and the simulated disk."""

import pytest

from repro.errors import BlockOverflowError, StorageError
from repro.storage.block import Block
from repro.storage.disk import DiskStats, SimulatedDisk


class TestBlock:
    def test_add_and_remove(self):
        block = Block(0, capacity=100)
        block.add(1, 40)
        assert 1 in block and block.free == 60
        assert block.remove(1) == 40
        assert block.free == 100

    def test_overflowing_record_rejected(self):
        block = Block(0, capacity=100)
        with pytest.raises(BlockOverflowError):
            block.add(1, 101)

    def test_full_block_rejects(self):
        block = Block(0, capacity=100)
        block.add(1, 80)
        with pytest.raises(StorageError, match="free"):
            block.add(2, 30)

    def test_duplicate_resident_rejected(self):
        block = Block(0, capacity=100)
        block.add(1, 10)
        with pytest.raises(StorageError, match="already stored"):
            block.add(1, 10)

    def test_remove_absent_rejected(self):
        block = Block(0, capacity=100)
        with pytest.raises(StorageError):
            block.remove(9)

    def test_resize_in_place(self):
        block = Block(0, capacity=100)
        block.add(1, 40)
        assert block.resize(1, 60)
        assert block.used == 60
        assert block.resize(1, 10)
        assert block.used == 10

    def test_resize_overflow_returns_false(self):
        block = Block(0, capacity=100)
        block.add(1, 40)
        block.add(2, 40)
        assert not block.resize(1, 70)
        assert block.used == 80  # unchanged

    def test_positive_capacity_required(self):
        with pytest.raises(StorageError):
            Block(0, capacity=0)


class TestSimulatedDisk:
    def test_allocate_and_counters(self):
        disk = SimulatedDisk(block_capacity=256)
        block = disk.allocate_block()
        disk.read(block.block_id)
        disk.write(block.block_id)
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1
        assert disk.stats.total_io == 2

    def test_release_recycles_ids(self):
        disk = SimulatedDisk()
        a = disk.allocate_block()
        disk.release_block(a.block_id)
        b = disk.allocate_block()
        assert b.block_id == a.block_id

    def test_release_nonempty_rejected(self):
        disk = SimulatedDisk()
        block = disk.allocate_block()
        block.add(1, 10)
        with pytest.raises(StorageError, match="non-empty"):
            disk.release_block(block.block_id)

    def test_unknown_block_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(StorageError):
            disk.read(42)

    def test_occupancy(self):
        disk = SimulatedDisk(block_capacity=100)
        assert disk.occupancy() == 0.0
        block = disk.allocate_block()
        block.add(1, 50)
        assert disk.occupancy() == pytest.approx(0.5)

    def test_stats_snapshot_delta(self):
        disk = SimulatedDisk()
        block = disk.allocate_block()
        disk.read(block.block_id)
        snap = disk.stats.snapshot()
        disk.read(block.block_id)
        disk.read(block.block_id)
        delta = disk.stats.delta_since(snap)
        assert delta.reads == 2 and delta.writes == 0

    def test_recycled_blocks_counted_separately(self):
        # Regression: recycling a freed id used to inflate blocks_allocated,
        # so reorganisation-heavy benchmarks over-reported storage growth.
        disk = SimulatedDisk()
        a = disk.allocate_block()
        disk.release_block(a.block_id)
        disk.allocate_block()  # recycles a's id
        disk.allocate_block()  # fresh id
        assert disk.stats.blocks_allocated == 2
        assert disk.stats.blocks_recycled == 1

    def test_recycle_stats_in_snapshot_delta(self):
        disk = SimulatedDisk()
        a = disk.allocate_block()
        snap = disk.stats.snapshot()
        disk.release_block(a.block_id)
        disk.allocate_block()
        delta = disk.stats.delta_since(snap)
        assert delta.blocks_allocated == 0
        assert delta.blocks_recycled == 1
