"""Tests for the paper's greedy clustering algorithm (E5)."""

import pytest

from repro.errors import StorageError
from repro.storage.clustering import (
    greedy_cluster,
    locality_score,
    worst_case_estimates,
)
from repro.storage.usage import UsageStats


def ring_neighbors(edges):
    """Build a neighbor oracle from undirected (a, b) pairs."""
    adjacency: dict[int, list[tuple[str, int]]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(("p", b))
        adjacency.setdefault(b, []).append(("p", a))
    return lambda iid: adjacency.get(iid, [])


class TestGreedyCluster:
    def test_every_instance_assigned_exactly_once(self):
        sizes = {i: 10 for i in range(10)}
        neighbors = ring_neighbors([(i, i + 1) for i in range(9)])
        layout = greedy_cluster(sizes, neighbors, UsageStats(), block_capacity=35)
        flat = [iid for group in layout for iid in group]
        assert sorted(flat) == list(range(10))

    def test_respects_block_capacity(self):
        sizes = {i: 10 for i in range(10)}
        neighbors = ring_neighbors([])
        layout = greedy_cluster(sizes, neighbors, UsageStats(), block_capacity=25)
        for group in layout:
            assert sum(sizes[i] for i in group) <= 25

    def test_oversized_record_rejected(self):
        with pytest.raises(StorageError):
            greedy_cluster({1: 100}, ring_neighbors([]), UsageStats(), 50)

    def test_most_referenced_instance_seeds_first_block(self):
        sizes = {1: 10, 2: 10, 3: 10}
        usage = UsageStats()
        for __ in range(5):
            usage.note_instance_access(3)
        layout = greedy_cluster(sizes, ring_neighbors([]), usage, 30)
        assert layout[0][0] == 3

    def test_hot_relationship_pulls_neighbor_into_block(self):
        # 1 is hot; relationship 1-3 is crossed often, 1-2 never.
        sizes = {1: 10, 2: 10, 3: 10}
        usage = UsageStats()
        usage.note_instance_access(1)
        for __ in range(5):
            usage.note_crossing(1, "to3")
        adjacency = {
            1: [("to2", 2), ("to3", 3)],
            2: [("to1", 1)],
            3: [("to1", 1)],
        }
        layout = greedy_cluster(
            sizes, lambda iid: adjacency.get(iid, []), usage, block_capacity=20
        )
        assert layout[0] == [1, 3]

    def test_connected_cluster_packs_together(self):
        # Two 4-cliques joined by one weak edge: blocks of capacity 4 should
        # each hold one clique when crossings concentrate inside cliques.
        sizes = {i: 10 for i in range(8)}
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        edges += [(a, b) for a in range(4, 8) for b in range(a + 1, 8)]
        edges.append((0, 4))  # weak inter-clique edge
        neighbors = ring_neighbors(edges)
        usage = UsageStats()
        for a, b in edges[:-1]:
            for __ in range(3):
                usage.note_crossing(a, "p")
                usage.note_crossing(b, "p")
        layout = greedy_cluster(sizes, neighbors, usage, block_capacity=40)
        groups = [set(g) for g in layout]
        assert {0, 1, 2, 3} in groups
        assert {4, 5, 6, 7} in groups


class TestLocalityScore:
    def test_perfect_locality(self):
        neighbors = ring_neighbors([(1, 2)])
        usage = UsageStats()
        usage.note_crossing(1, "p")
        assert locality_score([[1, 2]], neighbors, usage) == 1.0

    def test_zero_locality(self):
        neighbors = ring_neighbors([(1, 2)])
        usage = UsageStats()
        usage.note_crossing(1, "p")
        assert locality_score([[1], [2]], neighbors, usage) == 0.0

    def test_no_observations_scores_one(self):
        assert locality_score([[1]], ring_neighbors([]), UsageStats()) == 1.0


class TestWorstCaseEstimates:
    def test_counts_distinct_peer_blocks(self):
        adjacency = {1: [("p", 2), ("p", 3)], 2: [], 3: []}
        block_of = {1: 0, 2: 1, 3: 1}.__getitem__
        estimates = worst_case_estimates([1, 2, 3], lambda i: adjacency.get(i, []), block_of)
        assert estimates[(1, "p")] == 1.0  # both peers share block 1

    def test_spread_peers_increase_estimate(self):
        adjacency = {1: [("p", 2), ("p", 3)]}
        block_of = {1: 0, 2: 1, 3: 2}.__getitem__
        estimates = worst_case_estimates([1], lambda i: adjacency.get(i, []), block_of)
        assert estimates[(1, "p")] == 2.0

    def test_home_block_excluded(self):
        # Regression: a port whose peers all share the instance's own block
        # costs no extra I/O -- the home block is already resident when the
        # traversal starts.  The old code counted it and returned 1.0,
        # making the scheduler over-prioritise crossings that are free.
        adjacency = {1: [("p", 2), ("p", 3)], 2: [("p", 1)], 3: [("p", 1)]}
        block_of = {1: 0, 2: 0, 3: 0}.__getitem__
        estimates = worst_case_estimates(
            [1, 2, 3], lambda i: adjacency.get(i, []), block_of
        )
        assert estimates[(1, "p")] == 0.0
        assert estimates[(2, "p")] == 0.0

    def test_home_block_excluded_among_remote_peers(self):
        # One co-resident peer and one remote peer: only the remote block
        # counts toward the estimate.
        adjacency = {1: [("p", 2), ("p", 3)]}
        block_of = {1: 0, 2: 0, 3: 1}.__getitem__
        estimates = worst_case_estimates([1], lambda i: adjacency.get(i, []), block_of)
        assert estimates[(1, "p")] == 1.0
