"""Unit tests for the buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def pool_with_blocks(capacity: int, n_blocks: int):
    disk = SimulatedDisk(256)
    ids = [disk.allocate_block().block_id for __ in range(n_blocks)]
    return disk, BufferPool(disk, capacity=capacity), ids


class TestFetch:
    def test_miss_reads_from_disk(self):
        disk, pool, ids = pool_with_blocks(4, 2)
        pool.fetch(ids[0])
        assert disk.stats.reads == 1
        assert pool.stats.misses == 1
        assert pool.is_resident(ids[0])

    def test_hit_does_not_read(self):
        disk, pool, ids = pool_with_blocks(4, 2)
        pool.fetch(ids[0])
        pool.fetch(ids[0])
        assert disk.stats.reads == 1
        assert pool.stats.hits == 1

    def test_lru_eviction(self):
        disk, pool, ids = pool_with_blocks(2, 3)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        pool.fetch(ids[2])  # evicts ids[0]
        assert not pool.is_resident(ids[0])
        assert pool.is_resident(ids[1]) and pool.is_resident(ids[2])
        assert pool.stats.evictions == 1

    def test_touch_refreshes_lru_position(self):
        disk, pool, ids = pool_with_blocks(2, 3)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        pool.fetch(ids[0])  # refresh 0; 1 becomes LRU
        pool.fetch(ids[2])
        assert pool.is_resident(ids[0])
        assert not pool.is_resident(ids[1])

    def test_dirty_eviction_writes_back(self):
        disk, pool, ids = pool_with_blocks(1, 2)
        pool.fetch(ids[0], dirty=True)
        pool.fetch(ids[1])  # evicts dirty ids[0]
        assert disk.stats.writes == 1
        assert pool.stats.dirty_writebacks == 1

    def test_clean_eviction_does_not_write(self):
        disk, pool, ids = pool_with_blocks(1, 2)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        assert disk.stats.writes == 0

    def test_on_load_callback(self):
        disk = SimulatedDisk(256)
        block = disk.allocate_block()
        loaded = []
        pool = BufferPool(disk, capacity=2, on_load=loaded.append)
        pool.fetch(block.block_id)
        pool.fetch(block.block_id)  # hit: no second callback
        assert loaded == [block.block_id]


class TestControl:
    def test_mark_dirty_requires_residency(self):
        disk, pool, ids = pool_with_blocks(2, 1)
        with pytest.raises(StorageError):
            pool.mark_dirty(ids[0])
        pool.fetch(ids[0])
        pool.mark_dirty(ids[0])

    def test_flush_writes_dirty_frames_once(self):
        disk, pool, ids = pool_with_blocks(4, 2)
        pool.fetch(ids[0], dirty=True)
        pool.fetch(ids[1])
        pool.flush()
        assert disk.stats.writes == 1
        pool.flush()  # now clean: no further writes
        assert disk.stats.writes == 1

    def test_clear_empties_pool(self):
        disk, pool, ids = pool_with_blocks(4, 2)
        pool.fetch(ids[0], dirty=True)
        pool.clear()
        assert not pool.is_resident(ids[0])
        assert disk.stats.writes == 1  # flushed on clear

    def test_drop_writes_back_a_dirty_frame(self):
        # Regression: drop() used to discard the frame wholesale, losing
        # any in-memory modifications the next fetch then re-read stale.
        disk, pool, ids = pool_with_blocks(4, 2)
        pool.fetch(ids[0], dirty=True)
        pool.drop(ids[0])
        assert not pool.is_resident(ids[0])
        assert disk.stats.writes == 1
        assert pool.stats.dirty_writebacks == 1
        assert pool.stats.drop_writebacks == 1

    def test_drop_of_a_clean_frame_does_not_write(self):
        disk, pool, ids = pool_with_blocks(4, 2)
        pool.fetch(ids[0])
        pool.drop(ids[0])
        assert disk.stats.writes == 0
        assert pool.stats.drop_writebacks == 0

    def test_drop_of_an_absent_block_is_harmless(self):
        disk, pool, ids = pool_with_blocks(4, 1)
        pool.drop(ids[0])
        assert disk.stats.writes == 0

    def test_hit_rate(self):
        disk, pool, ids = pool_with_blocks(4, 1)
        assert pool.stats.hit_rate == 0.0
        pool.fetch(ids[0])
        pool.fetch(ids[0])
        pool.fetch(ids[0])
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_capacity_must_be_positive(self):
        disk = SimulatedDisk()
        with pytest.raises(StorageError):
            BufferPool(disk, capacity=0)
