"""Database-level reorganisation tests (the paper's self-adaptive loop)."""

import pytest

from repro.core.database import Database
from repro.workloads import (
    build_software_project,
    link,
    skewed_access_pattern,
    sum_node_schema,
)


@pytest.fixture
def trained():
    db = Database(sum_node_schema(), block_capacity=512, pool_capacity=4)
    project = build_software_project(
        db, n_components=6, modules_per_component=8, cross_links=2, seed=5
    )
    for iid in skewed_access_pattern(project, 200, seed=6):
        db.get_attr(iid, "total")
    return db, project


class TestReorganize:
    def test_values_unchanged_by_reorganisation(self, trained):
        db, project = trained
        before = {
            iid: db.get_attr(iid, "total") for iid in project.all_nodes
        }
        db.reorganize()
        after = {iid: db.get_attr(iid, "total") for iid in project.all_nodes}
        assert before == after

    def test_every_instance_still_placed(self, trained):
        db, project = trained
        db.reorganize()
        for iid in project.all_nodes:
            assert db.storage.is_placed(iid)

    def test_usage_counters_reset_for_next_epoch(self, trained):
        db, project = trained
        assert db.usage.access_count(project.all_nodes[0]) >= 0
        db.reorganize()
        assert all(
            db.usage.access_count(iid) == 0 for iid in project.all_nodes
        )

    def test_worst_case_estimates_installed(self, trained):
        db, project = trained
        db.reorganize()
        # Every connected port has a cluster-time worst-case estimate.
        sampled = 0
        for iid in project.all_nodes:
            for port, __ in db.neighbors(iid):
                assert (iid, port) in db.usage.worst_case
                sampled += 1
        assert sampled > 0

    def test_reorganisation_reduces_reads_on_trained_pattern(self, trained):
        db, project = trained
        accesses = skewed_access_pattern(project, 200, seed=6)

        def epoch_reads():
            db.storage.buffer.clear()
            before = db.storage.disk.stats.snapshot()
            for iid in accesses:
                db.get_attr(iid, "total")
            return db.storage.disk.stats.delta_since(before).reads

        unclustered = epoch_reads()
        # Retrain counters (cleared by the measurement setup is fine: the
        # epoch above re-recorded them) and reorganise.
        db.reorganize()
        clustered = epoch_reads()
        assert clustered <= unclustered

    def test_updates_work_after_reorganisation(self, trained):
        db, project = trained
        db.reorganize()
        target = project.components[0][0]
        downstream = project.components[0][-1]
        old = db.get_attr(downstream, "total")
        db.set_attr(target, "weight", 500)
        assert db.get_attr(downstream, "total") > old

    def test_reorganize_empty_database(self):
        db = Database(sum_node_schema())
        assert db.reorganize() == []

    def test_reorganize_reseeds_decaying_averages(self):
        # Regression: averages observed against the *previous* layout must
        # not survive a reorganisation -- expected_io has to track the new
        # blocks, which the freshly computed worst-case estimates describe.
        db = Database(sum_node_schema(), block_capacity=512, pool_capacity=4)
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)
        link(db, a, b)
        db.usage.observe_io(b, "inputs", 9.0)
        assert db.usage.expected_io(b, "inputs") != db.usage.worst_case_io(
            b, "inputs"
        )
        db.reorganize()
        # Both nodes fit one block, so the new worst case is 0 extra reads
        # and the stale 9.0-seeded average is gone.
        assert db.usage.worst_case_io(b, "inputs") == 0.0
        assert db.usage.expected_io(b, "inputs") == 0.0


class TestDeleteForgetsGhostWeights:
    def test_delete_clears_peer_crossing_counts(self):
        # Regression: deleting an instance left its peers' crossing counts
        # toward it alive, feeding greedy_cluster ghost weights.
        db = Database(sum_node_schema())
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)
        link(db, a, b)
        db.usage.note_crossing(a, "outputs")
        db.usage.note_crossing(b, "inputs")
        db.delete(b)
        assert db.usage.crossing_count(b, "inputs") == 0
        assert db.usage.crossing_count(a, "outputs") == 0

    def test_delete_clears_peer_predictors(self):
        db = Database(sum_node_schema())
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)
        link(db, a, b)
        db.usage.observe_io(a, "outputs", 5.0)
        db.usage.set_worst_case(a, "outputs", 5.0)
        db.delete(b)
        assert db.usage.expected_io(a, "outputs") == db.usage.default_worst_case
