"""Static cost priors in greedy clustering: cold start only."""

from __future__ import annotations

from repro.core.database import Database
from repro.dsl import compile_schema
from repro.storage.clustering import greedy_cluster
from repro.storage.usage import UsageStats

SIZES = {1: 10, 2: 10, 3: 10}
EDGES = {
    1: [("a", 2), ("c", 3)],
    2: [("b", 1)],
    3: [("d", 1)],
}


def _neighbors(iid):
    return EDGES[iid]


def test_static_weights_order_a_cold_frontier():
    # No observed usage at all: without priors the frontier is a tie and
    # insertion order wins (1 clusters with 2); the static prior on the
    # (1, "c") edge flips the choice to 3.
    capacity = 20
    plain = greedy_cluster(SIZES, _neighbors, UsageStats(), capacity)
    assert plain[0] == [1, 2]
    primed = greedy_cluster(
        SIZES,
        _neighbors,
        UsageStats(),
        capacity,
        static_weights={(1, "c"): 5.0},
    )
    assert primed[0] == [1, 3]


def test_observed_counters_override_the_prior():
    # Once an edge has any observed weight its prior is ignored: with one
    # crossing on each edge the (misleadingly large) prior on (1, "c")
    # no longer counts, and the heavier learned edge wins.
    usage = UsageStats()
    for __ in range(3):
        usage.note_crossing(1, "a")
    usage.note_crossing(1, "c")
    layout = greedy_cluster(
        SIZES,
        _neighbors,
        usage,
        20,
        static_weights={(1, "c"): 100.0},
    )
    assert layout[0] == [1, 2]


def test_prior_still_guides_edges_never_observed():
    # Per-edge fallback: an edge that has never been crossed keeps its
    # prior even while other edges carry learned counters, so schema
    # importance seeds exactly the part of the frontier usage cannot
    # rank yet.
    usage = UsageStats()
    usage.note_crossing(1, "a")
    layout = greedy_cluster(
        SIZES,
        _neighbors,
        usage,
        20,
        static_weights={(1, "c"): 100.0},
    )
    assert layout[0] == [1, 3]


SCHEMA = """
relationship staffing is
    effort : integer from plug;
end relationship;

object class task is
  relationships
    staffed_by : staffing multi socket;
  attributes
    total : integer;
  rules
    total = begin
        acc : integer;
        acc := 0;
        for each e related to staffed_by do
            acc := acc + e.effort;
        end for;
        return acc;
    end;
end object;

object class engineer is
  relationships
    works_on : staffing plug;
  attributes
    effort : integer;
  rules
    works_on effort = effort;
end object;
"""


def test_database_expands_port_weights_over_live_connections():
    db = Database(compile_schema(SCHEMA))
    task = db.create("task")
    eng = db.create("engineer", effort=3)
    db.connect(task, "staffed_by", eng, "works_on")
    weights = db.static_cluster_weights()
    assert weights is not None
    assert weights[(task, "staffed_by")] > 0
    assert weights[(eng, "works_on")] > 0


def test_reorganize_accepts_the_priors_end_to_end():
    db = Database(compile_schema(SCHEMA))
    task = db.create("task")
    engineers = [db.create("engineer", effort=i) for i in range(3)]
    for eng in engineers:
        db.connect(task, "staffed_by", eng, "works_on")
    layout = db.reorganize()
    placed = sorted(iid for group in layout for iid in group)
    assert placed == sorted([task, *engineers])
