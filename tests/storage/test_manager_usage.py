"""Unit tests for the storage manager and usage statistics."""

import pytest

from repro.errors import StorageError
from repro.storage.manager import StorageManager
from repro.storage.usage import DecayingAverage, UsageStats


class TestPlacement:
    def test_place_fills_current_block(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        a = mgr.place(1, 40)
        b = mgr.place(2, 40)
        assert a == b  # same block

    def test_place_overflows_to_new_block(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        a = mgr.place(1, 80)
        b = mgr.place(2, 80)
        assert a != b

    def test_duplicate_placement_rejected(self):
        mgr = StorageManager()
        mgr.place(1, 10)
        with pytest.raises(StorageError):
            mgr.place(1, 10)

    def test_remove_frees_space(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        block = mgr.place(1, 80)
        mgr.remove(1)
        assert not mgr.is_placed(1)
        assert mgr.disk.block(block).free == 100

    def test_resize_in_place(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        block = mgr.place(1, 40)
        mgr.resize(1, 60)
        assert mgr.block_of(1) == block

    def test_resize_relocates_on_overflow(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 60)
        mgr.place(2, 30)
        original = mgr.block_of(1)
        mgr.resize(1, 90)  # no longer fits alongside 2
        assert mgr.block_of(1) != original

    def test_block_of_unplaced_raises(self):
        mgr = StorageManager()
        with pytest.raises(StorageError):
            mgr.block_of(9)


class TestTouch:
    def test_touch_counts_access_and_reads(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=2)
        mgr.place(1, 10)
        mgr.touch(1)
        assert mgr.usage.access_count(1) == 1
        assert mgr.disk.stats.reads == 1
        mgr.touch(1)  # now resident: no further read
        assert mgr.disk.stats.reads == 1
        assert mgr.usage.access_count(1) == 2

    def test_is_resident(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=2)
        mgr.place(1, 10)
        assert not mgr.is_resident(1)
        mgr.touch(1)
        assert mgr.is_resident(1)


class TestApplyLayout:
    def test_layout_installs_groups(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        for iid in (1, 2, 3, 4):
            mgr.place(iid, 20)
        mgr.apply_layout([[1, 3], [2, 4]], sizes=lambda iid: 20)
        assert mgr.block_of(1) == mgr.block_of(3)
        assert mgr.block_of(2) == mgr.block_of(4)
        assert mgr.block_of(1) != mgr.block_of(2)

    def test_layout_must_cover_all_instances(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 20)
        mgr.place(2, 20)
        with pytest.raises(StorageError, match="mismatch"):
            mgr.apply_layout([[1]], sizes=lambda iid: 20)

    def test_layout_rejects_unknown_instances(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 20)
        with pytest.raises(StorageError, match="mismatch"):
            mgr.apply_layout([[1, 99]], sizes=lambda iid: 20)

    def test_reorg_charged_separately(self):
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        mgr.place(1, 20)
        reads_before = mgr.disk.stats.reads
        mgr.apply_layout([[1]], sizes=lambda iid: 20)
        assert mgr.disk.stats.reads == reads_before
        assert mgr.reorg_writes == 1


class TestDecayingAverage:
    def test_starts_at_seed(self):
        avg = DecayingAverage(seed=4.0, decay=0.5)
        assert avg.value == 4.0

    def test_moves_toward_observations(self):
        avg = DecayingAverage(seed=4.0, decay=0.5)
        avg.observe(0.0)
        assert avg.value == 2.0
        avg.observe(0.0)
        assert avg.value == 1.0

    def test_converges_to_stationary_signal(self):
        avg = DecayingAverage(seed=10.0, decay=0.5)
        for __ in range(30):
            avg.observe(3.0)
        assert avg.value == pytest.approx(3.0, abs=1e-6)


class TestUsageStats:
    def test_crossing_counters(self):
        usage = UsageStats()
        usage.note_crossing(1, "p")
        usage.note_crossing(1, "p")
        assert usage.crossing_count(1, "p") == 2
        assert usage.crossing_count(1, "q") == 0

    def test_expected_io_uses_worst_case_before_observation(self):
        usage = UsageStats()
        usage.set_worst_case(1, "p", 7.0)
        assert usage.expected_io(1, "p") == 7.0

    def test_expected_io_adapts(self):
        usage = UsageStats(decay=0.5)
        usage.set_worst_case(1, "p", 8.0)
        usage.observe_io(1, "p", 0.0)
        assert usage.expected_io(1, "p") == 4.0

    def test_default_worst_case(self):
        usage = UsageStats()
        assert usage.expected_io(1, "p") == usage.default_worst_case

    def test_forget_instance(self):
        usage = UsageStats()
        usage.note_instance_access(1)
        usage.note_crossing(1, "p")
        usage.observe_io(1, "p", 2.0)
        usage.set_worst_case(1, "p", 3.0)
        usage.forget_instance(1)
        assert usage.access_count(1) == 0
        assert usage.crossing_count(1, "p") == 0
        assert usage.expected_io(1, "p") == usage.default_worst_case

    def test_forget_instance_clears_peer_ghosts(self):
        # Regression: deleting instance 2 must also drop the *peers'*
        # statistics pointing at it, or greedy_cluster keeps weighing seed
        # order and frontier pushes with relationships that no longer exist.
        usage = UsageStats()
        usage.note_crossing(1, "to2")
        usage.observe_io(1, "to2", 3.0)
        usage.set_worst_case(1, "to2", 2.0)
        usage.note_crossing(2, "to1")
        usage.forget_instance(2, peer_keys=[(1, "to2")])
        assert usage.crossing_count(2, "to1") == 0
        assert usage.crossing_count(1, "to2") == 0
        assert usage.expected_io(1, "to2") == usage.default_worst_case

    def test_reseed_averages_falls_back_to_worst_case(self):
        usage = UsageStats(decay=0.5)
        usage.set_worst_case(1, "p", 8.0)
        usage.observe_io(1, "p", 0.0)
        assert usage.expected_io(1, "p") == 4.0
        usage.reseed_averages()
        assert usage.expected_io(1, "p") == 8.0

    def test_reset_counters_keeps_predictors(self):
        usage = UsageStats()
        usage.note_instance_access(1)
        usage.observe_io(1, "p", 2.0)
        usage.reset_counters()
        assert usage.access_count(1) == 0
        # Decaying average survives the epoch reset.
        assert usage.expected_io(1, "p") != usage.default_worst_case
