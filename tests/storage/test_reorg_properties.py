"""Property tests for online reorganisation (hypothesis).

Two equivalences pin the online path to the offline one:

* migrating a plan step by step ends in the identical partition that
  ``apply_layout`` installs in one stop-the-world rewrite;
* an online epoch over a trained workload never worsens the locality
  score of the layout, measured against the statistics it planned from.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings, strategies as st

from repro.core.database import Database
from repro.storage.clustering import locality_score
from repro.storage.manager import StorageManager
from repro.workloads import (
    build_software_project,
    skewed_access_pattern,
    sum_node_schema,
)


def manager_partition(mgr: StorageManager, iids) -> set[frozenset[int]]:
    groups: dict[int, set[int]] = {}
    for iid in iids:
        groups.setdefault(mgr.block_of(iid), set()).add(iid)
    return {frozenset(g) for g in groups.values()}


def db_partition(db: Database) -> set[frozenset[int]]:
    groups: dict[int, set[int]] = {}
    for iid in db.instance_ids():
        groups.setdefault(db.storage.block_of(iid), set()).add(iid)
    return {frozenset(g) for g in groups.values()}


def db_layout(db: Database) -> list[list[int]]:
    groups: dict[int, list[int]] = {}
    for iid in db.instance_ids():
        groups.setdefault(db.storage.block_of(iid), []).append(iid)
    return list(groups.values())


@st.composite
def sizes_and_plan(draw):
    """Record sizes plus a valid migration plan over them."""
    n = draw(st.integers(min_value=1, max_value=12))
    sizes = {
        iid: draw(st.integers(min_value=10, max_value=50)) for iid in range(n)
    }
    # Partition 0..n-1 into groups that each fit one 100-unit block.
    iids = list(sizes)
    draw(st.randoms(use_true_random=False)).shuffle(iids)
    plan: list[list[int]] = []
    current: list[int] = []
    used = 0
    for iid in iids:
        if current and used + sizes[iid] > 100:
            plan.append(current)
            current, used = [], 0
        current.append(iid)
        used += sizes[iid]
    if current:
        plan.append(current)
    return sizes, plan


@given(sizes_and_plan())
@settings(max_examples=80, deadline=None)
def test_stepwise_migration_equals_apply_layout(case):
    sizes, plan = case

    def build() -> StorageManager:
        mgr = StorageManager(block_capacity=100, pool_capacity=4)
        for iid, size in sizes.items():
            mgr.place(iid, size)
        return mgr

    incremental = build()
    for group in plan:
        incremental.migrate_group(group, sizes.__getitem__)
    offline = build()
    offline.apply_layout(plan, sizes=sizes.__getitem__)
    assert manager_partition(incremental, sizes) == manager_partition(
        offline, sizes
    )


workload = st.fixed_dictionaries(
    {
        "n_components": st.integers(min_value=2, max_value=4),
        "modules_per_component": st.integers(min_value=2, max_value=6),
        "cross_links": st.integers(min_value=0, max_value=3),
        "seed": st.integers(min_value=0, max_value=10_000),
        "accesses": st.integers(min_value=20, max_value=120),
        "access_seed": st.integers(min_value=0, max_value=10_000),
    }
)


def trained_database(params):
    db = Database(sum_node_schema(), block_capacity=256, pool_capacity=4)
    project = build_software_project(
        db,
        n_components=params["n_components"],
        modules_per_component=params["modules_per_component"],
        cross_links=params["cross_links"],
        seed=params["seed"],
    )
    for iid in skewed_access_pattern(
        project, params["accesses"], seed=params["access_seed"]
    ):
        db.get_attr(iid, "total")
    return db, project


@given(workload)
@settings(max_examples=25, deadline=None)
def test_online_epoch_matches_offline_partition(params):
    online_db, __ = trained_database(params)
    offline_db, __ = trained_database(params)
    online_db.reorganize_online()
    online_db.reorg.run_to_completion()
    offline_db.reorganize()
    assert db_partition(online_db) == db_partition(offline_db)


@given(workload)
@settings(max_examples=25, deadline=None)
def test_online_epoch_never_worsens_locality(params):
    db, __ = trained_database(params)
    # Score against the statistics the epoch plans from: finishing the
    # epoch resets the live counters, so judge both layouts by a snapshot.
    usage = copy.deepcopy(db.usage)
    before = locality_score(db_layout(db), db.neighbors, usage)
    db.reorganize_online()
    db.reorg.run_to_completion()
    after = locality_score(db_layout(db), db.neighbors, usage)
    assert after >= before
