"""Persistence (save/load) tests."""

import json

import pytest

from repro.core.database import Database
from repro.errors import StorageError
from repro.storage.codec import (
    decode_record,
    decode_value,
    dump_database,
    encode_record,
    encode_value,
    load_database,
    restore_database,
    save_database,
)
from repro.txn.log import ConnectRecord, CreateRecord, SetAttrRecord
from repro.workloads import build_chain, link, sum_node_schema


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [42, 3.5, "text", True, None, (1, 2, 3), [1, "a"], {"k": (1, 2)}],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_stays_tuple(self):
        decoded = decode_value(encode_value((1, (2, 3))))
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[1], tuple)

    def test_json_compatible(self):
        json.dumps(encode_value({"a": (1, [2, "x"])}))

    def test_unserialisable_rejected(self):
        with pytest.raises(StorageError):
            encode_value(object())


class TestRecordCodec:
    @pytest.mark.parametrize(
        "record",
        [
            SetAttrRecord(3, "weight", 1, 2),
            CreateRecord(7, "node", {"weight": 4}),
            ConnectRecord(1, "inputs", 2, "outputs"),
        ],
    )
    def test_round_trip(self, record):
        assert decode_record(encode_record(record)) == record


class TestDatabaseImage:
    def build(self):
        db = Database(sum_node_schema(), pool_capacity=64)
        nodes = build_chain(db, 6)
        db.set_attr(nodes[0], "weight", 10)
        db.get_attr(nodes[2], "total")  # leave a stale tail
        return db, nodes

    def test_values_survive(self, tmp_path):
        db, nodes = self.build()
        path = tmp_path / "image.json"
        save_database(db, str(path))
        restored = load_database(str(path), sum_node_schema())
        assert restored.get_attr(nodes[-1], "total") == 15
        assert restored.get_attr(nodes[0], "weight") == 10

    def test_out_of_date_marks_survive(self):
        db, nodes = self.build()
        image = dump_database(db)
        restored = restore_database(image, sum_node_schema())
        assert restored.engine.out_of_date == db.engine.out_of_date

    def test_connection_order_survives(self):
        db = Database(sum_node_schema())
        hub = db.create("node")
        ups = [db.create("node", weight=i) for i in range(3)]
        for up in reversed(ups):  # deliberately non-id order
            link(db, up, hub)
        image = dump_database(db)
        restored = restore_database(image, sum_node_schema())
        assert restored.view(hub).connections("inputs") == list(reversed(ups))

    def test_history_survives_and_undo_works(self):
        db, nodes = self.build()
        restored = restore_database(dump_database(db), sum_node_schema())
        restored.undo()  # undoes the set_attr
        assert restored.get_attr(nodes[-1], "total") == 6

    def test_id_allocation_continues(self):
        db, nodes = self.build()
        restored = restore_database(dump_database(db), sum_node_schema())
        assert restored.create("node") > max(nodes)

    def test_block_layout_survives(self):
        db, nodes = self.build()
        layout = {iid: db.storage.block_of(iid) for iid in db.instance_ids()}
        restored = restore_database(dump_database(db), sum_node_schema())
        # Same co-residency structure (block ids may be renumbered).
        groups = {}
        for iid, block in layout.items():
            groups.setdefault(block, set()).add(iid)
        restored_groups = {}
        for iid in restored.instance_ids():
            restored_groups.setdefault(
                restored.storage.block_of(iid), set()
            ).add(iid)
        assert sorted(map(sorted, groups.values())) == sorted(
            map(sorted, restored_groups.values())
        )

    def test_subtype_membership_survives(self, person_db):
        from tests.conftest import give_cars, make_person_schema

        alice = person_db.create("person", name="alice")
        give_cars(person_db, alice, 4)
        assert person_db.is_member(alice, "car_buff")
        restored = restore_database(
            dump_database(person_db), make_person_schema()
        )
        assert restored.is_member(alice, "car_buff")
        assert restored.get_attr(alice, "club") == "road&track"

    def test_schema_mismatch_rejected(self):
        from repro.core.schema import Schema

        db, __ = self.build()
        image = dump_database(db)
        with pytest.raises(StorageError, match="does not declare"):
            restore_database(image, Schema().freeze())

    def test_format_version_checked(self):
        db, __ = self.build()
        image = dump_database(db)
        image["format"] = 99
        with pytest.raises(StorageError, match="format"):
            restore_database(image, sum_node_schema())

    def test_restored_db_fully_functional(self):
        db, nodes = self.build()
        restored = restore_database(dump_database(db), sum_node_schema())
        extra = restored.create("node", weight=100)
        link(restored, nodes[-1], extra)
        assert restored.get_attr(extra, "total") == 115
        restored.set_attr(nodes[0], "weight", 0)
        assert restored.get_attr(extra, "total") == 105
