"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.core.rules import AttributeTarget, Local, Received, Rule, TransmitTarget
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)
from repro.workloads import sum_node_schema


@pytest.fixture
def schema() -> Schema:
    """A fresh, frozen sum-node schema."""
    return sum_node_schema()


@pytest.fixture
def db(schema: Schema) -> Database:
    """A database over the sum-node schema with generous buffering."""
    return Database(schema, pool_capacity=64)


@pytest.fixture
def tiny_db(schema: Schema) -> Database:
    """A database with a tiny buffer pool (4 blocks) and small blocks,
    for storage-sensitive tests."""
    return Database(schema, block_capacity=512, pool_capacity=4)


def make_person_schema() -> Schema:
    """A second schema used by subtype/constraint tests.

    Persons own cars; ``car_count`` is derived; the predicate subtype
    ``car_buff`` is "all Persons who own more than three cars" (the paper's
    own example); a constraint may require at least one car.
    """
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType("ownership", [FlowDecl("unit", "integer", End.PLUG, default=0)])
    )
    schema.add_class(
        ObjectClass(
            "automobile",
            attributes=[AttributeDef("model", "string")],
            ports=[PortDef("owner", "ownership", End.PLUG, multi=False)],
            rules=[
                Rule(TransmitTarget("owner", "unit"), {}, lambda: 1),
            ],
        )
    )
    schema.add_class(
        ObjectClass(
            "person",
            attributes=[
                AttributeDef("name", "string"),
                AttributeDef("age", "integer"),
                AttributeDef("car_count", "integer", AttrKind.DERIVED),
            ],
            ports=[PortDef("cars", "ownership", End.SOCKET, multi=True)],
            rules=[
                Rule(
                    AttributeTarget("car_count"),
                    {"units": Received("cars", "unit")},
                    lambda units: sum(units),
                ),
            ],
        )
    )
    from repro.core.rules import SubtypePredicate

    schema.add_class(
        ObjectClass(
            "car_buff",
            attributes=[AttributeDef("club", "string", default="road&track")],
            supertype="person",
            predicate=SubtypePredicate(
                subtype_name="car_buff",
                inputs={"count": Local("car_count")},
                predicate=lambda count: count > 3,
            ),
        )
    )
    return schema.freeze()


@pytest.fixture
def person_db() -> Database:
    return Database(make_person_schema(), pool_capacity=64)


def give_cars(db: Database, person: int, n: int) -> list[int]:
    """Create ``n`` automobiles owned by ``person``."""
    cars = []
    for i in range(n):
        car = db.create("automobile", model=f"model-{i}")
        db.connect(car, "owner", person, "cars")
        cars.append(car)
    return cars
