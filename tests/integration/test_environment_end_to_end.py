"""End-to-end: one database hosting the whole software environment.

Section 3: Cactis can "represent the entire range of data within a system
... all the way up to facts about the personnel involved in a project ...
in a single unified framework."  This test compiles the milestone schema
and the project-master schema into ONE database, links them (a milestone
tracks each component), layers versioning and the presentation panel on
top, and drives a realistic episode through every subsystem at once.
"""

import pytest

from repro.core.database import Database
from repro.dsl import compile_schema
from repro.core.schema import Schema
from repro.env.milestones import MILESTONE_SCHEMA
from repro.env.presentation import ReportView
from repro.env.project import PROJECT_SCHEMA
from repro.errors import TransactionAborted
from repro.versions import VersionStream

LINKING_EXTENSION = """
relationship tracks is
    weight : integer from plug;
end relationship;

object class tracked_component subtype of component is
  relationships
    tracked_by : tracks multi plug;
  rules
    tracked_by weight = open_bug_weight;
end object;
"""


@pytest.fixture
def environment():
    schema = Schema()
    compile_schema(MILESTONE_SCHEMA, schema=schema, freeze=False)
    compile_schema(PROJECT_SCHEMA, schema=schema, freeze=False)
    compile_schema(LINKING_EXTENSION, schema=schema, freeze=True)
    return Database(schema, pool_capacity=256)


class TestUnifiedEnvironment:
    def test_full_episode(self, environment):
        db = environment
        stream = VersionStream(db)

        # --- populate: components + milestones in one database -----------
        compiler = db.create(
            "tracked_component", name="compiler", local_cost=50
        )
        editor = db.create("tracked_component", name="editor", local_cost=30)
        suite = db.create("component", name="suite", local_cost=5)
        db.connect(compiler, "part_of", suite, "parts")
        db.connect(editor, "part_of", suite, "parts")

        ship = db.create("milestone", sched_compl=40, local_work=2)
        build_all = db.create("milestone", sched_compl=30, local_work=25)
        db.connect(ship, "depends_on", build_all, "consists_of")

        assert db.get_attr(suite, "total_cost") == 85
        assert db.get_attr(ship, "exp_compl") == 27
        stream.tag("baseline")

        # --- the panel mirrors both subsystems ---------------------------
        panel = ReportView(db, title="program status")
        panel.add_row("suite cost", suite, "total_cost")
        panel.add_row("suite health", suite, "health")
        panel.add_row("ship expected", ship, "exp_compl")
        first_render = panel.render()
        assert "suite cost" in first_render

        # --- a bug lands; health and the panel react ----------------------
        bug = db.create("bug_report", title="codegen fault", severity=11)
        db.connect(bug, "against", compiler, "bugs")
        assert db.get_attr(suite, "health") == "red"
        assert panel.is_stale()
        panel.render()

        # --- the schedule slips; constraint guards costs ------------------
        db.set_attr(build_all, "local_work", 45)
        assert db.get_attr(ship, "late") is True
        with pytest.raises(TransactionAborted):
            db.set_attr(compiler, "local_cost", -10)
        assert db.get_attr(suite, "total_cost") == 85

        stream.tag("crunch")

        # --- fix the bug; everything recovers -----------------------------
        db.set_attr(bug, "open", False)
        assert db.get_attr(suite, "health") == "green"
        db.set_attr(build_all, "local_work", 20)
        assert db.get_attr(ship, "late") is False
        stream.tag("recovered")

        # --- time travel across the whole environment ---------------------
        stream.checkout("crunch")
        assert db.get_attr(suite, "health") == "red"
        assert db.get_attr(ship, "late") is True
        stream.checkout("baseline")
        assert db.get_attr(suite, "health") == "green"
        assert db.get_attr(ship, "exp_compl") == 27
        stream.checkout("recovered")
        assert db.get_attr(suite, "health") == "green"
        assert db.get_attr(ship, "exp_compl") == 22

    def test_cross_schema_link(self, environment):
        """The tracked_component extension transmits bug weight out of the
        project subsystem; any consumer schema can subscribe to it."""
        db = environment
        component = db.create("tracked_component", name="kernel", local_cost=9)
        bug = db.create("bug_report", title="panic", severity=6)
        db.connect(bug, "against", component, "bugs")
        assert db.get_transmitted(component, "tracked_by", "weight") == 6
        db.set_attr(bug, "open", False)
        assert db.get_transmitted(component, "tracked_by", "weight") == 0

    def test_persistence_of_the_whole_environment(self, environment, tmp_path):
        from repro.storage.codec import load_database, save_database

        db = environment
        component = db.create("tracked_component", name="kernel", local_cost=9)
        milestone = db.create("milestone", sched_compl=10, local_work=4)
        path = tmp_path / "env.json"
        save_database(db, str(path))

        schema = Schema()
        compile_schema(MILESTONE_SCHEMA, schema=schema, freeze=False)
        compile_schema(PROJECT_SCHEMA, schema=schema, freeze=False)
        compile_schema(LINKING_EXTENSION, schema=schema, freeze=True)
        restored = load_database(str(path), schema)
        assert restored.get_attr(component, "total_cost") == 9
        assert restored.get_attr(milestone, "exp_compl") == 4
