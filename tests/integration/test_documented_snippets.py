"""The code snippets shipped in README/package docstrings must keep working."""

from repro import (
    AttrKind,
    AttributeDef,
    AttributeTarget,
    Database,
    End,
    FlowDecl,
    Local,
    ObjectClass,
    PortDef,
    Received,
    RelationshipType,
    Rule,
    Schema,
    TransmitTarget,
)


def test_readme_quickstart():
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType("dep", [FlowDecl("total", "integer", End.PLUG)])
    )
    schema.add_class(ObjectClass(
        "node",
        attributes=[
            AttributeDef("weight", "integer"),
            AttributeDef("total", "integer", AttrKind.DERIVED),
        ],
        ports=[
            PortDef("inputs", "dep", End.SOCKET, multi=True),
            PortDef("outputs", "dep", End.PLUG, multi=True),
        ],
        rules=[
            Rule(AttributeTarget("total"),
                 {"w": Local("weight"), "ins": Received("inputs", "total")},
                 lambda w, ins: w + sum(ins)),
            Rule(TransmitTarget("outputs", "total"),
                 {"t": Local("total")}, lambda t: t),
        ],
    ))

    db = Database(schema)
    a = db.create("node", weight=1)
    b = db.create("node", weight=2)
    db.connect(b, "inputs", a, "outputs")
    assert db.get_attr(b, "total") == 3
    db.set_attr(a, "weight", 10)
    assert db.get_attr(b, "total") == 12
    db.undo()
    assert db.get_attr(b, "total") == 3


def test_readme_dsl_figure1():
    from repro.dsl import compile_schema

    schema = compile_schema("""
        relationship milestone_dep is
            exp_time : time from plug;
        end relationship;

        object class milestone is
          relationships
            depends_on  : milestone_dep multi socket;
            consists_of : milestone_dep multi plug;
          attributes
            sched_compl : time;
            local_work  : time;
            exp_compl   : time;
            late        : boolean;
          rules
            exp_compl = begin
                latest : time;
                latest := TIME0;
                for each dep related to depends_on do
                    latest := later_of(latest, dep.exp_time);
                end for;
                return latest + local_work;
            end;
            late = later_than(exp_compl, sched_compl);
            consists_of exp_time = exp_compl;
        end object;
    """)
    db = Database(schema)
    m = db.create("milestone", local_work=3, sched_compl=2)
    assert db.get_attr(m, "exp_compl") == 3
    assert db.get_attr(m, "late") is True


def test_tutorial_ticket_schema():
    from repro.dsl import compile_schema

    schema = compile_schema("""
    relationship blocking is
        open_weight : integer from plug;
    end relationship;

    object class ticket is
      relationships
        blocks     : blocking multi plug;
        blocked_by : blocking multi socket;
      attributes
        title    : string;
        severity : integer = 1;
        open     : boolean = true;
        effective_weight : integer;
      rules
        effective_weight = begin
            w : integer;
            if open then
                w := severity;
            end if;
            for each dep related to blocked_by do
                w := w + dep.open_weight;
            end for;
            return w;
        end;
        blocks open_weight = effective_weight;
      constraints
        sane_severity : severity >= 1 and severity <= 10;
    end object;
    """)
    db = Database(schema)
    parser = db.create("ticket", title="parser crash", severity=7)
    lexer = db.create("ticket", title="lexer bug", severity=4)
    db.connect(parser, "blocked_by", lexer, "blocks")
    assert db.get_attr(parser, "effective_weight") == 11
    db.set_attr(lexer, "open", False)
    assert db.get_attr(parser, "effective_weight") == 7
    db.undo()
    assert db.get_attr(parser, "effective_weight") == 11

    from repro.errors import TransactionAborted
    import pytest

    with pytest.raises(TransactionAborted):
        db.set_attr(parser, "severity", 11)
