"""Property-based tests over the core invariants (hypothesis).

Three families:

* **engine equivalence** -- any update/query script observed through the
  incremental engine matches every baseline engine and a from-scratch
  recomputation;
* **undo inversion** -- undoing N committed transactions restores the exact
  observable state from N transactions ago;
* **dependency-graph consistency** -- after any primitive sequence the
  dependency graph matches what a fresh reconstruction would build.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import breadth_first_factory, depth_first_factory
from repro.core.database import Database
from repro.workloads import (
    build_random_dag,
    run_update_script,
    sum_node_schema,
)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=30,
)


def fresh_db(factory=None):
    return Database(
        sum_node_schema(), engine_factory=factory, pool_capacity=256
    )


@st.composite
def dag_and_script(draw, max_nodes=18, max_ops=25):
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    edge_prob = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "get"]),
                st.integers(min_value=0, max_value=max_nodes - 1),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=max_ops,
        )
    )
    return n_nodes, edge_prob, seed, ops


def apply_ops(db, nodes, ops):
    observed = []
    for op, index, value in ops:
        iid = nodes[index % len(nodes)]
        if op == "set":
            db.set_attr(iid, "weight", value)
        else:
            observed.append(db.get_attr(iid, "total"))
    return observed


def full_state(db, nodes):
    return [(db.get_attr(n, "weight"), db.get_attr(n, "total")) for n in nodes]


class TestEngineEquivalence:
    @given(dag_and_script())
    @settings(**COMMON)
    def test_incremental_matches_eager_dfs(self, case):
        n_nodes, edge_prob, seed, ops = case
        results = []
        for factory in (None, depth_first_factory()):
            db = fresh_db(factory)
            nodes = build_random_dag(db, n_nodes, edge_prob, seed=seed)
            observed = apply_ops(db, nodes, ops)
            results.append((observed, full_state(db, nodes)))
        assert results[0] == results[1]

    @given(dag_and_script())
    @settings(**COMMON)
    def test_incremental_matches_eager_bfs(self, case):
        n_nodes, edge_prob, seed, ops = case
        results = []
        for factory in (None, breadth_first_factory()):
            db = fresh_db(factory)
            nodes = build_random_dag(db, n_nodes, edge_prob, seed=seed)
            observed = apply_ops(db, nodes, ops)
            results.append((observed, full_state(db, nodes)))
        assert results[0] == results[1]

    @given(dag_and_script())
    @settings(**COMMON)
    def test_totals_match_independent_recomputation(self, case):
        n_nodes, edge_prob, seed, ops = case
        db = fresh_db()
        nodes = build_random_dag(db, n_nodes, edge_prob, seed=seed)
        apply_ops(db, nodes, ops)
        # Recompute every total from intrinsics alone, by graph walk.
        memo = {}

        def total(iid):
            if iid not in memo:
                ins = db.view(iid).connections("inputs")
                memo[iid] = db.get_attr(iid, "weight") + sum(total(i) for i in ins)
            return memo[iid]

        for node in nodes:
            assert db.get_attr(node, "total") == total(node)


class TestUndoInversion:
    @given(dag_and_script(max_ops=12))
    @settings(**COMMON)
    def test_undo_all_restores_initial_state(self, case):
        n_nodes, edge_prob, seed, ops = case
        db = fresh_db()
        nodes = build_random_dag(db, n_nodes, edge_prob, seed=seed)
        initial = full_state(db, nodes)
        history_before = len(db.txn.history)
        committed = 0
        for op, index, value in ops:
            if op != "set":
                continue
            iid = nodes[index % len(nodes)]
            if db.get_attr(iid, "weight") == value:
                continue  # no-op set logs nothing
            db.set_attr(iid, "weight", value)
            committed += 1
        assert len(db.txn.history) == history_before + committed
        for __ in range(committed):
            db.undo()
        assert full_state(db, nodes) == initial

    @given(st.integers(min_value=1, max_value=6), st.integers(0, 9999))
    @settings(**COMMON)
    def test_undo_restores_structure_after_deletes(self, n_deletes, seed):
        db = fresh_db()
        nodes = build_random_dag(db, 12, 0.4, seed=seed)
        snapshot = {
            n: sorted(db.view(n).connections("inputs")) for n in nodes
        }
        initial = full_state(db, nodes)
        import random

        rng = random.Random(seed)
        victims = rng.sample(nodes, min(n_deletes, len(nodes)))
        for victim in victims:
            db.delete(victim)
        for __ in victims:
            db.undo()
        assert full_state(db, nodes) == initial
        assert {
            n: sorted(db.view(n).connections("inputs")) for n in nodes
        } == snapshot


class TestDependencyGraphConsistency:
    @given(dag_and_script(max_ops=10))
    @settings(**COMMON)
    def test_depgraph_matches_reconstruction(self, case):
        n_nodes, edge_prob, seed, ops = case
        db = fresh_db()
        nodes = build_random_dag(db, n_nodes, edge_prob, seed=seed)
        apply_ops(db, nodes, ops)
        # Reconstruct expected edges from instance connections and rules.
        expected = set()
        for iid in db.instance_ids():
            inst = db.instance(iid)
            expected.add(((iid, "weight"), (iid, "total")))
            expected.add(((iid, "total"), (iid, "outputs>total")))
            for conn in inst.connections_on("inputs"):
                expected.add(
                    ((conn.peer, f"{conn.peer_port}>total"), (iid, "total"))
                )
        actual = set()
        for slot in db.depgraph.slots():
            for dep in db.depgraph.dependents(slot):
                actual.add((slot, dep))
        assert actual == expected
