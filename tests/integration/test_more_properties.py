"""Additional property-based suites: versions, clustering, DSL round trips."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.database import Database
from repro.dsl import compile_schema
from repro.dsl.printer import format_schema
from repro.storage.clustering import greedy_cluster
from repro.storage.usage import UsageStats
from repro.versions import VersionStream
from repro.workloads import build_random_dag, sum_node_schema

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=25,
)


class TestVersionProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=9999),
    )
    @settings(**COMMON)
    def test_every_version_restores_its_exact_state(
        self, n_versions, edits_per_version, seed
    ):
        db = Database(sum_node_schema(), pool_capacity=256)
        stream = VersionStream(db)
        nodes = build_random_dag(db, 10, 0.3, seed=seed)
        rng = random.Random(seed)
        states = {}
        stream.tag("v0")
        states["v0"] = [db.get_attr(n, "total") for n in nodes]
        for v in range(1, n_versions + 1):
            for __ in range(edits_per_version):
                db.set_attr(rng.choice(nodes), "weight", rng.randrange(100))
            name = f"v{v}"
            stream.tag(name)
            states[name] = [db.get_attr(n, "total") for n in nodes]
        # Visit versions in a random order; each must restore exactly.
        names = list(states)
        rng.shuffle(names)
        for name in names:
            stream.checkout(name)
            assert [db.get_attr(n, "total") for n in nodes] == states[name]

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=9999),
    )
    @settings(**COMMON)
    def test_branches_are_independent(self, n_branches, seed):
        db = Database(sum_node_schema(), pool_capacity=256)
        stream = VersionStream(db)
        nodes = build_random_dag(db, 6, 0.3, seed=seed)
        stream.tag("base")
        rng = random.Random(seed)
        expected = {}
        for branch in range(n_branches):
            stream.checkout("base")
            target = rng.choice(nodes)
            value = 1000 + branch
            db.set_attr(target, "weight", value)
            name = f"branch{branch}"
            stream.tag(name)
            expected[name] = (target, value)
        for name, (target, value) in expected.items():
            stream.checkout(name)
            assert db.get_attr(target, "weight") == value


class TestClusteringProperties:
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=9999),
        st.integers(min_value=40, max_value=200),
    )
    @settings(**COMMON)
    def test_layout_is_a_partition_respecting_capacity(
        self, n_instances, seed, capacity
    ):
        rng = random.Random(seed)
        sizes = {
            iid: rng.randrange(10, min(40, capacity) + 1)
            for iid in range(n_instances)
        }
        edges = [
            (rng.randrange(n_instances), rng.randrange(n_instances))
            for __ in range(n_instances)
        ]
        adjacency: dict[int, list] = {}
        for a, b in edges:
            if a != b:
                adjacency.setdefault(a, []).append(("p", b))
                adjacency.setdefault(b, []).append(("p", a))
        usage = UsageStats()
        for __ in range(n_instances):
            usage.note_instance_access(rng.randrange(n_instances))
        layout = greedy_cluster(
            sizes, lambda i: adjacency.get(i, []), usage, capacity
        )
        flat = [iid for group in layout for iid in group]
        assert sorted(flat) == sorted(sizes)  # partition: all, exactly once
        for group in layout:
            assert sum(sizes[i] for i in group) <= capacity


class TestDslRoundTripProperties:
    @st.composite
    def expression(draw, depth=0):
        if depth > 3 or draw(st.booleans()):
            return draw(
                st.sampled_from(["x", "y", "1", "2", "10", "TIME0"])
            )
        op = draw(st.sampled_from(["+", "-", "*", "and", "or", "<", ">="]))
        left = draw(TestDslRoundTripProperties.expression(depth=depth + 1))
        right = draw(TestDslRoundTripProperties.expression(depth=depth + 1))
        if op in ("and", "or"):
            return f"({left} > 0 {op} {right} > 0)"
        return f"({left} {op} {right})"

    @given(expression())
    @settings(**COMMON)
    def test_print_parse_preserves_semantics(self, expr_text):
        source = (
            "object class c is attributes x : integer; y : integer; "
            f"d : integer; rules d = {expr_text}; end;"
        )
        original = compile_schema(source)
        reparsed = compile_schema(format_schema(original))
        rule_a = original.resolved("c").rule_for["d"]
        rule_b = reparsed.resolved("c").rule_for["d"]
        for x in (0, 1, 7):
            for y in (0, 3):
                kwargs = {}
                if "l_x" in rule_a.inputs:
                    kwargs["l_x"] = x
                if "l_y" in rule_a.inputs:
                    kwargs["l_y"] = y
                assert rule_a.body(**kwargs) == rule_b.body(**kwargs)
