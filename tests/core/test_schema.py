"""Unit tests for schema construction and validation."""

import pytest

from repro.core.rules import (
    AttributeTarget,
    Local,
    Received,
    Rule,
    SubtypePredicate,
    TransmitTarget,
)
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)
from repro.errors import SchemaError, UnknownTypeError


def minimal_schema() -> Schema:
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType("r", [FlowDecl("v", "integer", End.PLUG)])
    )
    return schema


class TestRelationshipType:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            RelationshipType("")

    def test_duplicate_flow_rejected(self):
        rel = RelationshipType("r", [FlowDecl("v", "integer", End.PLUG)])
        with pytest.raises(SchemaError, match="already declares"):
            rel.add_flow(FlowDecl("v", "string", End.SOCKET))

    def test_flow_direction_queries(self):
        rel = RelationshipType(
            "r",
            [
                FlowDecl("a", "integer", End.PLUG),
                FlowDecl("b", "integer", End.SOCKET),
            ],
        )
        assert [f.value for f in rel.values_sent_by(End.PLUG)] == ["a"]
        assert [f.value for f in rel.values_received_by(End.PLUG)] == ["b"]
        assert [f.value for f in rel.values_sent_by(End.SOCKET)] == ["b"]

    def test_unknown_flow_raises(self):
        rel = RelationshipType("r")
        with pytest.raises(SchemaError, match="declares no value"):
            rel.flow("missing")

    def test_end_opposite(self):
        assert End.PLUG.opposite is End.SOCKET
        assert End.SOCKET.opposite is End.PLUG


class TestObjectClass:
    def test_duplicate_attribute_rejected(self):
        cls = ObjectClass("c", attributes=[AttributeDef("x", "integer")])
        with pytest.raises(SchemaError, match="already declares attribute"):
            cls.add_attribute(AttributeDef("x", "string"))

    def test_port_attribute_name_collision(self):
        cls = ObjectClass("c", attributes=[AttributeDef("x", "integer")])
        with pytest.raises(SchemaError, match="collides"):
            cls.add_port(PortDef("x", "r", End.PLUG))

    def test_predicate_requires_supertype(self):
        with pytest.raises(SchemaError, match="must name a supertype"):
            ObjectClass(
                "sub",
                predicate=SubtypePredicate("sub", {}, lambda: True),
            )

    def test_predicate_name_must_match(self):
        with pytest.raises(SchemaError, match="must match"):
            ObjectClass(
                "sub",
                supertype="base",
                predicate=SubtypePredicate("other", {}, lambda: True),
            )


class TestFreeze:
    def test_freeze_validates_derived_without_rule(self):
        schema = minimal_schema()
        schema.add_class(
            ObjectClass(
                "c", attributes=[AttributeDef("d", "integer", AttrKind.DERIVED)]
            )
        )
        with pytest.raises(SchemaError, match="derived attributes without rules"):
            schema.freeze()

    def test_rule_on_intrinsic_rejected(self):
        schema = minimal_schema()
        schema.add_class(
            ObjectClass(
                "c",
                attributes=[AttributeDef("x", "integer")],
                rules=[Rule(AttributeTarget("x"), {}, lambda: 1)],
            )
        )
        with pytest.raises(SchemaError, match="targets intrinsic"):
            schema.freeze()

    def test_rule_on_unknown_attribute_rejected(self):
        schema = minimal_schema()
        schema.add_class(
            ObjectClass("c", rules=[Rule(AttributeTarget("ghost"), {}, lambda: 1)])
        )
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema.freeze()

    def test_local_input_must_exist(self):
        schema = minimal_schema()
        schema.add_class(
            ObjectClass(
                "c",
                attributes=[AttributeDef("d", "integer", AttrKind.DERIVED)],
                rules=[
                    Rule(AttributeTarget("d"), {"x": Local("ghost")}, lambda x: x)
                ],
            )
        )
        with pytest.raises(SchemaError, match="unknown attribute 'ghost'"):
            schema.freeze()

    def test_received_input_port_must_exist(self):
        schema = minimal_schema()
        schema.add_class(
            ObjectClass(
                "c",
                attributes=[AttributeDef("d", "integer", AttrKind.DERIVED)],
                rules=[
                    Rule(
                        AttributeTarget("d"),
                        {"x": Received("ghost", "v")},
                        lambda x: x,
                    )
                ],
            )
        )
        with pytest.raises(SchemaError, match="unknown port"):
            schema.freeze()

    def test_received_direction_checked(self):
        schema = minimal_schema()
        # Port on the PLUG end cannot *receive* a value sent by the plug.
        schema.add_class(
            ObjectClass(
                "c",
                attributes=[AttributeDef("d", "integer", AttrKind.DERIVED)],
                ports=[PortDef("p", "r", End.PLUG)],
                rules=[
                    Rule(AttributeTarget("d"), {"x": Received("p", "v")}, lambda x: x)
                ],
            )
        )
        with pytest.raises(SchemaError, match="sends.*that value|this end \\*sends\\*"):
            schema.freeze()

    def test_transmit_direction_checked(self):
        schema = minimal_schema()
        # Port on the SOCKET end cannot transmit a plug-sent value.
        schema.add_class(
            ObjectClass(
                "c",
                ports=[PortDef("p", "r", End.SOCKET)],
                rules=[Rule(TransmitTarget("p", "v"), {}, lambda: 1)],
            )
        )
        with pytest.raises(SchemaError, match="flows plug-to-socket"):
            schema.freeze()

    def test_inheritance_cycle_detected(self):
        schema = Schema()
        schema.add_class(ObjectClass("a", supertype="b"))
        schema.add_class(ObjectClass("b", supertype="a"))
        with pytest.raises(SchemaError, match="inheritance cycle"):
            schema.freeze()

    def test_frozen_schema_rejects_extension(self):
        schema = minimal_schema()
        schema.add_class(ObjectClass("c"))
        schema.freeze()
        with pytest.raises(SchemaError, match="frozen"):
            schema.add_class(ObjectClass("d"))

    def test_unfreeze_and_extend(self):
        schema = minimal_schema()
        schema.add_class(ObjectClass("c"))
        schema.freeze()
        version = schema.version
        schema.unfreeze()
        schema.add_class(ObjectClass("d"))
        schema.freeze()
        assert schema.version == version + 1
        assert schema.resolved("d").name == "d"

    def test_duplicate_class_rejected(self):
        schema = Schema()
        schema.add_class(ObjectClass("c"))
        with pytest.raises(SchemaError, match="already defined"):
            schema.add_class(ObjectClass("c"))

    def test_unknown_class_lookup(self):
        schema = Schema()
        schema.freeze()
        with pytest.raises(UnknownTypeError):
            schema.resolved("ghost")


class TestInheritanceResolution:
    def build(self) -> Schema:
        schema = minimal_schema()
        schema.add_class(
            ObjectClass(
                "base",
                attributes=[
                    AttributeDef("x", "integer"),
                    AttributeDef("d", "integer", AttrKind.DERIVED),
                ],
                rules=[Rule(AttributeTarget("d"), {"x": Local("x")}, lambda x: x + 1)],
            )
        )
        schema.add_class(
            ObjectClass(
                "derived_cls",
                attributes=[AttributeDef("y", "integer")],
                supertype="base",
                rules=[
                    Rule(
                        AttributeTarget("d"),
                        {"x": Local("x"), "y": Local("y")},
                        lambda x, y: x + y,
                    )
                ],
            )
        )
        return schema.freeze()

    def test_subclass_inherits_attributes(self):
        resolved = self.build().resolved("derived_cls")
        assert set(resolved.attributes) == {"x", "y", "d"}

    def test_subclass_overrides_rule(self):
        schema = self.build()
        base_rule = schema.resolved("base").rule_for["d"]
        sub_rule = schema.resolved("derived_cls").rule_for["d"]
        assert base_rule is not sub_rule
        assert sub_rule.body(x=1, y=10) == 11

    def test_lineage(self):
        resolved = self.build().resolved("derived_cls")
        assert resolved.lineage == ("derived_cls", "base")

    def test_is_subclass(self):
        schema = self.build()
        assert schema.is_subclass("derived_cls", "base")
        assert schema.is_subclass("base", "base")
        assert not schema.is_subclass("base", "derived_cls")
