"""Tests for the Cactis primitives on the database facade."""

import pytest

from repro.core.database import Database
from repro.errors import (
    ConnectionError_,
    IntrinsicOnlyError,
    SchemaError,
    UnknownAttributeError,
    UnknownInstanceError,
)
from repro.workloads import build_chain, link


class TestCreate:
    def test_create_with_defaults(self, db):
        iid = db.create("node")
        assert db.get_attr(iid, "weight") == 0

    def test_create_with_intrinsics(self, db):
        iid = db.create("node", weight=5)
        assert db.get_attr(iid, "weight") == 5

    def test_create_validates_atom_type(self, db):
        from repro.errors import AtomTypeError

        with pytest.raises(AtomTypeError):
            db.create("node", weight="heavy")

    def test_create_rejects_unknown_attr(self, db):
        with pytest.raises(UnknownAttributeError):
            db.create("node", colour="red")

    def test_create_rejects_derived_attr(self, db):
        with pytest.raises(UnknownAttributeError):
            # "total" is derived, so it is not an acceptable intrinsic kwarg.
            db.create("node", total=9)

    def test_ids_are_unique_and_monotonic(self, db):
        ids = [db.create("node") for __ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_derived_attr_defaults_before_connection(self, db):
        iid = db.create("node", weight=3)
        # No connections: the derived total is just the weight.
        assert db.get_attr(iid, "total") == 3


class TestDelete:
    def test_delete_removes_instance(self, db):
        iid = db.create("node")
        db.delete(iid)
        assert not db.exists(iid)
        with pytest.raises(UnknownInstanceError):
            db.get_attr(iid, "weight")

    def test_delete_breaks_relationships(self, db):
        a, b = db.create("node", weight=1), db.create("node", weight=2)
        link(db, a, b)
        assert db.get_attr(b, "total") == 3
        db.delete(a)
        assert db.view(b).connections("inputs") == []
        assert db.get_attr(b, "total") == 2

    def test_delete_twice_raises(self, db):
        iid = db.create("node")
        db.delete(iid)
        with pytest.raises(UnknownInstanceError):
            db.delete(iid)

    def test_len_tracks_population(self, db):
        assert len(db) == 0
        ids = [db.create("node") for __ in range(3)]
        assert len(db) == 3
        db.delete(ids[1])
        assert len(db) == 2


class TestConnect:
    def test_connect_updates_derived(self, db):
        a, b = db.create("node", weight=1), db.create("node", weight=2)
        db.connect(b, "inputs", a, "outputs")
        assert db.get_attr(b, "total") == 3

    def test_connection_order_preserved(self, db):
        hub = db.create("node")
        upstream = [db.create("node", weight=i) for i in range(3)]
        for u in upstream:
            db.connect(hub, "inputs", u, "outputs")
        assert db.view(hub).connections("inputs") == upstream

    def test_rel_type_mismatch_rejected(self, person_db):
        alice = person_db.create("person", name="alice")
        bob = person_db.create("person", name="bob")
        with pytest.raises(Exception):
            person_db.connect(alice, "cars", bob, "cars")

    def test_same_end_rejected(self, db):
        a, b = db.create("node"), db.create("node")
        with pytest.raises(ConnectionError_, match="plug must connect"):
            db.connect(a, "inputs", b, "inputs")

    def test_duplicate_connection_rejected(self, db):
        a, b = db.create("node"), db.create("node")
        db.connect(b, "inputs", a, "outputs")
        with pytest.raises(ConnectionError_, match="already connected"):
            db.connect(b, "inputs", a, "outputs")

    def test_self_port_connection_rejected(self, db):
        # Same-end check fires first; either way the connection is refused.
        a = db.create("node")
        with pytest.raises(ConnectionError_):
            db.connect(a, "inputs", a, "inputs")

    def test_self_loop_different_ports_detected_as_cycle(self, db):
        # Connecting a node's own output into its input creates a data
        # cycle; the primitive is rejected and rolled back.
        from repro.errors import CycleError

        a = db.create("node")
        db.get_attr(a, "total")
        with pytest.raises(CycleError):
            db.connect(a, "inputs", a, "outputs")
        assert db.get_attr(a, "total") == 0

    def test_single_port_cardinality(self, person_db):
        car = person_db.create("automobile", model="t")
        alice = person_db.create("person", name="alice")
        bob = person_db.create("person", name="bob")
        person_db.connect(car, "owner", alice, "cars")
        with pytest.raises(ConnectionError_, match="single-valued"):
            person_db.connect(car, "owner", bob, "cars")

    def test_unknown_port_rejected(self, db):
        a, b = db.create("node"), db.create("node")
        from repro.errors import UnknownRelationshipError

        with pytest.raises(UnknownRelationshipError):
            db.connect(a, "ghost", b, "outputs")


class TestDisconnect:
    def test_disconnect_updates_derived(self, db):
        a, b = db.create("node", weight=1), db.create("node", weight=2)
        db.connect(b, "inputs", a, "outputs")
        assert db.get_attr(b, "total") == 3
        db.disconnect(b, "inputs", a, "outputs")
        assert db.get_attr(b, "total") == 2

    def test_disconnect_unconnected_raises(self, db):
        a, b = db.create("node"), db.create("node")
        with pytest.raises(ConnectionError_, match="not connected"):
            db.disconnect(b, "inputs", a, "outputs")

    def test_disconnect_middle_preserves_order(self, db):
        hub = db.create("node")
        ups = [db.create("node", weight=i + 1) for i in range(3)]
        for u in ups:
            db.connect(hub, "inputs", u, "outputs")
        db.disconnect(hub, "inputs", ups[1], "outputs")
        assert db.view(hub).connections("inputs") == [ups[0], ups[2]]
        assert db.get_attr(hub, "total") == 1 + 3


class TestSetGet:
    def test_set_intrinsic_and_ripple(self, db):
        nodes = build_chain(db, 4)
        assert db.get_attr(nodes[-1], "total") == 4
        db.set_attr(nodes[0], "weight", 10)
        assert db.get_attr(nodes[-1], "total") == 13

    def test_set_derived_rejected(self, db):
        iid = db.create("node")
        with pytest.raises(IntrinsicOnlyError):
            db.set_attr(iid, "total", 99)

    def test_set_unknown_attr_rejected(self, db):
        iid = db.create("node")
        with pytest.raises(UnknownAttributeError):
            db.set_attr(iid, "colour", "red")

    def test_get_unknown_attr_rejected(self, db):
        iid = db.create("node")
        with pytest.raises(UnknownAttributeError):
            db.get_attr(iid, "colour")

    def test_set_validates_atom(self, db):
        from repro.errors import AtomTypeError

        iid = db.create("node")
        with pytest.raises(AtomTypeError):
            db.set_attr(iid, "weight", "heavy")

    def test_set_equal_value_is_noop(self, db):
        nodes = build_chain(db, 3)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        history_before = len(db.txn.history)
        db.set_attr(nodes[0], "weight", 1)  # already 1
        delta = db.engine.counters.delta_since(before)
        assert delta.slots_marked == 0
        assert len(db.txn.history) == history_before  # nothing logged

    def test_get_transmitted(self, db):
        a = db.create("node", weight=4)
        assert db.get_transmitted(a, "outputs", "total") == 4

    def test_create_predicate_subtype_directly_rejected(self, person_db):
        with pytest.raises(SchemaError, match="predicate subtype"):
            person_db.create("car_buff")


class TestViews:
    def test_view_read_write(self, db):
        iid = db.create("node", weight=2)
        view = db.view(iid)
        assert view["weight"] == 2
        view.set("weight", 7)
        assert view.get("total") == 7
        assert view.class_name == "node"

    def test_where_query(self, db):
        for w in (1, 5, 9):
            db.create("node", weight=w)
        heavy = db.where("node", lambda v: v["weight"] > 4)
        assert len(heavy) == 2

    def test_instances_of(self, db):
        ids = [db.create("node") for __ in range(3)]
        assert db.instances_of("node") == ids
