"""Predicate-subtype membership: the paper's Car_Buff and very_late stories."""

import pytest

from tests.conftest import give_cars


class TestMembership:
    def test_not_member_initially(self, person_db):
        alice = person_db.create("person", name="alice")
        assert not person_db.is_member(alice, "car_buff")

    def test_becomes_member_at_four_cars(self, person_db):
        alice = person_db.create("person", name="alice")
        give_cars(person_db, alice, 4)
        assert person_db.is_member(alice, "car_buff")
        assert "car_buff" in person_db.view(alice).active_subtypes

    def test_three_cars_is_not_enough(self, person_db):
        alice = person_db.create("person", name="alice")
        give_cars(person_db, alice, 3)
        assert not person_db.is_member(alice, "car_buff")

    def test_membership_lapses_when_cars_sold(self, person_db):
        alice = person_db.create("person", name="alice")
        cars = give_cars(person_db, alice, 4)
        assert person_db.is_member(alice, "car_buff")
        person_db.disconnect(cars[0], "owner", alice, "cars")
        assert not person_db.is_member(alice, "car_buff")

    def test_subtype_attribute_available_to_members(self, person_db):
        alice = person_db.create("person", name="alice")
        give_cars(person_db, alice, 4)
        assert person_db.get_attr(alice, "club") == "road&track"

    def test_subtype_attribute_unavailable_to_nonmembers(self, person_db):
        from repro.errors import UnknownAttributeError

        bob = person_db.create("person", name="bob")
        with pytest.raises(UnknownAttributeError):
            person_db.get_attr(bob, "club")

    def test_subtype_attr_value_persists_across_flips(self, person_db):
        alice = person_db.create("person", name="alice")
        cars = give_cars(person_db, alice, 4)
        person_db.set_attr(alice, "club", "cannonball")
        # Flip membership off and back on.
        person_db.disconnect(cars[0], "owner", alice, "cars")
        assert not person_db.is_member(alice, "car_buff")
        person_db.connect(cars[0], "owner", alice, "cars")
        assert person_db.is_member(alice, "car_buff")
        assert person_db.get_attr(alice, "club") == "cannonball"

    def test_instances_of_predicate_subtype(self, person_db):
        alice = person_db.create("person", name="alice")
        bob = person_db.create("person", name="bob")
        give_cars(person_db, alice, 5)
        give_cars(person_db, bob, 1)
        assert person_db.instances_of("car_buff") == [alice]

    def test_instances_of_supertype_includes_everyone(self, person_db):
        alice = person_db.create("person", name="alice")
        bob = person_db.create("person", name="bob")
        give_cars(person_db, alice, 5)
        assert person_db.instances_of("person") == [alice, bob]

    def test_automobiles_never_car_buffs(self, person_db):
        car = person_db.create("automobile", model="gt")
        assert not person_db.is_member(car, "car_buff")

    def test_is_member_static_classes(self, person_db):
        alice = person_db.create("person", name="alice")
        assert person_db.is_member(alice, "person")
        assert not person_db.is_member(alice, "automobile")


class TestDynamicUpdates:
    def test_membership_tracks_without_queries(self, person_db):
        """Membership is maintained eagerly (important slots), so the
        active_subtypes set is current even before any is_member call."""
        alice = person_db.create("person", name="alice")
        give_cars(person_db, alice, 4)
        # No is_member query yet; the flip happened during propagation.
        assert "car_buff" in person_db.instance(alice).active_subtypes

    def test_car_count_derived(self, person_db):
        alice = person_db.create("person", name="alice")
        give_cars(person_db, alice, 2)
        assert person_db.get_attr(alice, "car_count") == 2

    def test_flips_are_undone_with_their_cause(self, person_db):
        alice = person_db.create("person", name="alice")
        give_cars(person_db, alice, 3)
        person_db.begin()
        give_cars(person_db, alice, 1)
        person_db.commit()
        assert person_db.is_member(alice, "car_buff")
        person_db.undo()  # undoes the fourth car
        assert not person_db.is_member(alice, "car_buff")
