"""Unit tests for rules, constraints, and predicate declarations."""

import pytest

from repro.core.rules import (
    AttributeTarget,
    Constraint,
    Local,
    Received,
    Rule,
    SelfRef,
    SubtypePredicate,
    TransmitTarget,
    constraint_attr_name,
    constraint_name_of,
    is_constraint_attr,
    is_subtype_attr,
    subtype_attr_name,
    subtype_name_of,
)
from repro.errors import SchemaError


class TestRuleConstruction:
    def test_default_name_attribute(self):
        rule = Rule(AttributeTarget("x"), {}, lambda: 1)
        assert rule.name == "rule:x"

    def test_default_name_transmit(self):
        rule = Rule(TransmitTarget("p", "v"), {}, lambda: 1)
        assert rule.name == "rule:p>v"

    def test_explicit_name_kept(self):
        rule = Rule(AttributeTarget("x"), {}, lambda: 1, name="custom")
        assert rule.name == "custom"

    def test_invalid_target_rejected(self):
        with pytest.raises(SchemaError, match="invalid rule target"):
            Rule("x", {}, lambda: 1)

    def test_invalid_input_rejected(self):
        with pytest.raises(SchemaError, match="invalid input"):
            Rule(AttributeTarget("x"), {"a": "not-an-input"}, lambda a: a)

    def test_body_must_be_callable(self):
        with pytest.raises(SchemaError, match="callable"):
            Rule(AttributeTarget("x"), {}, 42)

    def test_input_partitions(self):
        rule = Rule(
            AttributeTarget("x"),
            {
                "a": Local("attr"),
                "b": Received("port", "value"),
                "c": SelfRef(),
            },
            lambda a, b, c: None,
        )
        assert [kw for kw, __ in rule.local_inputs()] == ["a"]
        assert [kw for kw, __ in rule.received_inputs()] == ["b"]


class TestConstraint:
    def test_requires_name(self):
        with pytest.raises(SchemaError, match="named"):
            Constraint("", {}, lambda: True)

    def test_predicate_must_be_callable(self):
        with pytest.raises(SchemaError, match="callable"):
            Constraint("c", {}, True)

    def test_as_rule_targets_synthetic_attr(self):
        constraint = Constraint("positive", {"x": Local("x")}, lambda x: x > 0)
        rule = constraint.as_rule()
        assert rule.target == AttributeTarget("__constraint__positive")
        assert rule.name == "constraint:positive"
        assert rule.body(x=5) is True

    def test_invalid_input_rejected(self):
        with pytest.raises(SchemaError, match="invalid input"):
            Constraint("c", {"x": 42}, lambda x: True)


class TestSyntheticNames:
    def test_constraint_round_trip(self):
        name = constraint_attr_name("limit")
        assert is_constraint_attr(name)
        assert constraint_name_of(name) == "limit"
        assert not is_subtype_attr(name)

    def test_subtype_round_trip(self):
        name = subtype_attr_name("car_buff")
        assert is_subtype_attr(name)
        assert subtype_name_of(name) == "car_buff"
        assert not is_constraint_attr(name)

    def test_ordinary_names_not_synthetic(self):
        assert not is_constraint_attr("exp_compl")
        assert not is_subtype_attr("exp_compl")


class TestSubtypePredicate:
    def test_as_rule(self):
        pred = SubtypePredicate("vip", {"x": Local("x")}, lambda x: x > 10)
        rule = pred.as_rule()
        assert rule.target == AttributeTarget("__subtype__vip")
        assert rule.name == "subtype:vip"
        assert rule.body(x=11) is True
        assert rule.body(x=9) is False
