"""The paper's own Section 2.1 example, end to end.

"Thus, the type Persons may have a relationship called Mother, which
points back to Persons, and a relationship called Cars which points to the
type Automobiles.  A Car Buff might be defined as the subtype defined by
the predicate which calculates all Persons who own more than three cars.
A constraint might be that all Persons must own at least one car."
"""

import pytest

from repro.core.database import Database
from repro.core.predicates import more_connections_than
from repro.core.rules import (
    AttributeTarget,
    Constraint,
    Local,
    Received,
    Rule,
    TransmitTarget,
)
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)
from repro.errors import TransactionAborted


def persons_schema() -> Schema:
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType(
            "ownership", [FlowDecl("unit", "integer", End.PLUG, default=0)]
        )
    )
    schema.add_relationship_type(
        RelationshipType(
            "maternity", [FlowDecl("generation", "integer", End.PLUG, default=0)]
        )
    )
    schema.add_class(
        ObjectClass(
            "automobile",
            attributes=[AttributeDef("model", "string")],
            ports=[PortDef("owner", "ownership", End.PLUG)],
            rules=[Rule(TransmitTarget("owner", "unit"), {}, lambda: 1)],
        )
    )
    schema.add_class(
        ObjectClass(
            "person",
            attributes=[
                AttributeDef("name", "string"),
                AttributeDef("car_count", "integer", AttrKind.DERIVED),
                AttributeDef("generation", "integer", AttrKind.DERIVED),
            ],
            ports=[
                PortDef("cars", "ownership", End.SOCKET, multi=True),
                # "a relationship called Mother, which points back to
                # Persons": a self-referential relationship type.
                PortDef("mother", "maternity", End.SOCKET),
                PortDef("children", "maternity", End.PLUG, multi=True),
            ],
            rules=[
                Rule(
                    AttributeTarget("car_count"),
                    {"units": Received("cars", "unit")},
                    lambda units: sum(units),
                ),
                Rule(
                    AttributeTarget("generation"),
                    {"g": Received("mother", "generation")},
                    lambda g: g + 1,
                ),
                Rule(
                    TransmitTarget("children", "generation"),
                    {"g": Local("generation")},
                    lambda g: g,
                ),
            ],
            constraints=[
                # "all Persons must own at least one car"
                Constraint(
                    "must_own_a_car",
                    {"units": Received("cars", "unit")},
                    lambda units: sum(units) >= 1,
                )
            ],
        )
    )
    # "A Car Buff ... all Persons who own more than three cars"
    schema.add_class(
        ObjectClass(
            "car_buff",
            supertype="person",
            predicate=more_connections_than("cars", "unit", 3).as_subtype(
                "car_buff"
            ),
        )
    )
    return schema.freeze()


@pytest.fixture
def db():
    return Database(persons_schema(), pool_capacity=64)


def person_with_cars(db, name, n_cars):
    db.begin(name)
    person = db.create("person", name=name)
    cars = []
    for i in range(n_cars):
        car = db.create("automobile", model=f"{name}-car-{i}")
        db.connect(car, "owner", person, "cars")
        cars.append(car)
    db.commit()
    return person, cars


class TestPaperExample:
    def test_carless_person_vetoed_at_commit(self, db):
        db.begin()
        db.create("person", name="walker")
        with pytest.raises(TransactionAborted):
            db.commit()
        assert len(db) == 0

    def test_one_car_satisfies_the_constraint(self, db):
        person, __ = person_with_cars(db, "alice", 1)
        assert db.get_attr(person, "car_count") == 1

    def test_selling_the_last_car_vetoed(self, db):
        person, cars = person_with_cars(db, "alice", 1)
        with pytest.raises(TransactionAborted):
            db.disconnect(cars[0], "owner", person, "cars")
        assert db.get_attr(person, "car_count") == 1

    def test_car_buff_threshold(self, db):
        casual, __ = person_with_cars(db, "casual", 3)
        buff, __ = person_with_cars(db, "buff", 4)
        assert db.instances_of("car_buff") == [buff]
        assert not db.is_member(casual, "car_buff")

    def test_mother_relationship_generations(self, db):
        grandma, __ = person_with_cars(db, "grandma", 1)
        mum, __ = person_with_cars(db, "mum", 1)
        kid, __ = person_with_cars(db, "kid", 1)
        db.connect(mum, "mother", grandma, "children")
        db.connect(kid, "mother", mum, "children")
        assert db.get_attr(grandma, "generation") == 1  # default + 1
        assert db.get_attr(mum, "generation") == 2
        assert db.get_attr(kid, "generation") == 3

    def test_buying_cars_flips_membership_live(self, db):
        person, __ = person_with_cars(db, "upwardly", 3)
        assert not db.is_member(person, "car_buff")
        car = db.create("automobile", model="fourth")
        db.connect(car, "owner", person, "cars")
        assert db.is_member(person, "car_buff")
