"""Unit tests for slot identifiers."""

from repro.core.slots import (
    attr_slot,
    describe,
    is_transmit_name,
    split_transmit_name,
    transmit_name,
    transmit_slot,
)


def test_attr_slot():
    assert attr_slot(7, "exp_compl") == (7, "exp_compl")


def test_transmit_slot_round_trip():
    slot = transmit_slot(7, "consists_of", "exp_time")
    assert slot == (7, "consists_of>exp_time")
    assert is_transmit_name(slot[1])
    assert split_transmit_name(slot[1]) == ("consists_of", "exp_time")


def test_plain_names_are_not_transmit():
    assert not is_transmit_name("exp_compl")


def test_transmit_name_builder():
    assert transmit_name("p", "v") == "p>v"


def test_describe_attribute():
    text = describe((3, "weight"))
    assert "instance 3" in text and "weight" in text


def test_describe_transmit():
    text = describe((3, "outputs>total"))
    assert "outputs" in text and "total" in text and "transmitted" in text
