"""Unit tests for atomic value types."""

import pytest

from repro.core.atoms import (
    TIME0,
    TIME_FUTURE,
    AtomRegistry,
    AtomType,
    later_of,
    later_than,
)
from repro.errors import AtomTypeError, SchemaError


class TestRegistry:
    def test_builtins_present(self):
        registry = AtomRegistry()
        for name in ("integer", "real", "boolean", "string", "time", "array", "record", "any"):
            assert name in registry

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError, match="unknown atom type"):
            AtomRegistry().get("quaternion")

    def test_register_new_type(self):
        registry = AtomRegistry()
        registry.register(
            AtomType("percent", lambda v: isinstance(v, int) and 0 <= v <= 100, 0)
        )
        assert registry.get("percent").validate(42) == 42
        with pytest.raises(AtomTypeError):
            registry.get("percent").validate(150)

    def test_register_duplicate_raises(self):
        registry = AtomRegistry()
        with pytest.raises(SchemaError, match="already registered"):
            registry.register(AtomType("integer", lambda v: True, 0))

    def test_names_sorted(self):
        names = AtomRegistry().names()
        assert names == sorted(names)


class TestValidation:
    @pytest.fixture
    def registry(self):
        return AtomRegistry()

    def test_integer_accepts_int(self, registry):
        assert registry.get("integer").validate(7) == 7

    def test_integer_rejects_bool(self, registry):
        with pytest.raises(AtomTypeError):
            registry.get("integer").validate(True)

    def test_integer_rejects_float(self, registry):
        with pytest.raises(AtomTypeError):
            registry.get("integer").validate(1.5)

    def test_real_coerces_int(self, registry):
        value = registry.get("real").validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_real_rejects_string(self, registry):
        with pytest.raises(AtomTypeError):
            registry.get("real").validate("3.0")

    def test_boolean_strict(self, registry):
        assert registry.get("boolean").validate(True) is True
        with pytest.raises(AtomTypeError):
            registry.get("boolean").validate(1)

    def test_string(self, registry):
        assert registry.get("string").validate("hi") == "hi"
        with pytest.raises(AtomTypeError):
            registry.get("string").validate(7)

    def test_array_coerces_list_to_tuple(self, registry):
        assert registry.get("array").validate([1, 2]) == (1, 2)

    def test_any_accepts_everything(self, registry):
        sentinel = object()
        assert registry.get("any").validate(sentinel) is sentinel

    def test_time_is_integer_clock(self, registry):
        assert registry.get("time").validate(0) == TIME0
        with pytest.raises(AtomTypeError):
            registry.get("time").validate(1.5)

    def test_defaults(self, registry):
        assert registry.get("integer").default == 0
        assert registry.get("string").default == ""
        assert registry.get("boolean").default is False
        assert registry.get("time").default == TIME0


class TestTimeHelpers:
    def test_later_of(self):
        assert later_of(3, 5) == 5
        assert later_of(5, 3) == 5
        assert later_of(4, 4) == 4

    def test_later_than(self):
        assert later_than(5, 3)
        assert not later_than(3, 5)
        assert not later_than(4, 4)

    def test_future_after_everything(self):
        assert later_than(TIME_FUTURE, 10**15)
        assert later_of(TIME_FUTURE, 42) == TIME_FUTURE
