"""Constraint semantics (experiment E12).

"Whenever an attribute which is designated as testing a constraint
evaluates to false, rollback of the current transaction is performed ...
Optionally, a special recovery action associated with the constraint can be
invoked to attempt to recover from the violation."
"""

import pytest

from repro.core.database import Database
from repro.core.rules import AttributeTarget, Constraint, Local, Received, Rule
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)
from repro.errors import TransactionAborted


def constrained_schema(recovery=None) -> Schema:
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType("dep", [FlowDecl("total", "integer", End.PLUG)])
    )
    schema.add_class(
        ObjectClass(
            "node",
            attributes=[
                AttributeDef("weight", "integer"),
                AttributeDef("cap", "integer", default=100),
                AttributeDef("total", "integer", AttrKind.DERIVED),
            ],
            ports=[
                PortDef("inputs", "dep", End.SOCKET, multi=True),
                PortDef("outputs", "dep", End.PLUG, multi=True),
            ],
            rules=[
                Rule(
                    AttributeTarget("total"),
                    {"w": Local("weight"), "ins": Received("inputs", "total")},
                    lambda w, ins: w + sum(ins),
                ),
                Rule(
                    __import__("repro.core.rules", fromlist=["TransmitTarget"]).TransmitTarget(
                        "outputs", "total"
                    ),
                    {"t": Local("total")},
                    lambda t: t,
                ),
            ],
            constraints=[
                Constraint(
                    "under_cap",
                    {"total": Local("total"), "cap": Local("cap")},
                    lambda total, cap: total <= cap,
                    recovery=recovery,
                )
            ],
        )
    )
    return schema.freeze()


class TestViolationRollsBack:
    def test_direct_violation(self):
        db = Database(constrained_schema())
        iid = db.create("node", weight=10, cap=50)
        with pytest.raises(TransactionAborted):
            db.set_attr(iid, "weight", 60)
        assert db.get_attr(iid, "weight") == 10
        assert db.get_attr(iid, "total") == 10

    def test_transitive_violation(self):
        # A change to an upstream node violates a *downstream* constraint;
        # the upstream change is what gets rolled back.
        db = Database(constrained_schema())
        a = db.create("node", weight=10)
        b = db.create("node", weight=10, cap=30)
        db.connect(b, "inputs", a, "outputs")
        assert db.get_attr(b, "total") == 20
        with pytest.raises(TransactionAborted):
            db.set_attr(a, "weight", 25)  # b.total would be 35 > 30
        assert db.get_attr(a, "weight") == 10
        assert db.get_attr(b, "total") == 20

    def test_violation_via_connect(self):
        db = Database(constrained_schema())
        a = db.create("node", weight=80)
        b = db.create("node", weight=30, cap=100)
        with pytest.raises(TransactionAborted):
            db.connect(b, "inputs", a, "outputs")  # total would be 110
        assert db.view(b).connections("inputs") == []
        assert db.get_attr(b, "total") == 30

    def test_explicit_transaction_fully_rolled_back(self):
        db = Database(constrained_schema())
        a = db.create("node", weight=10, cap=50)
        db.begin()
        db.set_attr(a, "weight", 20)
        with pytest.raises(TransactionAborted):
            db.set_attr(a, "weight", 60)
        # The whole transaction (including the first, valid set) is undone.
        assert db.get_attr(a, "weight") == 10

    def test_commit_audits_fresh_instances(self):
        # Creation does not trigger evaluation, but commit audits the new
        # instance's constraints.
        db = Database(constrained_schema())
        db.begin()
        db.create("node", weight=200, cap=100)
        with pytest.raises(TransactionAborted):
            db.commit()
        assert len(db) == 0  # creation rolled back

    def test_valid_commit_passes_audit(self):
        db = Database(constrained_schema())
        db.begin()
        iid = db.create("node", weight=5, cap=100)
        db.commit()
        assert db.get_attr(iid, "total") == 5


class TestRecoveryAction:
    def test_recovery_repairs_and_transaction_survives(self):
        def clamp(db: Database, iid: int) -> None:
            db.set_attr(iid, "weight", db.get_attr(iid, "cap"))

        db = Database(constrained_schema(recovery=clamp))
        iid = db.create("node", weight=10, cap=50)
        db.set_attr(iid, "weight", 75)  # violates; recovery clamps to 50
        assert db.get_attr(iid, "weight") == 50
        assert db.get_attr(iid, "total") == 50

    def test_failed_recovery_still_aborts(self):
        def useless(db: Database, iid: int) -> None:
            pass  # repairs nothing

        db = Database(constrained_schema(recovery=useless))
        iid = db.create("node", weight=10, cap=50)
        with pytest.raises(TransactionAborted):
            db.set_attr(iid, "weight", 75)
        assert db.get_attr(iid, "weight") == 10
