"""Failure handling: rule errors, bad schemas at runtime, error hierarchy."""

import pytest

from repro.core.database import Database
from repro.core.rules import AttributeTarget, Local, Rule
from repro.core.schema import AttrKind, AttributeDef, ObjectClass, Schema
from repro.errors import (
    CactisError,
    ConcurrencyAbort,
    ConstraintViolation,
    CycleError,
    DslCompileError,
    DslSyntaxError,
    RuleEvaluationError,
    SchemaError,
    TransactionAborted,
    UnknownInstanceError,
)


def failing_rule_schema() -> Schema:
    schema = Schema()
    schema.add_class(
        ObjectClass(
            "fragile",
            attributes=[
                AttributeDef("x", "integer"),
                AttributeDef("inverse", "integer", AttrKind.DERIVED),
            ],
            rules=[
                Rule(
                    AttributeTarget("inverse"),
                    {"x": Local("x")},
                    lambda x: 100 // x,  # raises ZeroDivisionError on x=0
                )
            ],
        )
    )
    return schema.freeze()


class TestRuleFailures:
    def test_rule_error_wrapped_and_identified(self):
        db = Database(failing_rule_schema())
        iid = db.create("fragile", x=0)
        with pytest.raises(RuleEvaluationError) as excinfo:
            db.get_attr(iid, "inverse")
        assert excinfo.value.slot == (iid, "inverse")
        assert isinstance(excinfo.value.cause, ZeroDivisionError)

    def test_rule_error_in_primitive_rolls_back(self):
        db = Database(failing_rule_schema())
        iid = db.create("fragile", x=4)
        db.watch(iid, "inverse")  # makes the rule run during propagation
        with pytest.raises(RuleEvaluationError):
            db.set_attr(iid, "x", 0)
        # The failing update was rolled back.
        assert db.get_attr(iid, "x") == 4
        assert db.get_attr(iid, "inverse") == 25

    def test_database_usable_after_rule_error(self):
        db = Database(failing_rule_schema())
        bad = db.create("fragile", x=0)
        with pytest.raises(RuleEvaluationError):
            db.get_attr(bad, "inverse")
        good = db.create("fragile", x=5)
        assert db.get_attr(good, "inverse") == 20


class TestFreezeCollectsAllViolations:
    def test_single_violation_is_reported_bare(self):
        schema = Schema()
        schema.add_class(
            ObjectClass(
                "c", attributes=[AttributeDef("x", "no_such_atom")]
            )
        )
        with pytest.raises(SchemaError) as excinfo:
            schema.freeze()
        assert "schema violations" not in str(excinfo.value)
        assert "no_such_atom" in str(excinfo.value)

    def test_violations_across_classes_reported_together(self):
        schema = Schema()
        schema.add_class(
            ObjectClass("a", attributes=[AttributeDef("x", "no_such_atom")])
        )
        schema.add_class(
            ObjectClass(
                "b",
                attributes=[
                    AttributeDef("y", "integer", AttrKind.DERIVED)
                ],  # derived but no rule
            )
        )
        schema.add_class(ObjectClass("c", supertype="missing"))
        with pytest.raises(SchemaError) as excinfo:
            schema.freeze()
        message = str(excinfo.value)
        assert "3 schema violations" in message
        assert "no_such_atom" in message
        assert "'y'" in message
        assert "missing" in message

    def test_failed_freeze_leaves_schema_reusable(self):
        schema = Schema()
        schema.add_class(
            ObjectClass("a", attributes=[AttributeDef("x", "no_such_atom")])
        )
        with pytest.raises(SchemaError):
            schema.freeze()
        fixed = Schema()
        fixed.add_class(
            ObjectClass("a", attributes=[AttributeDef("x", "integer")])
        )
        assert fixed.freeze() is fixed


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            SchemaError,
            CycleError,
            ConstraintViolation,
            TransactionAborted,
            ConcurrencyAbort,
            RuleEvaluationError,
            DslSyntaxError,
            DslCompileError,
            UnknownInstanceError,
        ],
    )
    def test_all_derive_from_cactis_error(self, exc_type):
        assert issubclass(exc_type, CactisError)

    def test_concurrency_abort_is_transaction_aborted(self):
        assert issubclass(ConcurrencyAbort, TransactionAborted)

    def test_cycle_error_carries_slots(self):
        error = CycleError([(1, "a"), (2, "b")])
        assert error.slots == ((1, "a"), (2, "b"))
        assert "(1, 'a')" in str(error)

    def test_constraint_violation_carries_context(self):
        error = ConstraintViolation("cap", 7)
        assert error.constraint_name == "cap"
        assert error.instance_id == 7

    def test_dsl_syntax_error_position(self):
        error = DslSyntaxError("bad token", 3, 9)
        assert (error.line, error.column) == (3, 9)
        assert "line 3" in str(error)


class TestOperationsOnMissingInstances:
    def test_every_primitive_rejects_unknown_iid(self, db):
        with pytest.raises(UnknownInstanceError):
            db.get_attr(999, "weight")
        with pytest.raises(UnknownInstanceError):
            db.set_attr(999, "weight", 1)
        with pytest.raises(UnknownInstanceError):
            db.delete(999)
        iid = db.create("node")
        with pytest.raises(UnknownInstanceError):
            db.connect(iid, "inputs", 999, "outputs")
        with pytest.raises(UnknownInstanceError):
            db.view(999).get("weight")
