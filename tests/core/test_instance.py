"""Unit tests for instance records."""

import pytest

from repro.core.instance import Connection, Instance
from repro.errors import ConnectionError_


class TestConnections:
    def test_add_and_query(self):
        inst = Instance(1, "node")
        conn = Connection(2, "outputs")
        inst.add_connection("inputs", conn)
        assert inst.connections_on("inputs") == [conn]
        assert inst.is_connected("inputs", conn)

    def test_dangling_port_empty(self):
        inst = Instance(1, "node")
        assert inst.connections_on("inputs") == []

    def test_remove_returns_index(self):
        inst = Instance(1, "node")
        conns = [Connection(i, "p") for i in (2, 3, 4)]
        for conn in conns:
            inst.add_connection("inputs", conn)
        assert inst.remove_connection("inputs", conns[1]) == 1
        assert inst.connections_on("inputs") == [conns[0], conns[2]]

    def test_remove_missing_raises(self):
        inst = Instance(1, "node")
        with pytest.raises(ConnectionError_):
            inst.remove_connection("inputs", Connection(9, "p"))

    def test_add_at_index_restores_position(self):
        inst = Instance(1, "node")
        a, b, c = (Connection(i, "p") for i in (2, 3, 4))
        inst.add_connection("inputs", a)
        inst.add_connection("inputs", c)
        inst.add_connection("inputs", b, index=1)
        assert inst.connections_on("inputs") == [a, b, c]

    def test_empty_port_removed_from_map(self):
        inst = Instance(1, "node")
        conn = Connection(2, "p")
        inst.add_connection("inputs", conn)
        inst.remove_connection("inputs", conn)
        assert "inputs" not in inst.connections

    def test_all_connections(self):
        inst = Instance(1, "node")
        inst.add_connection("a", Connection(2, "x"))
        inst.add_connection("b", Connection(3, "y"))
        pairs = inst.all_connections()
        assert ("a", Connection(2, "x")) in pairs
        assert ("b", Connection(3, "y")) in pairs


class TestRecordSize:
    def test_grows_with_attributes(self):
        small = Instance(1, "node")
        big = Instance(2, "node")
        big.attrs = {"x": 1, "y": "a long string value here"}
        assert big.record_size() > small.record_size()

    def test_grows_with_connections(self):
        inst = Instance(1, "node")
        before = inst.record_size()
        inst.add_connection("inputs", Connection(2, "p"))
        assert inst.record_size() > before

    def test_array_values_sized(self):
        short = Instance(1, "node")
        short.attrs = {"a": (1,)}
        long = Instance(2, "node")
        long.attrs = {"a": tuple(range(50))}
        assert long.record_size() > short.record_size()


class TestSnapshot:
    def test_round_trip(self):
        inst = Instance(5, "node")
        inst.attrs = {"weight": 3, "total": 7}
        inst.add_connection("inputs", Connection(2, "outputs"))
        inst.active_subtypes = {"heavy"}
        clone = Instance.from_snapshot(inst.snapshot())
        assert clone.iid == 5
        assert clone.class_name == "node"
        assert clone.attrs == inst.attrs
        assert clone.connections == inst.connections
        assert clone.active_subtypes == inst.active_subtypes

    def test_snapshot_is_decoupled(self):
        inst = Instance(5, "node")
        inst.attrs = {"weight": 3}
        snap = inst.snapshot()
        inst.attrs["weight"] = 99
        inst.add_connection("inputs", Connection(2, "p"))
        assert snap["attrs"]["weight"] == 3
        assert snap["connections"] == {}
