"""Predicate-combinator tests."""

import pytest

from repro.core.predicates import (
    Predicate,
    attr_between,
    attr_eq,
    attr_ge,
    attr_gt,
    attr_in,
    attr_le,
    attr_lt,
    attr_ne,
    attr_satisfies,
    more_connections_than,
    received_sum,
)
from repro.core.rules import Local
from repro.errors import SchemaError
from tests.conftest import give_cars


class TestComparisons:
    def test_attr_comparators(self, db):
        light = db.create("node", weight=1)
        heavy = db.create("node", weight=9)
        assert db.select("node", attr_gt("weight", 5)) == [heavy]
        assert db.select("node", attr_lt("weight", 5)) == [light]
        assert db.select("node", attr_ge("weight", 9)) == [heavy]
        assert db.select("node", attr_le("weight", 1)) == [light]
        assert db.select("node", attr_eq("weight", 1)) == [light]
        assert db.select("node", attr_ne("weight", 1)) == [heavy]

    def test_between_and_in(self, db):
        ids = [db.create("node", weight=w) for w in (1, 5, 9)]
        assert db.select("node", attr_between("weight", 2, 8)) == [ids[1]]
        assert db.select("node", attr_in("weight", {1, 9})) == [ids[0], ids[2]]

    def test_satisfies(self, db):
        even = db.create("node", weight=4)
        db.create("node", weight=3)
        assert db.select(
            "node", attr_satisfies("weight", lambda w: w % 2 == 0)
        ) == [even]

    def test_derived_attributes_queryable(self, db):
        from repro.workloads import link

        a = db.create("node", weight=3)
        b = db.create("node", weight=4)
        link(db, a, b)  # b.total = 7
        assert db.select("node", attr_gt("total", 5)) == [b]


class TestComposition:
    def test_and(self, db):
        ids = [db.create("node", weight=w) for w in (1, 5, 9)]
        predicate = attr_gt("weight", 2) & attr_lt("weight", 8)
        assert db.select("node", predicate) == [ids[1]]

    def test_or(self, db):
        ids = [db.create("node", weight=w) for w in (1, 5, 9)]
        predicate = attr_lt("weight", 2) | attr_gt("weight", 8)
        assert db.select("node", predicate) == [ids[0], ids[2]]

    def test_not(self, db):
        ids = [db.create("node", weight=w) for w in (1, 5)]
        assert db.select("node", ~attr_eq("weight", 1)) == [ids[1]]

    def test_nested_composition(self, db):
        ids = [db.create("node", weight=w) for w in range(6)]
        predicate = (attr_ge("weight", 1) & attr_le("weight", 4)) & ~attr_eq(
            "weight", 2
        )
        assert db.select("node", predicate) == [ids[1], ids[3], ids[4]]

    def test_conflicting_inputs_rejected(self):
        a = Predicate({"p_x": Local("x")}, lambda p_x: True)
        b = Predicate({"p_x": Local("y")}, lambda p_x: True)
        with pytest.raises(SchemaError, match="conflicting"):
            __ = a & b

    def test_description_composes(self):
        predicate = attr_gt("w", 1) & ~attr_eq("w", 5)
        assert "and" in predicate.description
        assert "not" in predicate.description


class TestRelationshipPredicates:
    def test_more_connections_than(self, person_db):
        alice = person_db.create("person", name="alice")
        bob = person_db.create("person", name="bob")
        give_cars(person_db, alice, 4)
        give_cars(person_db, bob, 2)
        buffs = person_db.select("person", more_connections_than("cars", "unit", 3))
        assert buffs == [alice]

    def test_received_sum(self, db):
        from repro.workloads import link

        hub = db.create("node", weight=0)
        for w in (5, 6):
            up = db.create("node", weight=w)
            link(db, up, hub)
        rich = db.select(
            "node", received_sum("inputs", "total", lambda a, b: a > b, 10, ">")
        )
        assert rich == [hub]

    def test_predicate_as_subtype(self, db):
        """Combinators can define predicate subtypes on a live schema."""
        from repro.core.predicates import attr_gt as gt
        from repro.core.schema import ObjectClass

        with db.extend_schema() as schema:
            schema.add_class(
                ObjectClass(
                    "heavy",
                    supertype="node",
                    predicate=gt("total", 10).as_subtype("heavy"),
                )
            )
        light = db.create("node", weight=1)
        heavy = db.create("node", weight=50)
        assert db.instances_of("heavy") == [heavy]

    def test_predicate_as_constraint(self, db):
        from repro.errors import TransactionAborted

        with db.extend_schema() as schema:
            schema.extend_class("node").add_constraint(
                attr_le("weight", 100).as_constraint("weight_cap")
            )
        iid = db.create("node", weight=1)
        with pytest.raises(TransactionAborted):
            db.set_attr(iid, "weight", 500)
        assert db.get_attr(iid, "weight") == 1
