"""Dynamic type-structure extension (the paper's "new tools" requirement)."""

import pytest

from repro.core.database import Database
from repro.core.rules import AttributeTarget, Local, Rule, SubtypePredicate
from repro.core.schema import AttrKind, AttributeDef, ObjectClass
from repro.errors import SchemaError, UnknownAttributeError
from repro.workloads import build_chain


class TestExtendSchema:
    def test_new_class_usable_after_extension(self, db):
        with db.extend_schema() as schema:
            schema.add_class(
                ObjectClass("tag", attributes=[AttributeDef("label", "string")])
            )
        iid = db.create("tag", label="v1")
        assert db.get_attr(iid, "label") == "v1"

    def test_new_derived_attribute_on_existing_class(self, db):
        nodes = build_chain(db, 3)
        with db.extend_schema() as schema:
            cls = schema.extend_class("node")
            cls.add_attribute(
                AttributeDef("double_total", "integer", AttrKind.DERIVED)
            )
            cls.add_rule(
                Rule(
                    AttributeTarget("double_total"),
                    {"t": Local("total")},
                    lambda t: 2 * t,
                )
            )
        # Existing instances gain the attribute immediately.
        assert db.get_attr(nodes[-1], "double_total") == 6
        db.set_attr(nodes[0], "weight", 10)
        assert db.get_attr(nodes[-1], "double_total") == 24

    def test_new_intrinsic_attribute_gets_default(self, db):
        iid = db.create("node", weight=2)
        with db.extend_schema() as schema:
            schema.extend_class("node").add_attribute(
                AttributeDef("owner", "string", default="nobody")
            )
        assert db.get_attr(iid, "owner") == "nobody"
        db.set_attr(iid, "owner", "alice")
        assert db.get_attr(iid, "owner") == "alice"

    def test_new_predicate_subtype_applies_to_existing_instances(self, db):
        light = db.create("node", weight=1)
        heavy = db.create("node", weight=50)
        with db.extend_schema() as schema:
            schema.add_class(
                ObjectClass(
                    "heavy_node",
                    supertype="node",
                    predicate=SubtypePredicate(
                        "heavy_node",
                        {"t": Local("total")},
                        lambda t: t >= 10,
                    ),
                )
            )
        assert db.instances_of("heavy_node") == [heavy]
        # And it keeps tracking afterwards.
        db.set_attr(light, "weight", 100)
        assert db.instances_of("heavy_node") == [light, heavy]

    def test_extension_failure_leaves_schema_frozen(self, db):
        with pytest.raises(SchemaError):
            with db.extend_schema() as schema:
                schema.add_class(
                    ObjectClass(
                        "bad",
                        attributes=[
                            AttributeDef("d", "integer", AttrKind.DERIVED)
                        ],
                    )
                )
        # freeze() raised inside __exit__; the schema is left unfrozen and
        # the database unusable until repaired -- repair and refreeze.
        schema = db.schema
        if not schema.frozen:
            del schema.classes["bad"]
            schema.freeze()
        iid = db.create("node", weight=1)
        assert db.get_attr(iid, "total") == 1

    def test_old_attributes_still_unknown_elsewhere(self, db):
        with db.extend_schema() as schema:
            schema.add_class(
                ObjectClass("tag", attributes=[AttributeDef("label", "string")])
            )
        iid = db.create("node")
        with pytest.raises(UnknownAttributeError):
            db.get_attr(iid, "label")
