"""Deltas-as-objects tests."""

import pytest

from repro.core.database import Database
from repro.errors import VersionError
from repro.versions.metaobjects import (
    DELTA_CLASS,
    DESCRIPTION_CLASS,
    DeltaCatalog,
)
from repro.workloads import build_chain, sum_node_schema


@pytest.fixture
def catalogued():
    db = Database(sum_node_schema(), pool_capacity=64)
    catalog = DeltaCatalog(db)
    return db, catalog


class TestMirroring:
    def test_commits_become_objects(self, catalogued):
        db, catalog = catalogued
        db.begin("feature work")
        nodes = build_chain(db, 3)
        db.commit()
        txn_id = catalog.last_mirrored_txn()
        delta_obj = catalog.delta_object(txn_id)
        assert db.get_attr(delta_obj, "label") == "feature work"
        assert db.get_attr(delta_obj, "record_count") == 5  # 3 creates + 2 connects

    def test_mirror_objects_do_not_mirror_themselves(self, catalogued):
        db, catalog = catalogued
        db.create("node")
        mirrored = len(catalog.mirrored_txn_ids())
        # Exactly one user transaction mirrored; the mirror's own commit
        # did not spawn another mirror recursively.
        delta_objects = db.instances_of(DELTA_CLASS)
        assert len(delta_objects) == mirrored == 1

    def test_unknown_txn_rejected(self, catalogued):
        __, catalog = catalogued
        with pytest.raises(VersionError):
            catalog.delta_object(999)


class TestChangeDescriptions:
    def test_description_aggregates(self, catalogued):
        db, catalog = catalogued
        db.begin("step 1")
        a = db.create("node", weight=1)
        db.commit()
        first = catalog.last_mirrored_txn()
        db.begin("step 2")
        db.set_attr(a, "weight", 2)
        db.set_attr(a, "weight", 3)
        db.commit()
        second = catalog.last_mirrored_txn()

        description = catalog.describe(
            "sprint 12", [first, second], author="pam"
        )
        report = catalog.description_report(description)
        assert report["title"] == "sprint 12"
        assert report["deltas"] == 2
        assert report["total_records"] == 3  # 1 create + 2 sets

    def test_descriptions_are_ordinary_objects(self, catalogued):
        db, catalog = catalogued
        a = db.create("node")
        txn_id = catalog.last_mirrored_txn()
        catalog.describe("change", [txn_id])
        assert len(db.instances_of(DESCRIPTION_CLASS)) == 1
        # They participate in queries like anything else.
        from repro.core.predicates import attr_eq

        assert db.select(DESCRIPTION_CLASS, attr_eq("title", "change"))

    def test_aggregate_is_incremental(self, catalogued):
        db, catalog = catalogued
        a = db.create("node")
        t1 = catalog.last_mirrored_txn()
        description = catalog.describe("rolling", [t1])
        assert catalog.description_report(description)["total_records"] == 1
        db.set_attr(a, "weight", 9)
        t2 = catalog.last_mirrored_txn()
        db.connect(description, "covers", catalog.delta_object(t2), "described_by")
        assert catalog.description_report(description)["total_records"] == 2
