"""Configuration-management tests."""

import pytest

from repro.core.database import Database
from repro.errors import VersionError
from repro.versions import ConfigurationManager, VersionStream
from repro.workloads import build_chain, sum_node_schema


@pytest.fixture
def two_components():
    """Two databases ('kernel', 'tools'), each with v1/v2 versions."""
    manager = ConfigurationManager()
    handles = {}
    for name in ("kernel", "tools"):
        db = Database(sum_node_schema(), pool_capacity=64)
        stream = VersionStream(db, name=name)
        nodes = build_chain(db, 3)
        stream.tag("v1")
        db.set_attr(nodes[0], "weight", 10)
        stream.tag("v2")
        manager.add_component(name, stream)
        handles[name] = (db, stream, nodes)
    return manager, handles


class TestDefinition:
    def test_define_validates_bindings(self, two_components):
        manager, __ = two_components
        config = manager.define("rel", {"kernel": "v1", "tools": "v2"})
        assert config.version_of("kernel") == "v1"

    def test_unknown_component_rejected(self, two_components):
        manager, __ = two_components
        with pytest.raises(VersionError):
            manager.define("bad", {"ghost": "v1"})

    def test_unknown_version_rejected(self, two_components):
        manager, __ = two_components
        with pytest.raises(VersionError):
            manager.define("bad", {"kernel": "v99"})

    def test_duplicate_configuration_rejected(self, two_components):
        manager, __ = two_components
        manager.define("rel", {"kernel": "v1"})
        with pytest.raises(VersionError):
            manager.define("rel", {"kernel": "v2"})

    def test_duplicate_component_rejected(self, two_components):
        manager, handles = two_components
        with pytest.raises(VersionError):
            manager.add_component("kernel", handles["kernel"][1])

    def test_snapshot_captures_current_versions(self, two_components):
        manager, handles = two_components
        handles["kernel"][1].checkout("v1")
        config = manager.snapshot("now")
        assert config.version_of("kernel") == "v1"
        assert config.version_of("tools") == "v2"


class TestMaterialize:
    def test_materialize_checks_out_components(self, two_components):
        manager, handles = two_components
        manager.define("rel", {"kernel": "v1", "tools": "v2"})
        manager.materialize("rel")
        kdb, __, knodes = handles["kernel"]
        tdb, __, tnodes = handles["tools"]
        assert kdb.get_attr(knodes[0], "weight") == 1  # v1
        assert tdb.get_attr(tnodes[0], "weight") == 10  # v2

    def test_materialize_unknown_rejected(self, two_components):
        manager, __ = two_components
        with pytest.raises(VersionError):
            manager.materialize("ghost")


class TestQueries:
    def test_diff(self, two_components):
        manager, __ = two_components
        manager.define("a", {"kernel": "v1", "tools": "v1"})
        manager.define("b", {"kernel": "v1", "tools": "v2"})
        assert manager.diff("a", "b") == {"tools": ("v1", "v2")}

    def test_diff_with_missing_binding(self, two_components):
        manager, __ = two_components
        manager.define("a", {"kernel": "v1"})
        manager.define("b", {"kernel": "v1", "tools": "v2"})
        assert manager.diff("a", "b") == {"tools": (None, "v2")}

    def test_configurations_containing(self, two_components):
        manager, __ = two_components
        manager.define("a", {"kernel": "v1", "tools": "v1"})
        manager.define("b", {"kernel": "v2", "tools": "v1"})
        assert manager.configurations_containing("tools", "v1") == ["a", "b"]
        assert manager.configurations_containing("kernel", "v1") == ["a"]

    def test_config_unknown_component_access(self, two_components):
        manager, __ = two_components
        config = manager.define("a", {"kernel": "v1"})
        with pytest.raises(VersionError):
            config.version_of("tools")
