"""Version stream tests (experiment E10)."""

import pytest

from repro.errors import VersionError
from repro.versions import VersionStream
from repro.workloads import build_chain


@pytest.fixture
def versioned(db):
    stream = VersionStream(db)
    nodes = build_chain(db, 4)
    stream.tag("v1")
    return db, stream, nodes


class TestTagging:
    def test_tag_collects_pending_deltas(self, versioned):
        db, stream, nodes = versioned
        db.set_attr(nodes[0], "weight", 5)
        db.set_attr(nodes[1], "weight", 6)
        version = stream.tag("v2")
        assert version.record_count() == 2
        assert stream.pending == []

    def test_duplicate_name_rejected(self, versioned):
        __, stream, __ = versioned
        with pytest.raises(VersionError):
            stream.tag("v1")

    def test_lineage(self, versioned):
        db, stream, nodes = versioned
        db.set_attr(nodes[0], "weight", 5)
        stream.tag("v2")
        assert stream.lineage("v2") == [0, 1, 2]


class TestCheckout:
    def test_round_trip(self, versioned):
        db, stream, nodes = versioned
        original = db.get_attr(nodes[-1], "total")
        db.set_attr(nodes[0], "weight", 100)
        stream.tag("v2")
        stream.checkout("v1")
        assert db.get_attr(nodes[-1], "total") == original
        stream.checkout("v2")
        assert db.get_attr(nodes[-1], "total") == original + 99

    def test_checkout_to_current_is_noop(self, versioned):
        db, stream, nodes = versioned
        value = db.get_attr(nodes[-1], "total")
        stream.checkout("v1")
        assert db.get_attr(nodes[-1], "total") == value

    def test_checkout_blocked_by_pending(self, versioned):
        db, stream, nodes = versioned
        db.set_attr(nodes[0], "weight", 9)
        with pytest.raises(VersionError, match="pending"):
            stream.checkout("v1")

    def test_checkout_discard_pending(self, versioned):
        db, stream, nodes = versioned
        db.set_attr(nodes[0], "weight", 9)
        stream.checkout("v1", discard_pending=True)
        assert db.get_attr(nodes[0], "weight") == 1

    def test_structural_changes_cross_versions(self, versioned):
        db, stream, nodes = versioned
        db.delete(nodes[1])
        stream.tag("pruned")
        assert not db.exists(nodes[1])
        stream.checkout("v1")
        assert db.exists(nodes[1])
        assert db.get_attr(nodes[-1], "total") == 4
        stream.checkout("pruned")
        assert not db.exists(nodes[1])

    def test_unknown_version_rejected(self, versioned):
        __, stream, __ = versioned
        with pytest.raises(VersionError):
            stream.checkout("ghost")
        with pytest.raises(VersionError):
            stream.version(99)


class TestBranching:
    def test_branch_from_old_version(self, versioned):
        db, stream, nodes = versioned
        db.set_attr(nodes[0], "weight", 100)
        stream.tag("v2")
        stream.checkout("v1")
        db.set_attr(nodes[1], "weight", 50)
        branch = stream.tag("branch")
        assert branch.parent == stream.version("v1").version_id
        assert sorted(v.name for v in stream.tips()) == ["branch", "v2"]

    def test_cross_branch_checkout(self, versioned):
        db, stream, nodes = versioned
        db.set_attr(nodes[0], "weight", 100)
        stream.tag("v2")
        stream.checkout("v1")
        db.set_attr(nodes[1], "weight", 50)
        stream.tag("branch")
        stream.checkout("v2")
        assert db.get_attr(nodes[0], "weight") == 100
        assert db.get_attr(nodes[1], "weight") == 1
        stream.checkout("branch")
        assert db.get_attr(nodes[0], "weight") == 1
        assert db.get_attr(nodes[1], "weight") == 50

    def test_distance_counts_replayed_records(self, versioned):
        db, stream, nodes = versioned
        db.set_attr(nodes[0], "weight", 2)
        stream.tag("v2")
        db.set_attr(nodes[0], "weight", 3)
        db.set_attr(nodes[1], "weight", 3)
        stream.tag("v3")
        assert stream.distance("v1", "v2") == 1
        assert stream.distance("v1", "v3") == 3
        assert stream.distance("v3", "v3") == 0


class TestDeltaEconomyAcrossVersions:
    def test_version_size_independent_of_ripple(self, db):
        stream = VersionStream(db)
        nodes = build_chain(db, 200)
        db.get_attr(nodes[-1], "total")
        stream.tag("base")
        db.set_attr(nodes[0], "weight", 7)  # ripples through 200 nodes
        version = stream.tag("tweak")
        assert version.record_count() == 1
        assert version.change_size() < 200
