"""docs/OBSERVABILITY.md must document exactly the live metric and event
namespaces -- the doc is a reference, so it is held to the registry the
same way docs/DIAGNOSTICS.md is held to the diagnostic codes."""

from __future__ import annotations

import pathlib
import re
from dataclasses import fields

from repro.core.database import Database
from repro.obs.events import EVENT_TYPES
from repro.workloads import sum_node_schema

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "OBSERVABILITY.md"
METRIC_BULLET = re.compile(r"^- `([a-z_]+(?:\.[a-z_]+)+)`", re.MULTILINE)
EVENT_HEADING = re.compile(r"^### `(\w+)`$", re.MULTILINE)


def documented_metrics() -> list[str]:
    return METRIC_BULLET.findall(DOC.read_text())


def test_every_live_metric_is_documented_and_vice_versa():
    live = set(Database(sum_node_schema()).metrics().flatten())
    documented = set(documented_metrics())
    assert documented == live, (
        "docs/OBSERVABILITY.md and Database.metrics() disagree: "
        f"undocumented={sorted(live - documented)} "
        f"stale={sorted(documented - live)}"
    )


def test_no_metric_is_documented_twice():
    documented = documented_metrics()
    assert len(documented) == len(set(documented))


def test_every_event_type_is_documented_and_vice_versa():
    headings = EVENT_HEADING.findall(DOC.read_text())
    # The metric sections also use ### headings, but only with dotted
    # backticked names; event headings are bare type names.
    documented = {h for h in headings if h in EVENT_TYPES or "." not in h}
    assert documented == set(EVENT_TYPES), (
        "docs/OBSERVABILITY.md and repro.obs.EVENT_TYPES disagree"
    )
    assert len(headings) == len(set(headings))


def test_every_event_field_is_documented_in_its_section():
    text = DOC.read_text()
    for name, cls in EVENT_TYPES.items():
        heading = f"### `{name}`"
        rest = text[text.index(heading) + len(heading) :]
        next_heading = re.search(r"^#{2,3} ", rest, re.MULTILINE)
        section = rest[: next_heading.start()] if next_heading else rest
        for f in fields(cls):
            if f.name in ("session", "txn"):
                continue  # common attribution, documented once
            assert f"`{f.name}`" in section, (
                f"field {f.name!r} of event {name!r} is not documented"
            )
