"""JSONL trace export, re-reading, summarisation, and the CLI."""

import json

from repro.core.database import Database
from repro.obs import TraceWriter, read_trace, render_summary, summarize_trace
from repro.obs.__main__ import main as obs_main
from repro.workloads import build_chain, sum_node_schema


def traced_workload(tmp_path):
    """Run a small workload under a TraceWriter; returns (db, path, nodes)."""
    path = tmp_path / "trace.jsonl"
    db = Database(sum_node_schema())
    with TraceWriter(db, path):
        nodes = build_chain(db, 4)
        db.set_attr(nodes[0], "weight", 9)
        db.get_attr(nodes[-1], "total")
    return db, path, nodes


class TestTraceWriter:
    def test_every_emitted_event_lands_on_one_line(self, tmp_path):
        db, path, __ = traced_workload(tmp_path)
        events = read_trace(path)
        assert len(events) == db.obs.hub.emitted > 0
        assert all("type" in e and "session" in e and "txn" in e for e in events)

    def test_closing_detaches_from_the_hub(self, tmp_path):
        db, path, nodes = traced_workload(tmp_path)
        written = read_trace(path)
        db.set_attr(nodes[0], "weight", 0)  # after close: not traced
        assert not db.obs.hub.active
        assert read_trace(path) == written

    def test_lines_are_self_describing_json(self, tmp_path):
        __, path, __nodes = traced_workload(tmp_path)
        for line in path.read_text().splitlines():
            payload = json.loads(line)
            assert isinstance(payload["type"], str)


class TestReadTrace:
    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "wave_start"}\n\n{"type": "wave_end"}\n')
        assert [e["type"] for e in read_trace(path)] == ["wave_start", "wave_end"]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "wave_start"}\n{"type": "wave_e')
        assert [e["type"] for e in read_trace(path)] == ["wave_start"]


class TestSummarize:
    def test_counts_by_type_and_session(self):
        events = [
            {"type": "wave_end", "session": "a", "seconds": 0.25},
            {"type": "wave_end", "session": "a", "seconds": 0.25},
            {"type": "slot_evaluated", "session": "b", "unchanged": True},
            {"type": "txn_commit", "session": None},
            {"type": "txn_abort", "session": "b"},
            {"type": "to_rejection", "session": "b"},
            {"type": "from_the_future", "session": None},
        ]
        summary = summarize_trace(events)
        assert summary["events"] == 7
        assert summary["by_type"]["wave_end"] == 2
        assert summary["by_session"] == {"a": 2, "b": 3}
        assert summary["waves"] == 2
        assert summary["wave_seconds_total"] == 0.5
        assert summary["slots_evaluated"] == 1
        assert summary["unchanged_evaluations"] == 1
        assert summary["commits"] == 1
        assert summary["aborts"] == 1
        assert summary["to_rejections"] == 1
        assert summary["unknown_types"] == ["from_the_future"]

    def test_real_trace_summary_matches_engine_counters(self, tmp_path):
        db, path, __ = traced_workload(tmp_path)
        summary = summarize_trace(read_trace(path))
        flat = db.metrics().flatten()
        assert summary["waves"] == flat["engine.waves"]
        assert summary["slots_evaluated"] == flat["engine.rule_evaluations"]
        assert summary["unknown_types"] == []

    def test_render_summary_is_printable(self):
        text = render_summary(summarize_trace([{"type": "txn_commit"}]))
        assert "events: 1" in text
        assert "txn_commit" in text


class TestCLI:
    def test_demo_records_a_summarizable_trace(self, tmp_path, capsys):
        trace = tmp_path / "demo.jsonl"
        assert obs_main(["demo", "--trace", str(trace), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["engine"]["waves"] > 0

        assert obs_main(["summarize", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0
        assert summary["by_session"]  # scheduler attribution present

    def test_snapshot_and_diff_roundtrip(self, tmp_path, capsys):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 3)
        before = tmp_path / "before.json"
        before.write_text(json.dumps(db.metrics().as_dict()))
        db.set_attr(nodes[0], "weight", 4)
        after = tmp_path / "after.json"
        after.write_text(json.dumps(db.metrics().as_dict()))

        assert obs_main(["snapshot", str(after), "--flat"]) == 0
        out = capsys.readouterr().out
        assert "engine.waves = " in out

        assert obs_main(["diff", str(after), str(before)]) == 0
        assert "engine:" in capsys.readouterr().out
