"""The metrics registry: one snapshot over every stats substrate."""

import pytest

from repro.core.database import Database
from repro.obs import LatencyTimer, MetricsSnapshot, Observability, TIMER_NAMES
from repro.workloads import build_chain, sum_node_schema

#: every section a plain in-memory database must expose.
CORE_SECTIONS = {
    "engine",
    "scheduler",
    "cc",
    "buffer",
    "disk",
    "usage",
    "txn",
    "wal",
    "latency",
    "events",
}


class TestSnapshotShape:
    def test_one_call_covers_every_substrate(self):
        db = Database(sum_node_schema())
        snap = db.metrics()
        assert CORE_SECTIONS <= set(snap)

    def test_sections_are_flat_name_to_number_maps(self):
        db = Database(sum_node_schema())
        snap = db.metrics()
        for section in ("engine", "buffer", "disk", "cc", "txn"):
            for name, value in snap[section].items():
                assert isinstance(name, str)
                assert isinstance(value, (int, float)), f"{section}.{name}"

    def test_snapshot_is_a_frozen_copy(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 3)
        before = db.metrics()
        db.get_attr(nodes[-1], "total")
        after = db.metrics()
        # The first snapshot did not move when the engine did.
        assert after["engine"]["rule_evaluations"] > before["engine"][
            "rule_evaluations"
        ]

    def test_as_dict_is_json_clean_and_detached(self):
        db = Database(sum_node_schema())
        plain = db.metrics().as_dict()
        plain["engine"]["rule_evaluations"] = -1
        assert db.metrics()["engine"]["rule_evaluations"] != -1

    def test_flatten_uses_dotted_names(self):
        db = Database(sum_node_schema())
        flat = db.metrics().flatten()
        assert "buffer.hits" in flat
        assert "latency.wave.count" in flat
        assert all("." in name for name in flat)


class TestSnapshotDiff:
    def test_workload_cost_is_one_subtraction(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 5)
        db.get_attr(nodes[-1], "total")
        before = db.metrics()
        db.set_attr(nodes[0], "weight", 9)
        db.get_attr(nodes[-1], "total")
        delta = db.metrics() - before
        assert delta["engine"]["rule_evaluations"] > 0
        assert delta["engine"]["waves"] >= 1
        # Untouched counters difference to zero.
        assert delta["wal"]["commits_logged"] == 0

    def test_diff_preserves_identity_values(self):
        db = Database(sum_node_schema())
        delta = db.metrics() - db.metrics()
        # Booleans are identities, not counters: False - False is not 0.
        assert delta["wal"]["attached"] is False

    def test_diff_requires_a_snapshot(self):
        db = Database(sum_node_schema())
        with pytest.raises(TypeError):
            db.metrics() - {"engine": {}}

    def test_render_mentions_every_section(self):
        text = Database(sum_node_schema()).metrics().render()
        for section in ("engine:", "buffer:", "latency:"):
            assert section in text


class TestLatencyTimers:
    def test_timer_streams_count_total_min_max(self):
        timer = LatencyTimer()
        for seconds in (0.5, 0.1, 0.9):
            timer.record(seconds)
        assert timer.count == 3
        assert timer.total == pytest.approx(1.5)
        assert timer.min == pytest.approx(0.1)
        assert timer.max == pytest.approx(0.9)
        assert timer.mean == pytest.approx(0.5)

    def test_empty_timer_is_all_zero(self):
        timer = LatencyTimer()
        assert timer.mean == 0.0
        assert timer.as_dict() == {
            "count": 0,
            "total_seconds": 0.0,
            "min_seconds": 0.0,
            "max_seconds": 0.0,
        }

    def test_every_database_carries_the_standard_timers(self):
        db = Database(sum_node_schema())
        assert set(db.obs.timers) == set(TIMER_NAMES)

    def test_waves_and_commits_are_timed(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 4)
        db.set_attr(nodes[0], "weight", 7)
        with db.transaction("t"):
            db.set_attr(nodes[1], "weight", 2)
        snap = db.metrics()
        assert snap["latency"]["wave"]["count"] > 0
        assert snap["latency"]["commit"]["count"] > 0


class TestProviderRegistry:
    def test_registering_a_section_replaces_it(self):
        obs = Observability()
        obs.register("cc", lambda: {"reads_checked": 0})
        obs.register("cc", lambda: {"reads_checked": 41})
        assert obs.snapshot()["cc"]["reads_checked"] == 41

    def test_snapshot_always_appends_latency_and_events(self):
        obs = Observability()
        snap = obs.snapshot()
        assert set(snap) == {"latency", "events"}
        assert isinstance(snap, MetricsSnapshot)

    def test_persistent_wal_section_has_the_same_keys_as_the_stub(self, tmp_path):
        stub_keys = set(Database(sum_node_schema()).metrics()["wal"])
        db = Database.open(str(tmp_path / "db"), sum_node_schema(), sync=False)
        try:
            live = db.metrics()["wal"]
        finally:
            db.close()
        assert set(live) == stub_keys
        assert live["attached"] is True
