"""The event hub and the hook points that feed it."""

import pytest

from repro.core.database import Database
from repro.errors import ConcurrencyAbort
from repro.obs.events import (
    EVENT_TYPES,
    BlockEvicted,
    BlockLoaded,
    Event,
    EventHub,
    SlotEvaluated,
    SlotMarked,
    TORejection,
    TxnAbort,
    TxnCommit,
    WaveEnd,
    WaveStart,
)
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.txn.manager import MultiUserScheduler
from repro.txn.timestamps import TimestampManager
from repro.workloads import build_chain, sum_node_schema


def collect(db):
    """Subscribe a list-appending listener; returns (events, listener)."""
    events: list[Event] = []
    listener = db.obs.hub.subscribe(events.append)
    return events, listener


class TestHub:
    def test_subscribe_unsubscribe_maintains_active(self):
        hub = EventHub()
        assert not hub.active
        listener = hub.subscribe(lambda event: None)
        assert hub.active
        hub.unsubscribe(listener)
        assert not hub.active

    def test_unsubscribing_a_stranger_is_harmless(self):
        hub = EventHub()
        hub.subscribe(lambda event: None)
        hub.unsubscribe(lambda event: None)
        assert hub.active  # the real subscriber is still there

    def test_emit_without_subscribers_is_a_no_op(self):
        hub = EventHub()
        hub.emit(WaveStart())
        assert hub.emitted == 0

    def test_emit_stamps_attribution_context(self):
        hub = EventHub()
        seen = []
        hub.subscribe(seen.append)
        hub.session = "alice"
        hub.txn = 12
        hub.emit(WaveStart())
        assert seen[0].session == "alice"
        assert seen[0].txn == 12

    def test_every_event_type_round_trips_to_dict(self):
        for name, cls in EVENT_TYPES.items():
            payload = cls().to_dict()
            assert payload["type"] == name
            assert "session" in payload and "txn" in payload

    def test_to_dict_converts_slots_to_lists(self):
        payload = SlotMarked(slot=(4, "total")).to_dict()
        assert payload["slot"] == [4, "total"]


class TestEngineHooks:
    def test_idle_hub_means_zero_emissions(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 4)
        db.set_attr(nodes[0], "weight", 9)
        db.get_attr(nodes[-1], "total")
        assert db.obs.hub.emitted == 0

    def test_update_emits_a_bracketed_wave(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 4)
        db.get_attr(nodes[-1], "total")
        events, listener = collect(db)
        db.set_attr(nodes[0], "weight", 9)
        db.obs.hub.unsubscribe(listener)
        starts = [e for e in events if isinstance(e, WaveStart)]
        ends = [e for e in events if isinstance(e, WaveEnd)]
        assert len(starts) == len(ends) == 1
        assert starts[0].kind == ends[0].kind
        assert (nodes[0], "weight") in starts[0].intrinsic_seeds
        assert ends[0].seconds >= 0.0
        assert any(isinstance(e, SlotMarked) for e in events)

    def test_demand_read_emits_evaluations(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 4)
        events, listener = collect(db)
        value = db.get_attr(nodes[-1], "total")
        db.obs.hub.unsubscribe(listener)
        evaluated = [e for e in events if isinstance(e, SlotEvaluated)]
        assert evaluated
        assert any(
            e.slot == (nodes[-1], "total") and e.value == value for e in evaluated
        )

    def test_unchanged_reevaluation_is_flagged(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 3)
        db.get_attr(nodes[-1], "total")
        events, listener = collect(db)
        with db.batch():
            # Swap weight between the first two nodes: their partial sums
            # move but every total from nodes[1] on re-evaluates unchanged.
            db.set_attr(nodes[0], "weight", 2)
            db.set_attr(nodes[1], "weight", 0)
        db.get_attr(nodes[-1], "total")
        db.obs.hub.unsubscribe(listener)
        evaluated = [e for e in events if isinstance(e, SlotEvaluated)]
        assert any(e.unchanged for e in evaluated)
        assert any(not e.unchanged for e in evaluated)


class TestBufferHooks:
    def hub_pool(self, capacity, n_blocks):
        disk = SimulatedDisk(256)
        ids = [disk.allocate_block().block_id for __ in range(n_blocks)]
        pool = BufferPool(disk, capacity=capacity)
        hub = EventHub()
        pool.hub = hub
        events: list[Event] = []
        hub.subscribe(events.append)
        return pool, ids, events

    def test_miss_emits_block_loaded(self):
        pool, ids, events = self.hub_pool(4, 2)
        pool.fetch(ids[0])
        pool.fetch(ids[0])  # hit: silent
        loaded = [e for e in events if isinstance(e, BlockLoaded)]
        assert [e.block_id for e in loaded] == [ids[0]]

    def test_lru_eviction_emits_block_evicted(self):
        pool, ids, events = self.hub_pool(1, 2)
        pool.fetch(ids[0], dirty=True)
        pool.fetch(ids[1])
        evicted = [e for e in events if isinstance(e, BlockEvicted)]
        assert len(evicted) == 1
        assert evicted[0].block_id == ids[0]
        assert evicted[0].dirty is True
        assert evicted[0].reason == "lru"

    def test_drop_and_clear_report_their_reason(self):
        pool, ids, events = self.hub_pool(4, 2)
        pool.fetch(ids[0], dirty=True)
        pool.fetch(ids[1])
        pool.drop(ids[0])
        pool.clear()
        reasons = [e.reason for e in events if isinstance(e, BlockEvicted)]
        assert reasons == ["drop", "clear"]


class TestTxnAndCCHooks:
    def test_commit_event_carries_txn_attribution(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 3)
        events, listener = collect(db)
        with db.transaction("bump"):
            db.set_attr(nodes[0], "weight", 5)
        db.obs.hub.unsubscribe(listener)
        commits = [e for e in events if isinstance(e, TxnCommit)]
        assert len(commits) == 1
        assert commits[0].label == "bump"
        assert commits[0].records >= 1
        assert commits[0].txn == commits[0].txn_id
        # Context is torn down with the transaction.
        assert db.obs.hub.txn is None

    def test_abort_event_on_rolled_back_transaction(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 3)
        events, listener = collect(db)
        with pytest.raises(RuntimeError):
            with db.transaction("doomed"):
                db.set_attr(nodes[0], "weight", 5)
                raise RuntimeError("boom")
        db.obs.hub.unsubscribe(listener)
        aborts = [e for e in events if isinstance(e, TxnAbort)]
        assert len(aborts) == 1
        assert aborts[0].label == "doomed"
        assert db.obs.hub.txn is None

    def test_to_rejection_event_names_the_conflict(self):
        hub = EventHub()
        seen = []
        hub.subscribe(seen.append)
        tsm = TimestampManager()
        tsm.hub = hub
        tsm.check_write(50, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_read(1, 7)
        rejection = next(e for e in seen if isinstance(e, TORejection))
        assert rejection.kind == "read"
        assert rejection.iid == 7
        assert rejection.ts == 1
        assert rejection.conflict_ts == 50
        assert rejection.conflict_kind == "write"

    def test_scheduler_attributes_events_to_sessions(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 3)
        db.get_attr(nodes[-1], "total")
        events, listener = collect(db)

        def writer(session):
            session.set_attr(nodes[0], "weight", 9)
            yield

        def reader(session):
            yield
            yield
            session.get_attr(nodes[-1], "total")

        MultiUserScheduler(db).run([("writer", writer), ("reader", reader)])
        db.obs.hub.unsubscribe(listener)
        sessions = {e.session for e in events}
        assert {"writer", "reader"} <= sessions
        # Scheduler work never leaks attribution past its step.
        assert db.obs.hub.session is None
