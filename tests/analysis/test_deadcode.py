"""CA4xx: dead attributes, ports, flows, and over-declared rule inputs."""

from __future__ import annotations

import dataclasses

from repro.analysis import analyze_schema
from repro.analysis.diagnostics import Severity
from repro.core.rules import Local
from repro.dsl import compile_schema

from tests.analysis.conftest import FIXTURES, by_code, codes


def test_dead_fixture_flags_every_dead_code(lint_fixture):
    diagnostics = lint_fixture("dead.cactis")
    assert codes(diagnostics) >= {"CA401", "CA402", "CA403", "CA404", "CA405", "CA407"}
    assert not [d for d in diagnostics if d.is_error]


def test_dead_spans(lint_fixture):
    diagnostics = lint_fixture("dead.cactis")
    spans = {d.code: (d.line, d.column) for d in diagnostics}
    assert spans["CA401"] == (14, 5)  # serial : string;
    assert spans["CA405"] == (5, 5)  # unused : integer from socket;
    assert spans["CA403"] == (25, 5)  # spare : plumbing socket;
    assert spans["CA407"] == (19, 5)  # outlet ignored = rate;


def test_consumed_flow_is_not_flagged(lint_fixture):
    diagnostics = lint_fixture("dead.cactis")
    for diag in by_code(diagnostics, "CA405") + by_code(diagnostics, "CA407"):
        assert "flow_rate" not in diag.message


def test_unused_declared_input_is_ca406():
    """A hand-built rule declaring more inputs than its body reads
    subscribes to spurious change propagation -- only visible on the
    compiled-Schema path, where declared inputs and the body AST can
    disagree."""
    schema = compile_schema(
        """
        object class c is
          attributes
            a : integer;
            b : integer;
            z : integer derived;
          rules
            z = a + 1;
        end object;
        """
    )
    cls = schema.classes["c"]
    (rule,) = [r for r in cls.rules if r.name == "c.z"]
    padded = dataclasses.replace(
        rule, inputs={**rule.inputs, "b": Local("b")}
    )
    object.__setattr__(cls, "rules", tuple(
        padded if r is rule else r for r in cls.rules
    ))

    diagnostics = analyze_schema(schema)
    (diag,) = by_code(diagnostics, "CA406")
    assert diag.severity is Severity.WARNING
    assert "Local('b')" in diag.message
    assert "never uses it" in diag.message


def test_dsl_compiled_rules_never_trip_ca406():
    """The compiler derives inputs from the body, so they match by
    construction."""
    schema = compile_schema((FIXTURES / "dead.cactis").read_text())
    assert not by_code(analyze_schema(schema), "CA406")
