"""CA6xx/CA7xx: the abstract-interpretation dataflow pass."""

from __future__ import annotations

import pytest

from repro.analysis import analyze_source
from repro.analysis.dataflow import (
    BOOL,
    FALSE,
    TOP,
    TRUE,
    Interval,
    ValueAnalysis,
    add,
    compare,
    const,
    div,
    logical_and,
    logical_or,
    mul,
    sub,
)
from repro.analysis.diagnostics import Severity
from repro.analysis.model import model_from_decl
from repro.dsl.parser import parse

from tests.analysis.conftest import by_code

# -- the Interval lattice ---------------------------------------------------


def test_join_and_meet():
    a = Interval(0.0, 5.0)
    b = Interval(3.0, 9.0)
    assert a.join(b) == Interval(0.0, 9.0)
    assert a.meet(b) == Interval(3.0, 5.0)
    assert a.meet(Interval(6.0, 7.0)) is None


def test_constants_and_booleans():
    assert const(True) == TRUE
    assert const(False) == FALSE
    assert const(3) == Interval(3.0, 3.0)
    assert const("opaque") == TOP
    assert TRUE.join(FALSE) == BOOL


def test_arithmetic_respects_infinities():
    assert add(TOP, const(1)) == TOP
    assert sub(const(5), Interval(1.0, 2.0)) == Interval(3.0, 4.0)
    assert mul(Interval(-2.0, 3.0), const(2)) == Interval(-4.0, 6.0)
    assert mul(TOP, const(0)) == Interval(0.0, 0.0)  # 0 * inf = 0
    assert div(const(7), const(2)) == const(3)  # runtime // on integers
    assert div(TOP, const(2)) == TOP


def test_comparisons_decide_only_separated_ranges():
    assert compare("<", Interval(0.0, 2.0), Interval(5.0, 9.0)) == TRUE
    assert compare("<", Interval(5.0, 9.0), Interval(0.0, 2.0)) == FALSE
    assert compare("<", Interval(0.0, 6.0), Interval(5.0, 9.0)) == BOOL
    assert compare("==", const(4), const(4)) == TRUE
    assert compare("!=", const(4), const(5)) == TRUE


# -- the whole-schema fixpoint ----------------------------------------------


def _analysis(source: str) -> ValueAnalysis:
    return ValueAnalysis(model_from_decl(parse(source)))


def test_fixpoint_propagates_constants_across_rules():
    analysis = _analysis(
        """
        object class c is
          attributes
            base    : integer;
            doubled : integer;
          rules
            base = 5;
            doubled = base * 2 + 1;
        end object;
        """
    )
    assert analysis.values[("c", "base")] == const(5)
    assert analysis.values[("c", "doubled")] == const(11)


def test_fixpoint_joins_producers_with_flow_default():
    analysis = _analysis(
        """
        relationship wire is
            signal : integer from plug;
        end relationship;
        object class producer is
          relationships out : wire multi plug;
          attributes level : integer;
          rules
            level = 7;
            out signal = level;
        end object;
        object class consumer is
          relationships feed : wire socket;
          attributes seen : integer;
          rules seen = feed.signal;
        end object;
        """
    )
    # A dangling port reads the flow default 0; a connected one reads 7.
    assert analysis.values[("consumer", "seen")] == Interval(0.0, 7.0)


def test_mutual_recursion_terminates_at_top():
    analysis = _analysis(
        """
        object class c is
          attributes
            a : integer;
            b : integer;
          rules
            a = b + 1;
            b = a + 1;
        end object;
        """
    )
    assert analysis.values[("c", "a")] == TOP
    assert analysis.values[("c", "b")] == TOP


# -- CA60x: initialization and body paths -----------------------------------


def test_unproduced_read_is_ca601(lint_fixture):
    diagnostics = lint_fixture("uninitialized.cactis")
    (diag,) = by_code(diagnostics, "CA601")
    assert diag.severity is Severity.WARNING
    assert "feed.quality" in diag.message
    assert "'wire'" in diag.message


def test_empty_port_loop_is_ca602(lint_fixture):
    diagnostics = lint_fixture("uninitialized.cactis")
    (diag,) = by_code(diagnostics, "CA602")
    assert diag.severity is Severity.WARNING
    assert "'lonely'" in diag.message
    assert "'orphan'" in diag.message


def test_missing_return_path_is_ca603_error(lint_fixture):
    diagnostics = lint_fixture("uninitialized.cactis")
    (diag,) = by_code(diagnostics, "CA603")
    assert diag.severity is Severity.ERROR
    assert "consumer.stale" in diag.message


def test_read_before_assign_is_ca604(lint_fixture):
    diagnostics = lint_fixture("uninitialized.cactis")
    (diag,) = by_code(diagnostics, "CA604")
    assert diag.severity is Severity.WARNING
    assert "'v'" in diag.message


def test_produced_reads_and_definite_returns_stay_quiet(lint_fixture):
    diagnostics = lint_fixture("uninitialized.cactis")
    flagged = [d.message for d in diagnostics if d.code.startswith("CA6")]
    assert not any("consumer.total" in m for m in flagged)


def test_constant_condition_prunes_the_missing_return():
    source = """
    object class c is
      attributes
        x : integer;
      rules
        x = begin
            if 1 < 2 then
                return 9;
            end if;
        end;
    end object;
    """
    assert not by_code(analyze_source(source), "CA603")


def test_for_each_assignment_counts_as_initialization():
    source = """
    relationship r is v : integer from plug; end relationship;
    object class p is
      relationships out : r multi plug;
      attributes k : integer;
      rules out v = k;
    end object;
    object class c is
      relationships feed : r multi socket;
      attributes total : integer;
      rules
        total = begin
            acc : integer;
            acc := 0;
            for each w related to feed do
                acc := acc + w.v;
            end for;
            return acc;
        end;
    end object;
    """
    # The loop pass smashes `acc` to TOP before re-reading it; the earlier
    # assignment must keep that read from counting as read-before-assign.
    assert not by_code(analyze_source(source), "CA604")


# -- CA61x verdicts ---------------------------------------------------------


def test_interval_true_constraint_is_ca611(lint_fixture):
    diagnostics = lint_fixture("folding.cactis")
    (diag,) = by_code(diagnostics, "CA611")
    assert diag.severity is Severity.INFO
    assert "in_range" in diag.message
    assert "REPRO_NO_FOLD" in diag.message


def test_interval_false_constraint_is_ca612_error(lint_fixture):
    diagnostics = lint_fixture("folding.cactis")
    (diag,) = by_code(diagnostics, "CA612")
    assert diag.severity is Severity.ERROR
    assert "broken" in diag.message


def test_unsatisfiable_predicate_is_ca613_error(lint_fixture):
    diagnostics = lint_fixture("folding.cactis")
    (diag,) = by_code(diagnostics, "CA613")
    assert diag.severity is Severity.ERROR
    assert "hot_meter" in diag.message


def test_always_true_predicate_is_ca614(lint_fixture):
    diagnostics = lint_fixture("folding.cactis")
    (diag,) = by_code(diagnostics, "CA614")
    assert diag.severity is Severity.INFO
    assert "valid_meter" in diag.message


def test_propositional_verdicts_are_not_double_reported(lint_fixture):
    """CA5xx already covers `done or not done`; CA61x must stay silent."""
    diagnostics = lint_fixture("predicates.cactis")
    assert not [d for d in diagnostics if d.code.startswith("CA61")]


def test_contingent_constraint_stays_quiet():
    source = """
    object class c is
      attributes
        x : integer;
      constraints
        bound : x <= 10;
    end object;
    """
    assert not [
        d for d in analyze_source(source) if d.code.startswith("CA61")
    ]


# -- CA70x confluence -------------------------------------------------------


def test_overlapping_subtype_rules_are_ca701(lint_fixture):
    diagnostics = lint_fixture("races.cactis")
    (diag,) = by_code(diagnostics, "CA701")
    assert diag.severity is Severity.WARNING
    assert "'big_job'" in diag.message
    assert "'hot_job'" in diag.message
    assert "'priority'" in diag.message


def test_interval_disjoint_subtypes_are_not_flagged(lint_fixture):
    """cold_job (< 5) is disjoint from both hot_job (> 10) and
    big_job (> 8): exactly one CA701 pair survives."""
    diagnostics = lint_fixture("races.cactis")
    assert not any("cold_job" in d.message for d in diagnostics)


def test_membership_oscillation_is_ca702_error(lint_fixture):
    diagnostics = lint_fixture("races.cactis")
    (diag,) = by_code(diagnostics, "CA702")
    assert diag.severity is Severity.ERROR
    assert "busy_job" in diag.message
    assert "'score'" in diag.message


def test_propositionally_disjoint_subtypes_are_not_flagged():
    source = """
    object class t is
      attributes
        done : boolean;
        rank : integer;
      rules rank = 0;
    end object;
    object class open_t subtype of t where not done is
      rules rank = 1;
    end object;
    object class shut_t subtype of t where done is
      rules rank = 2;
    end object;
    """
    assert not by_code(analyze_source(source), "CA701")


def test_subtypes_of_unrelated_supertypes_are_not_compared():
    source = """
    object class a is
      attributes x : integer;
    end object;
    object class b is
      attributes x : integer;
    end object;
    object class big_a subtype of a where x > 0 is
      rules x = 1;
    end object;
    object class big_b subtype of b where x > 0 is
      rules x = 1;
    end object;
    """
    assert not by_code(analyze_source(source), "CA701")
