"""CA3xx: the rule-body type checker, with exact source spans."""

from __future__ import annotations

from repro.analysis import analyze_source
from repro.analysis.diagnostics import Severity

from tests.analysis.conftest import by_code, codes


def test_types_fixture_flags_every_type_code(lint_fixture):
    diagnostics = lint_fixture("types.cactis")
    assert codes(diagnostics) >= {
        "CA301",  # arithmetic on mismatched operands
        "CA302",  # comparison across unrelated types
        "CA303",  # non-boolean condition
        "CA304",  # body type vs. target type
        "CA305",  # bare loop variable in an expression
        "CA306",  # assignment type mismatch
        "CA307",  # non-boolean constraint
    }


def test_type_error_spans(lint_fixture):
    diagnostics = lint_fixture("types.cactis")
    spans = {d.code: (d.line, d.column) for d in diagnostics}
    assert spans["CA301"] == (17, 15)  # name + 1
    assert spans["CA304"] == (18, 21)  # real body into integer target
    assert spans["CA306"] == (21, 9)  # n := "five"
    assert spans["CA303"] == (22, 12)  # if count then
    assert spans["CA305"] == (26, 22)  # n + w
    assert spans["CA302"] == (31, 18)  # name < count
    assert spans["CA307"] == (32, 19)  # count + 1 as a constraint


def test_condition_and_constraint_shape_checks_are_warnings(lint_fixture):
    diagnostics = lint_fixture("types.cactis")
    for code in ("CA303", "CA307"):
        for diag in by_code(diagnostics, code):
            assert diag.severity is Severity.WARNING


def test_integer_widens_to_real_without_complaint():
    source = """
    object class c is
      attributes
        n : integer;
        r : real;
      rules
        r = n + 1;
    end object;
    """
    diagnostics = analyze_source(source)
    assert not [d for d in diagnostics if d.code.startswith("CA3")]


def test_time_arithmetic_with_integers_is_legal():
    """Figure 1 computes exp_compl as TIME0 + integer durations."""
    source = """
    object class c is
      attributes
        base : time;
        span : integer;
        due  : time;
      rules
        due = base + span;
    end object;
    """
    diagnostics = analyze_source(source, constants=())
    assert not [d for d in diagnostics if d.code.startswith("CA3")]


def test_builtin_signatures_are_checked():
    source = """
    object class c is
      attributes
        name : string;
        when : time;
      rules
        when = later_of(name, 3);
    end object;
    """
    diagnostics = analyze_source(source)
    assert by_code(diagnostics, "CA301")


def test_unknown_external_function_result_is_not_second_guessed():
    """Externally-declared functions return `unknown`; no cascade."""
    source = """
    object class c is
      attributes
        x : integer;
      rules
        x = mystery() + 1;
    end object;
    """
    diagnostics = analyze_source(source, functions=("mystery",))
    assert not [d for d in diagnostics if d.code.startswith("CA3")]
