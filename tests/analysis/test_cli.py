"""The lint CLI: exit codes, rendering, --strict, --paper-figures."""

from __future__ import annotations

import pytest

from repro.analysis.__main__ import main

from tests.analysis.conftest import FIXTURES

EXAMPLES = FIXTURES.parent.parent.parent / "examples" / "schemas"


def run(capsys, *argv) -> tuple[int, str]:
    status = main(list(argv))
    return status, capsys.readouterr().out


def test_error_fixture_exits_nonzero(capsys):
    status, out = run(capsys, str(FIXTURES / "local_cycle.cactis"))
    assert status == 1
    assert "CA201" in out
    assert "error" in out


def test_clean_schema_exits_zero(capsys):
    status, out = run(capsys, str(EXAMPLES / "project.cactis"))
    assert status == 0
    # The foldable staff_level_valid constraint is reported (CA611, info);
    # infos never fail the build, even under --strict.
    assert out.strip().endswith("0 error(s), 0 warning(s), 1 info(s)")
    status, __ = run(capsys, "--strict", str(EXAMPLES / "project.cactis"))
    assert status == 0


def test_warnings_pass_unless_strict(capsys):
    dead = str(FIXTURES / "dead.cactis")
    status, _ = run(capsys, dead)
    assert status == 0
    status, _ = run(capsys, "--strict", dead)
    assert status == 1


def test_diagnostics_render_with_file_line_column(capsys):
    path = str(FIXTURES / "local_cycle.cactis")
    _, out = run(capsys, path)
    assert any(
        line.startswith(f"{path}:") and ": error CA201:" in line
        for line in out.splitlines()
    )


def test_quiet_prints_only_the_summary(capsys):
    status, out = run(capsys, "--quiet", str(FIXTURES / "dead.cactis"))
    assert status == 0
    assert len(out.strip().splitlines()) == 1


def test_missing_file_is_a_usage_error(capsys):
    status = main([str(FIXTURES / "no_such_schema.cactis")])
    assert status == 2


def test_no_files_and_no_paper_figures_is_rejected():
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


def test_paper_figures_are_error_free(capsys):
    status, out = run(capsys, "--paper-figures")
    assert status == 0
    assert out.strip().endswith("info(s)")


def test_multiple_files_form_one_compilation_unit(capsys):
    """very_late.cactis extends milestones.cactis; alone it cannot
    resolve `milestone`, together they lint clean."""
    status, _ = run(
        capsys,
        str(EXAMPLES / "milestones.cactis"),
        str(EXAMPLES / "very_late.cactis"),
    )
    assert status == 0

    status, out = run(capsys, str(EXAMPLES / "very_late.cactis"))
    assert status == 1
    assert "CA108" in out
