"""CA2xx: static cycle detection, cross-checked against the runtime.

The headline case: ``connection_cycle.cactis`` compiles without complaint
and only failed at runtime (``CycleError`` when two instances connect)
before the analyzer existed.  The tests prove both halves -- the analyzer
flags it statically (CA202), and the runtime error it predicts really
happens.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_source
from repro.analysis.diagnostics import Severity, has_errors
from repro.core.database import Database
from repro.dsl import compile_schema
from repro.env.milestones import MILESTONE_SCHEMA
from repro.errors import CycleError

from tests.analysis.conftest import FIXTURES, by_code, codes


def test_local_cycle_is_ca201_error(lint_fixture):
    diagnostics = lint_fixture("local_cycle.cactis")
    (diag,) = by_code(diagnostics, "CA201")
    assert diag.severity is Severity.ERROR
    assert "a -> b -> a" in diag.message or "b -> a -> b" in diag.message
    # Anchored at one of the two rule declarations.
    assert (diag.line, diag.column) in {(7, 5), (8, 5)}


def test_local_cycle_really_raises_at_runtime():
    schema = compile_schema((FIXTURES / "local_cycle.cactis").read_text())
    db = Database(schema)
    iid = db.create("widget")
    with pytest.raises(CycleError):
        db.get_attr(iid, "a")


def test_connection_cycle_is_ca202_error(lint_fixture):
    diagnostics = lint_fixture("connection_cycle.cactis")
    (diag,) = by_code(diagnostics, "CA202")
    assert diag.severity is Severity.ERROR
    assert "talker" in diag.message and "replier" in diag.message
    assert "echo" in diag.message
    assert diag.line > 0 and diag.column > 0


def test_connection_cycle_compiles_but_fails_at_runtime():
    """Before the analyzer, this schema's bug was invisible until the
    first connection raised CycleError."""
    schema = compile_schema((FIXTURES / "connection_cycle.cactis").read_text())
    db = Database(schema)
    talker = db.create("talker")
    replier = db.create("replier")
    with pytest.raises(CycleError):
        db.connect(talker, "out", replier, "inp")
        # Some engines defer detection to demand time.
        db.get_transmitted(talker, "out", "ping")


def test_milestone_recursion_is_info_not_error():
    diagnostics = analyze_source(MILESTONE_SCHEMA)
    assert not has_errors(diagnostics)
    (recursive,) = by_code(diagnostics, "CA203")
    assert recursive.severity is Severity.INFO
    assert "milestone_dep" in recursive.message
    assert not by_code(diagnostics, "CA201")
    assert not by_code(diagnostics, "CA202")


def test_cycle_through_inherited_rules_reported_once():
    source = """
    object class base is
      attributes
        a : integer;
        b : integer;
      rules
        a = b;
        b = a;
    end object;

    object class child subtype of base is
    end object;
    """
    diagnostics = analyze_source(source)
    assert len(by_code(diagnostics, "CA201")) == 1


def test_three_class_relationship_recursion_is_ca203():
    source = """
    relationship chain is
        v : integer from plug;
    end relationship;

    object class stage is
      relationships
        prev : chain socket;
        next : chain plug;
      attributes
        x : integer;
      rules
        x = prev.v + 1;
        next v = x;
    end object;
    """
    diagnostics = analyze_source(source)
    # Feedback crosses two different ports, so one connection is safe:
    # info, not error.
    assert by_code(diagnostics, "CA203")
    assert not by_code(diagnostics, "CA202")
    assert not by_code(diagnostics, "CA201")
