"""Hypothesis properties tying the static analysis to the runtime.

1. **Soundness of CA603**: when the abstract interpreter reports no
   missing-return path for a random rule body, evaluating that body can
   never raise the fell-off-the-end ``DslRuntimeError`` -- pruned
   branches are genuinely infeasible, so the concrete paths are a subset
   of the abstract ones.
2. **Fold parity**: a database built with constraint folding behaves
   identically to one built with ``REPRO_NO_FOLD=1``, in both engine
   modes (``REPRO_NO_COMPILE`` off and on) -- same values, same
   ``ConstraintViolation`` outcomes on randomized update scripts.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_source
from repro.compile import COMPILE_DISABLED_ENV, FOLD_DISABLED_ENV
from repro.core.database import Database
from repro.dsl import compile_schema
from repro.errors import ConstraintViolation, DslRuntimeError, TransactionAborted

# -- property 1: no CA603 means the body always returns ---------------------

SCHEMA_TEMPLATE = """
object class c is
  attributes
    x : integer;
    y : integer;
    d : integer;
  rules
    d = {body};
end;
"""

_num = st.integers(min_value=-9, max_value=9).map(str)
_atom = st.sampled_from(["x", "y"]) | _num
_cmp = st.sampled_from(["<", "<=", "==", "!=", ">", ">="])
_expr = st.one_of(
    _atom,
    st.tuples(_atom, _cmp, _atom).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    st.tuples(_atom, st.sampled_from(["+", "-", "*"]), _atom).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    ),
)


@st.composite
def _stmts(draw, depth: int):
    out = []
    for __ in range(draw(st.integers(min_value=0, max_value=2))):
        kind = draw(st.sampled_from(["assign", "if", "return"]))
        if kind == "assign":
            out.append(f"a := {draw(_expr)};")
        elif kind == "return":
            out.append(f"return {draw(_expr)};")
        elif depth > 0:
            cond = draw(_expr)
            then = draw(_stmts(depth - 1))
            orelse = draw(_stmts(depth - 1))
            block = f"if {cond} then {' '.join(then)} "
            if orelse:
                block += f"else {' '.join(orelse)} "
            out.append(block + "end if;")
    return out


@st.composite
def _bodies(draw):
    stmts = draw(_stmts(depth=2))
    if draw(st.booleans()):
        stmts.append(f"return {draw(_expr)};")
    return f"begin a : integer; {' '.join(stmts)} end"


@given(
    body=_bodies(),
    x=st.integers(min_value=-20, max_value=20),
    y=st.integers(min_value=-20, max_value=20),
)
@settings(max_examples=120, deadline=None)
def test_no_ca603_means_the_body_always_returns(body, x, y):
    source = SCHEMA_TEMPLATE.format(body=body)
    clean = not any(
        d.code == "CA603" for d in analyze_source(source)
    )
    schema = compile_schema(source)
    rule = next(
        r
        for r in schema.resolved("c").rules
        if getattr(r.target, "attr", None) == "d"
    )
    kwargs = {"l_x": x, "l_y": y}
    kwargs = {kw: kwargs[kw] for kw in rule.inputs}
    try:
        rule.body(**kwargs)
    except DslRuntimeError as exc:
        if "without a return" in str(exc):
            assert not clean, (
                f"analysis saw no missing-return path in {body!r} but the "
                f"runtime fell off the end with x={x}, y={y}"
            )


# -- property 2: folding is observably invisible ----------------------------

FOLD_SRC = """
object class task is
  attributes
    effort : integer;
    budget : integer;
    level  : integer;
  rules
    level = begin
        if effort > budget then
            return 2;
        end if;
        return 1;
    end;
  constraints
    level_ok : level >= 1 and level <= 2;
    cap      : effort <= 100;
end;
"""


def _build(no_fold: bool, no_compile: bool):
    if no_fold:
        os.environ[FOLD_DISABLED_ENV] = "1"
    if no_compile:
        os.environ[COMPILE_DISABLED_ENV] = "1"
    try:
        schema = compile_schema(FOLD_SRC)
    finally:
        os.environ.pop(FOLD_DISABLED_ENV, None)
        os.environ.pop(COMPILE_DISABLED_ENV, None)
    expected = 0 if no_fold else 1
    assert schema.compile_stats["constraints_folded"] == expected
    return Database(schema)


def _apply(db, script):
    task = db.create("task", budget=10)
    log = []
    for attr, value in script:
        try:
            db.set_attr(task, attr, value)
            log.append(("ok", db.get_attr(task, "level")))
        except (ConstraintViolation, TransactionAborted) as exc:
            log.append((type(exc).__name__, str(exc)))
    return log


@given(
    script=st.lists(
        st.tuples(
            st.sampled_from(["effort", "budget"]),
            st.integers(min_value=-10, max_value=150),
        ),
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_folded_and_unfolded_databases_agree_in_both_engines(script):
    logs = [
        _apply(_build(no_fold, no_compile), script)
        for no_fold in (False, True)
        for no_compile in (False, True)
    ]
    assert logs[0] == logs[1] == logs[2] == logs[3]
