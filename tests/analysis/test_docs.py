"""docs/DIAGNOSTICS.md must document exactly the registered codes."""

from __future__ import annotations

import pathlib
import re

from repro.analysis.diagnostics import CODES

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "DIAGNOSTICS.md"
HEADING = re.compile(r"^### (CA\d+) `(\w+)`", re.MULTILINE)


def test_every_registered_code_is_documented_and_vice_versa():
    documented = {code: sev for code, sev in HEADING.findall(DOC.read_text())}
    assert set(documented) == set(CODES), (
        "docs/DIAGNOSTICS.md and repro.analysis.diagnostics.CODES disagree"
    )


def test_documented_severities_match_the_registry():
    for code, severity in HEADING.findall(DOC.read_text()):
        assert severity == CODES[code][0].value, code


def test_codes_are_documented_in_ascending_order():
    order = [code for code, _ in HEADING.findall(DOC.read_text())]
    assert order == sorted(order)
