"""docs/DIAGNOSTICS.md must document exactly the registered codes."""

from __future__ import annotations

import pathlib
import re

from repro.analysis.diagnostics import CODES

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "DIAGNOSTICS.md"
HEADING = re.compile(r"^### (CA\d+) `(\w+)`", re.MULTILINE)


def test_every_registered_code_is_documented_and_vice_versa():
    documented = {code: sev for code, sev in HEADING.findall(DOC.read_text())}
    assert set(documented) == set(CODES), (
        "docs/DIAGNOSTICS.md and repro.analysis.diagnostics.CODES disagree"
    )


def test_documented_severities_match_the_registry():
    for code, severity in HEADING.findall(DOC.read_text()):
        assert severity == CODES[code][0].value, code


def test_codes_are_documented_in_ascending_order():
    order = [code for code, _ in HEADING.findall(DOC.read_text())]
    assert order == sorted(order)


def test_facts_dump_doc_matches_the_real_json_shape():
    """The `--facts` section's example must name exactly the keys
    AnalysisFacts.to_json emits (and the cost sub-keys), so the doc can
    never drift from the dump consumers parse."""
    from repro.analysis.facts import AnalysisFacts

    text = DOC.read_text()
    assert "## The `--facts` JSON dump" in text
    payload = AnalysisFacts().to_json()
    for key in payload:
        assert f'"{key}"' in text, f"--facts doc is missing key {key!r}"
    for key in payload["cost"]:
        assert f'"{key}"' in text, f"--facts doc is missing cost key {key!r}"
