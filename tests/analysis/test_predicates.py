"""CA5xx: degenerate constraints and subtype predicates."""

from __future__ import annotations

from repro.analysis import analyze_source
from repro.analysis.diagnostics import Severity

from tests.analysis.conftest import by_code


def test_tautological_constraint_is_ca501(lint_fixture):
    diagnostics = lint_fixture("predicates.cactis")
    (diag,) = by_code(diagnostics, "CA501")
    assert "tautology" in diag.message
    assert (diag.line, diag.column) == (11, 5)


def test_contradictory_constraint_is_ca502_error(lint_fixture):
    diagnostics = lint_fixture("predicates.cactis")
    (diag,) = by_code(diagnostics, "CA502")
    assert diag.severity is Severity.ERROR
    assert "contradiction" in diag.message
    assert (diag.line, diag.column) == (12, 5)


def test_honest_constraint_is_not_flagged(lint_fixture):
    diagnostics = lint_fixture("predicates.cactis")
    assert not any("honest" in d.message for d in diagnostics)


def test_unsatisfiable_predicate_is_ca503_error(lint_fixture):
    diagnostics = lint_fixture("predicates.cactis")
    (diag,) = by_code(diagnostics, "CA503")
    assert diag.severity is Severity.ERROR
    assert "impossible_task" in diag.message
    assert (diag.line, diag.column) == (20, 1)


def test_always_true_predicate_is_ca504(lint_fixture):
    diagnostics = lint_fixture("predicates.cactis")
    (diag,) = by_code(diagnostics, "CA504")
    assert "any_task" in diag.message
    assert (diag.line, diag.column) == (24, 1)


def test_equivalent_sibling_predicates_are_ca505(lint_fixture):
    diagnostics = lint_fixture("predicates.cactis")
    (diag,) = by_code(diagnostics, "CA505")
    assert "done_task" in diag.message
    assert "finished_task" in diag.message
    assert (diag.line, diag.column) == (28, 1)


def test_satisfiable_distinct_predicate_stays_quiet():
    source = """
    object class job is
      attributes
        urgent : boolean;
        done   : boolean;
    end object;

    object class urgent_job subtype of job where urgent is
    end object;

    object class done_job subtype of job where done is
    end object;
    """
    diagnostics = analyze_source(source)
    assert not [d for d in diagnostics if d.code.startswith("CA5")]


def test_non_boolean_atoms_abstract_to_opaque_variables():
    """`cost > 10 or cost <= 10` mixes comparisons the propositional
    abstraction must treat as independent: no CA501 false positive."""
    source = """
    object class c is
      attributes
        cost : integer;
      constraints
        bound : cost > 10 or cost < 20;
    end object;
    """
    diagnostics = analyze_source(source)
    assert not [d for d in diagnostics if d.code.startswith("CA5")]


def test_identical_comparison_text_is_recognised():
    """The same comparison spelled identically *is* one variable, so
    `p or not p` over comparisons still folds to a tautology."""
    source = """
    object class c is
      attributes
        cost : integer;
      constraints
        always : cost > 10 or not (cost > 10);
    end object;
    """
    diagnostics = analyze_source(source)
    assert by_code(diagnostics, "CA501")
