"""AnalysisFacts: the freeze-time hand-off from analyzer to runtime."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.analysis.facts import (
    ANALYSIS_DISABLED_ENV,
    FANOUT_BOUND,
    NATIVE_OPS,
    compute_facts,
    facts_from_model,
)
from repro.analysis.model import model_from_decl
from repro.dsl import compile_schema
from repro.dsl.parser import parse

SOURCE = """
relationship staffing is
    effort : integer from plug;
    note   : integer from socket;
end relationship;

object class task is
  relationships
    staffed_by : staffing multi socket;
  attributes
    budget : integer;
    total  : integer;
    level  : integer;
  rules
    total = begin
        acc : integer;
        acc := 0;
        for each e related to staffed_by do
            acc := acc + e.effort;
        end for;
        return acc;
    end;
    level = begin
        if total > budget then
            return 2;
        end if;
        return 1;
    end;
  constraints
    level_ok : level >= 1 and level <= 2;
    cap      : total <= 1000;
end object;

object class engineer is
  relationships
    works_on : staffing plug;
  attributes
    effort : integer;
  rules
    works_on effort = effort;
end object;
"""


def _facts():
    return facts_from_model(model_from_decl(parse(SOURCE)))


def test_always_true_records_the_provable_constraint():
    facts = _facts()
    assert ("task", "__constraint__level_ok") in facts.always_true
    assert not any("cap" in slot for __, slot in facts.always_true)
    assert not facts.always_false


def test_unproduced_records_the_value_nobody_transmits():
    facts = _facts()
    assert ("task", "staffed_by", "note") not in facts.unproduced  # unread
    # `effort` is produced; a read of `note` would be the unproduced case.
    produced = {(cls, port, value) for cls, port, value in facts.unproduced}
    assert ("task", "staffed_by", "effort") not in produced


def test_ranges_cover_the_branching_rule():
    facts = _facts()
    assert facts.ranges[("task", "level")] == (1.0, 2.0)


def test_cost_charges_for_each_bodies_by_fanout():
    facts = _facts()
    loop_ops = facts.cost.rule_ops[("task", "total")]
    flat_ops = facts.cost.rule_ops[("task", "level")]
    # The loop body is multiplied by the fan-out bound, so the For-Each
    # rule must dominate the flat branch despite similar AST sizes.
    assert loop_ops > flat_ops
    assert facts.cost.fanout[("task", "total")] == 1
    assert facts.cost.ops_of("task", "total") == loop_ops
    # Unknown slots fall back to the conservative native estimate.
    assert facts.cost.ops_of("elsewhere", "unknown") == NATIVE_OPS
    assert FANOUT_BOUND > 1


def test_port_weight_charges_readers_and_transmitters():
    facts = _facts()
    # task.total reads staffed_by.effort; engineer transmits on works_on.
    assert facts.cost.port_weight[("task", "staffed_by")] > 0
    assert facts.cost.port_weight[("engineer", "works_on")] > 0


def test_to_json_is_serializable_and_stringly_keyed():
    payload = _facts().to_json()
    text = json.dumps(payload)
    roundtrip = json.loads(text)
    assert "task.__constraint__level_ok" in roundtrip["always_true"]
    assert roundtrip["ranges"]["task.level"] == [1.0, 2.0]
    assert roundtrip["cost"]["rule_ops"]["task.level"] > 0
    assert roundtrip["rounds"] >= 1


def test_freeze_attaches_facts_to_the_schema():
    schema = compile_schema(SOURCE)
    facts = schema.analysis_facts
    assert facts is not None
    assert ("task", "__constraint__level_ok") in facts.always_true
    assert facts.schema_version == schema.version


def test_analysis_env_hatch_disables_facts(monkeypatch):
    monkeypatch.setenv(ANALYSIS_DISABLED_ENV, "1")
    schema = compile_schema(SOURCE)
    assert schema.analysis_facts is None
    assert schema.compile_stats["constraints_folded"] == 0


def test_compute_facts_runs_against_a_compiled_schema():
    schema = compile_schema(SOURCE)
    facts = compute_facts(schema)
    assert ("task", "__constraint__level_ok") in facts.always_true


def test_cli_facts_dump(tmp_path):
    out = tmp_path / "facts.json"
    src = tmp_path / "schema.cactis"
    src.write_text(SOURCE)
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "--quiet",
            "--facts",
            str(out),
            str(src),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(out.read_text())
    (unit,) = payload.values()
    assert "task.__constraint__level_ok" in unit["always_true"]
    assert unit["cost"]["port_weight"]["task.staffed_by"] > 0
