"""Every shipped example and paper-figure schema must be analyzer-clean.

This is the same gate `make lint-schema` applies in CI, expressed as unit
tests so a broken example fails close to the change that broke it.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_schema, analyze_source, has_errors
from repro.env.make import figure4_schema_source, make_schema
from repro.env.milestones import (
    MILESTONE_SCHEMA,
    VERY_LATE_EXTENSION,
    MilestoneManager,
)

from tests.analysis.conftest import FIXTURES

EXAMPLES = FIXTURES.parent.parent.parent / "examples" / "schemas"

UNITS = [
    pytest.param(["milestones.cactis"], (), id="milestones"),
    pytest.param(["milestones.cactis", "very_late.cactis"], (), id="very_late"),
    pytest.param(
        ["make.cactis"], ("file_mod_time", "system_command"), id="make"
    ),
    pytest.param(["project.cactis"], (), id="project"),
]


@pytest.mark.parametrize("names, functions", UNITS)
def test_example_schema_has_no_errors(names, functions):
    source = "\n".join((EXAMPLES / name).read_text() for name in names)
    diagnostics = analyze_source(source, functions=functions)
    assert not has_errors(diagnostics), [
        d.render() for d in diagnostics if d.is_error
    ]


def test_paper_figure_sources_have_no_errors():
    assert not has_errors(analyze_source(MILESTONE_SCHEMA))
    assert not has_errors(
        analyze_source(
            MILESTONE_SCHEMA + "\n" + VERY_LATE_EXTENSION.format(limit=10)
        )
    )
    assert not has_errors(
        analyze_source(
            figure4_schema_source(),
            functions=("file_mod_time", "system_command"),
        )
    )


def test_compiled_make_schema_validates():
    diagnostics = analyze_schema(make_schema())
    assert not has_errors(diagnostics), [
        d.render() for d in diagnostics if d.is_error
    ]


def test_database_validate_schema_strict_accepts_milestones():
    manager = MilestoneManager()
    diagnostics = manager.db.validate_schema(strict=True)
    assert not has_errors(diagnostics)
