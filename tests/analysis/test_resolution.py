"""CA1xx: name resolution and declaration structure, with source spans."""

from __future__ import annotations

from repro.analysis import analyze_source

from tests.analysis.conftest import by_code, codes


def test_bad_names_fixture_flags_every_resolution_code(lint_fixture):
    diagnostics = lint_fixture("bad_names.cactis")
    assert codes(diagnostics) >= {
        "CA101",  # unknown name
        "CA102",  # unknown function
        "CA103",  # unknown port
        "CA106",  # multi port used singly
        "CA107",  # unknown relationship type
        "CA109",  # duplicate attribute
        "CA110",  # derived attribute without a rule
        "CA111",  # rule targets unknown slot
        "CA112",  # transmit against the flow direction
        "CA113",  # unknown atom type
        "CA114",  # unknown recovery function
    }


def test_every_dsl_diagnostic_carries_a_position(lint_fixture):
    for diag in lint_fixture("bad_names.cactis"):
        assert diag.line > 0, diag.render()
        assert diag.column > 0, diag.render()
        assert diag.file == "bad_names.cactis"


def test_unknown_name_span_points_at_the_identifier(lint_fixture):
    diagnostics = lint_fixture("bad_names.cactis")
    unknown = by_code(diagnostics, "CA101")
    spelling = next(d for d in unknown if "speling" in d.message)
    # `total = speling + 1;` -- the identifier starts at column 13.
    assert (spelling.line, spelling.column) == (18, 13)


def test_multi_port_misuse_span(lint_fixture):
    diagnostics = lint_fixture("bad_names.cactis")
    (misuse,) = by_code(diagnostics, "CA106")
    assert (misuse.line, misuse.column) == (21, 21)


def test_for_each_over_single_port_is_ca105():
    source = """
    relationship r is
        v : integer from plug;
    end relationship;
    object class c is
      relationships
        one : r socket;
      attributes
        total : integer;
      rules
        total = begin
            acc : integer;
            acc := 0;
            for each x related to one do
                acc := acc + x.v;
            end for;
            return acc;
        end;
    end object;
    """
    diagnostics = analyze_source(source)
    assert "CA105" in codes(diagnostics)


def test_received_value_unknown_is_ca104():
    source = """
    relationship r is
        v : integer from plug;
    end relationship;
    object class c is
      relationships
        inp : r socket;
      attributes
        total : integer;
      rules
        total = inp.w;
    end object;
    """
    diagnostics = analyze_source(source)
    (diag,) = by_code(diagnostics, "CA104")
    assert "does not receive" in diag.message


def test_unknown_supertype_is_ca108_and_analysis_continues():
    source = """
    object class sub subtype of missing is
      attributes
        x : integer;
      rules
        x = x + 1;
    end object;
    """
    diagnostics = analyze_source(source)
    assert "CA108" in codes(diagnostics)
    # The class is still analysed as a root: the self-cycle is found.
    assert "CA201" in codes(diagnostics)


def test_duplicate_rule_for_one_slot_is_ca116_warning():
    source = """
    object class c is
      attributes
        x : integer;
        y : integer;
      rules
        x = y;
        x = y + 1;
    end object;
    """
    (diag,) = by_code(analyze_source(source), "CA116")
    assert diag.severity.value == "warning"
    assert "silently wins" in diag.message


def test_clean_schema_has_no_resolution_findings():
    source = """
    object class c is
      attributes
        x : integer;
        y : integer;
      rules
        y = x + 1;
    end object;
    """
    diagnostics = analyze_source(source)
    assert not [d for d in diagnostics if d.code.startswith("CA1")]
