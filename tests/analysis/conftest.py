"""Shared helpers for the static-analyzer tests."""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import analyze_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.fixture
def lint_fixture():
    def run(name: str, **kwargs):
        source = (FIXTURES / name).read_text()
        return analyze_source(source, filename=name, **kwargs)

    return run


def codes(diagnostics) -> set[str]:
    return {d.code for d in diagnostics}


def by_code(diagnostics, code: str):
    return [d for d in diagnostics if d.code == code]
