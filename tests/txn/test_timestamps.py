"""Basic timestamp-ordering protocol unit tests."""

import pytest

from repro.errors import ConcurrencyAbort
from repro.txn.timestamps import TimestampManager


class TestProtocol:
    def test_timestamps_monotonic(self):
        tsm = TimestampManager()
        assert tsm.new_timestamp() < tsm.new_timestamp()

    def test_read_after_older_write_ok(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t1, 7)
        tsm.check_read(t2, 7)  # younger reads older write: fine

    def test_read_of_younger_write_aborts(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_read(t1, 7)

    def test_write_after_younger_read_aborts(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_read(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t1, 7)

    def test_write_after_younger_write_aborts(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t1, 7)

    def test_serial_transaction_passes_all_checks(self):
        tsm = TimestampManager()
        t1 = tsm.new_timestamp()
        tsm.check_read(t1, 1)
        tsm.check_write(t1, 1)
        tsm.check_read(t1, 1)
        t2 = tsm.new_timestamp()
        tsm.check_read(t2, 1)
        tsm.check_write(t2, 1)

    def test_independent_instances_never_conflict(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 1)
        tsm.check_write(t1, 2)  # different instance: fine

    def test_read_marks_advance_monotonically(self):
        tsm = TimestampManager()
        t1, t2, t3 = (tsm.new_timestamp() for __ in range(3))
        tsm.check_read(t3, 7)
        tsm.check_read(t1, 7)  # reading older is fine
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t2, 7)  # t3 already read


class TestStats:
    def test_rejections_counted(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_read(t1, 7)
        assert tsm.stats.read_rejections == 1
        assert tsm.stats.abort_rate > 0

    def test_forget_instance_clears_marks(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        tsm.forget_instance(7)
        tsm.check_read(t1, 7)  # marks gone: no conflict
