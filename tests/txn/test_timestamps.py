"""Basic timestamp-ordering protocol unit tests."""

import pytest

from repro.errors import ConcurrencyAbort
from repro.txn.manager import Session
from repro.txn.timestamps import TimestampManager


class TestProtocol:
    def test_timestamps_monotonic(self):
        tsm = TimestampManager()
        assert tsm.new_timestamp() < tsm.new_timestamp()

    def test_read_after_older_write_ok(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t1, 7)
        tsm.check_read(t2, 7)  # younger reads older write: fine

    def test_read_of_younger_write_aborts(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_read(t1, 7)

    def test_write_after_younger_read_aborts(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_read(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t1, 7)

    def test_write_after_younger_write_aborts(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t1, 7)

    def test_serial_transaction_passes_all_checks(self):
        tsm = TimestampManager()
        t1 = tsm.new_timestamp()
        tsm.check_read(t1, 1)
        tsm.check_write(t1, 1)
        tsm.check_read(t1, 1)
        t2 = tsm.new_timestamp()
        tsm.check_read(t2, 1)
        tsm.check_write(t2, 1)

    def test_independent_instances_never_conflict(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 1)
        tsm.check_write(t1, 2)  # different instance: fine

    def test_read_marks_advance_monotonically(self):
        tsm = TimestampManager()
        t1, t2, t3 = (tsm.new_timestamp() for __ in range(3))
        tsm.check_read(t3, 7)
        tsm.check_read(t1, 7)  # reading older is fine
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t2, 7)  # t3 already read


class TestReadMarkRetraction:
    """Tracked read marks must retract *exactly*.  REVIEW regression: a
    max-only read mark made retraction lossy -- a young reader's teardown
    could erase all trace of an intermediate live reader, letting an older
    writer commit a non-serializable schedule."""

    def test_retraction_preserves_intermediate_reader(self):
        tsm = TimestampManager()
        t1, t2, t3, t4 = (tsm.new_timestamp() for __ in range(4))
        tsm.check_read(t1, 7, track=True)
        tsm.check_read(t4, 7, track=True)  # journalled previous mark: t1
        tsm.check_read(t3, 7, track=True)  # intermediate; max stays t4
        tsm.retract_read(t4, 7, t1)  # t4's transaction is torn down
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t2, 7)  # t3 is still a live reader

    def test_retracting_every_reader_frees_the_record(self):
        tsm = TimestampManager()
        t1, t2, t3 = (tsm.new_timestamp() for __ in range(3))
        tsm.check_read(t2, 7, track=True)
        tsm.check_read(t3, 7, track=True)
        tsm.retract_read(t3, 7, t2)
        tsm.retract_read(t2, 7, 0)
        tsm.check_write(t1, 7)  # no live reader left: the write is legal

    def test_confirmed_read_survives_later_retractions(self):
        tsm = TimestampManager()
        t1, t2, t3, t4 = (tsm.new_timestamp() for __ in range(4))
        tsm.check_read(t3, 7, track=True)
        tsm.confirm_read(t3, 7)  # t3 committed: its read stands forever
        tsm.check_read(t4, 7, track=True)
        tsm.retract_read(t4, 7, t3)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t2, 7)

    def test_untracked_reads_are_never_retracted(self):
        tsm = TimestampManager()
        t1, t2, t3 = (tsm.new_timestamp() for __ in range(3))
        tsm.check_read(t2, 7)  # a batch (untracked) reader
        tsm.check_read(t3, 7, track=True)
        tsm.retract_read(t3, 7, t2)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t1, 7)  # t2's mark still stands

    def test_repeated_reads_by_one_transaction_balance(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_read(t2, 7, track=True)
        tsm.check_read(t2, 7, track=True)
        tsm.retract_read(t2, 7, 0)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_write(t1, 7)  # one journalled read remains
        tsm.retract_read(t2, 7, 0)
        tsm.check_write(t1, 7)


class TestSessionMarkJournal:
    """The mark journal spans restart attempts.  REVIEW regression:
    ``start()`` used to clear it on every (re)begin, so a transaction that
    restarted and was then cancelled left its earlier attempts' marks
    behind as permanent ghosts."""

    def test_cancel_after_restart_retracts_all_attempts_marks(self):
        tsm = TimestampManager()
        session = Session(None, tsm, "s", track_marks=True)
        session.start()
        session._check_write(7)
        session._check_read(8)
        session.start()  # CC restart: fresh timestamp, journal retained
        session._check_write(7)
        session.release_marks()  # client disconnect teardown
        assert tsm._marks[7].write_ts == 0
        assert tsm._marks[8].read_ts == 0

    def test_confirm_seals_marks_against_later_release(self):
        tsm = TimestampManager()
        session = Session(None, tsm, "s", track_marks=True)
        session.start()
        session._check_read(8)
        session.confirm_marks()  # terminal outcome: the marks stand
        session.release_marks()  # a later teardown must not retract them
        assert tsm._marks[8].read_ts == session.ts


class TestStats:
    def test_rejections_counted(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        with pytest.raises(ConcurrencyAbort):
            tsm.check_read(t1, 7)
        assert tsm.stats.read_rejections == 1
        assert tsm.stats.abort_rate > 0

    def test_forget_instance_clears_marks(self):
        tsm = TimestampManager()
        t1, t2 = tsm.new_timestamp(), tsm.new_timestamp()
        tsm.check_write(t2, 7)
        tsm.forget_instance(7)
        tsm.check_read(t1, 7)  # marks gone: no conflict
