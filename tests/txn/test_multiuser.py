"""Multi-user scheduling under timestamp CC (experiment E7)."""

import pytest

from repro.core.database import Database
from repro.errors import TransactionAborted
from repro.txn.manager import MultiUserScheduler
from repro.workloads import sum_node_schema


def fresh_db() -> Database:
    return Database(sum_node_schema(), pool_capacity=64)


class TestNonConflicting:
    def test_disjoint_scripts_commit_without_restarts(self):
        db = fresh_db()
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)

        def script_a(s):
            s.set_attr(a, "weight", 10)
            yield
            assert s.get_attr(a, "weight") == 10

        def script_b(s):
            s.set_attr(b, "weight", 20)
            yield
            assert s.get_attr(b, "weight") == 20

        result = MultiUserScheduler(db).run([("A", script_a), ("B", script_b)])
        assert sorted(result.committed) == ["A", "B"]
        assert result.restarts == 0
        assert db.get_attr(a, "weight") == 10
        assert db.get_attr(b, "weight") == 20

    def test_single_script_behaves_like_transaction(self):
        db = fresh_db()
        made = []

        def script(s):
            made.append(s.create("node", weight=5))
            yield
            s.set_attr(made[0], "weight", 6)

        result = MultiUserScheduler(db).run([("only", script)])
        assert result.committed == ["only"]
        assert db.get_attr(made[0], "weight") == 6


class TestConflicting:
    def test_write_write_conflict_restarts_older(self):
        db = fresh_db()
        x = db.create("node", weight=0)

        def writer(value):
            def script(s):
                yield  # let the other writer go first sometimes
                s.set_attr(x, "weight", value)
                yield

            return script

        scheduler = MultiUserScheduler(db)
        result = scheduler.run([("W1", writer(1)), ("W2", writer(2))])
        assert sorted(result.committed) == ["W1", "W2"]
        # Both committed; final value is one of the two writes.
        assert db.get_attr(x, "weight") in (1, 2)

    def test_conflicting_read_write_forces_restart(self):
        db = fresh_db()
        x = db.create("node", weight=0)

        def reader(s):
            # Read after yielding, so the writer's younger write lands first.
            yield
            yield
            s.get_attr(x, "weight")

        def writer(s):
            s.set_attr(x, "weight", 5)
            yield

        scheduler = MultiUserScheduler(db)
        result = scheduler.run([("R", reader), ("W", writer)])
        assert sorted(result.committed) == ["R", "W"]
        assert result.restarts >= 1

    def test_restart_reexecutes_whole_script(self):
        db = fresh_db()
        x = db.create("node", weight=0)
        attempts = []

        def victim(s):
            attempts.append(s.ts)
            yield
            yield
            s.get_attr(x, "weight")
            yield

        def aggressor(s):
            yield
            s.set_attr(x, "weight", 9)

        MultiUserScheduler(db).run([("victim", victim), ("aggressor", aggressor)])
        # Restarted scripts run again with a fresh, larger timestamp.
        assert len(attempts) >= 2
        assert attempts[-1] > attempts[0]

    def test_rolled_back_writes_invisible(self):
        db = fresh_db()
        x = db.create("node", weight=0)
        y = db.create("node", weight=0)

        def doomed(s):
            s.set_attr(y, "weight", 99)  # will be rolled back on restart
            yield
            yield
            yield
            s.get_attr(x, "weight")  # conflicts with aggressor's write
            yield

        def aggressor(s):
            yield
            s.set_attr(x, "weight", 1)

        result = MultiUserScheduler(db).run(
            [("doomed", doomed), ("aggressor", aggressor)]
        )
        assert sorted(result.committed) == ["aggressor", "doomed"]
        # The final committed run of `doomed` re-applied its write.
        assert db.get_attr(y, "weight") == 99

    def test_max_restarts_enforced(self):
        db = fresh_db()
        x = db.create("node", weight=0)

        def always_conflicts(s):
            yield
            s.get_attr(x, "weight")

        def hammer(s):
            for __ in range(50):
                s.set_attr(x, "weight", s.ts)
                yield

        # A blown restart budget retires the script into ``failed`` --
        # it must not abort the rest of the schedule.
        result = MultiUserScheduler(db).run(
            [("victim", always_conflicts), ("hammer", hammer)],
            max_restarts=0,
        )
        assert result.committed == ["hammer"]
        assert set(result.failed) == {"victim"}
        assert "restarts" in result.failed["victim"]


class TestSeededInterleaving:
    def test_seeded_runs_are_reproducible(self):
        outcomes = []
        for __ in range(2):
            db = fresh_db()
            x = db.create("node", weight=0)

            def w1(s):
                yield
                s.set_attr(x, "weight", 1)
                yield

            def w2(s):
                yield
                s.set_attr(x, "weight", 2)
                yield

            result = MultiUserScheduler(db, seed=1234).run(
                [("W1", w1), ("W2", w2)]
            )
            outcomes.append((tuple(result.committed), result.restarts,
                             db.get_attr(x, "weight")))
        assert outcomes[0] == outcomes[1]
