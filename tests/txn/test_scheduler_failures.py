"""Scheduler crash paths and fairness.

Two regressions pinned here:

* an unhandled non-CC abort (constraint violation, commit audit failure)
  escaping one script used to propagate out of
  :meth:`MultiUserScheduler.run`, abandoning every other session mid-step
  with its delta still adopted.  The scheduler now retires the offending
  script, records it in :attr:`ScheduleResult.failed`, and runs everyone
  else to completion.
* the round-robin cursor used to index into the *shrinking* list of
  runnable scripts, so the first completion skewed the rotation and let
  one script step twice while its neighbour starved.
"""

import pytest

from repro.core.database import Database
from repro.core.rules import Constraint, Local
from repro.errors import TransactionAborted
from repro.txn.manager import MultiUserScheduler
from repro.workloads import build_chain, link, sum_node_schema


def constrained_db():
    from repro.workloads.topologies import sum_node_schema as base

    schema = base()
    schema.unfreeze()
    schema.extend_class("node").add_constraint(
        Constraint("cap", {"t": Local("total")}, lambda t: t <= 100)
    )
    schema.freeze()
    return Database(schema, pool_capacity=64)


class TestNonCCFailures:
    def test_unhandled_violation_fails_one_script_not_the_run(self):
        db = constrained_db()
        a = db.create("node", weight=10)
        b = db.create("node", weight=10)
        link(db, a, b)

        def violator(session):
            yield
            session.set_attr(a, "weight", 500)  # trips cap; NOT caught
            yield

        def bystander(session):
            session.set_attr(b, "weight", 20)
            yield
            session.get_attr(b, "total")

        result = MultiUserScheduler(db).run(
            [("violator", violator), ("bystander", bystander)]
        )
        assert result.committed == ["bystander"]
        assert set(result.failed) == {"violator"}
        assert result.failed["violator"]  # reason captured
        # The violator's work is rolled back; the bystander's is not.
        assert db.get_attr(a, "weight") == 10
        assert db.get_attr(b, "weight") == 20
        assert db.get_attr(b, "total") == 30

    def test_failed_script_leaves_no_adopted_delta_behind(self):
        db = constrained_db()
        a = db.create("node", weight=10)

        def violator(session):
            session.set_attr(a, "weight", 999)
            yield

        result = MultiUserScheduler(db).run([("violator", violator)])
        assert result.committed == []
        assert set(result.failed) == {"violator"}
        # The database is back to single-stream health: a plain
        # transaction can run after the schedule.
        with db.transaction("after"):
            db.set_attr(a, "weight", 11)
        assert db.get_attr(a, "weight") == 11

    def test_exceeding_max_restarts_still_raises(self):
        db = Database(sum_node_schema())
        nodes = build_chain(db, 2)

        def old_reader(session):
            yield  # let the younger writer get its mark in first
            session.get_attr(nodes[0], "weight")

        def young_writer(session):
            session.set_attr(nodes[0], "weight", 7)
            yield
            yield

        # A pathological cap turns the first genuine CC restart into the
        # terminal error -- that contract is unchanged.
        with pytest.raises(TransactionAborted, match="restarts"):
            MultiUserScheduler(db).run(
                [("old", old_reader), ("young", young_writer)], max_restarts=0
            )


class TestRoundRobinFairness:
    def test_rotation_stays_fair_after_a_script_finishes(self):
        db = Database(sum_node_schema())
        order = []

        def script(tag, yields):
            def body(session):
                for __ in range(yields):
                    order.append(tag)
                    yield

            return body

        result = MultiUserScheduler(db).run(
            [
                ("s", script("s", 1)),
                ("b", script("b", 3)),
                ("c", script("c", 3)),
                ("d", script("d", 3)),
            ]
        )
        # After "s" commits, the rotation resumes with the script that was
        # due next ("b") -- not with whichever index the shrunken runnable
        # list happened to put under the cursor.
        assert order == ["s", "b", "c", "d", "b", "c", "d", "b", "c", "d"]
        assert sorted(result.committed) == ["b", "c", "d", "s"]
        assert result.failed == {}
