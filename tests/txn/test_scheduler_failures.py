"""Scheduler crash paths and fairness.

Regressions pinned here:

* an unhandled non-CC abort (constraint violation, commit audit failure)
  escaping one script used to propagate out of
  :meth:`MultiUserScheduler.run`, abandoning every other session mid-step
  with its delta still adopted.  The scheduler now retires the offending
  script, records it in :attr:`ScheduleResult.failed`, and runs everyone
  else to completion.
* the same failure class on the *restart* path: a script exceeding
  ``max_restarts`` used to raise :class:`TransactionAborted` out of
  ``_restart``, escaping ``run()`` mid-schedule.  It now retires into
  ``failed`` like any other final abort.
* a :class:`ConcurrencyAbort` raised at *commit* time (out of the commit
  machinery rather than a script step) used to leave the session's delta
  stranded inside the transaction manager -- ``Session.commit`` had
  already detached it -- so the restart's rollback was a no-op and the
  next adopted step blew up with ``TransactionError: cannot adopt``.
* the round-robin cursor used to index into the *shrinking* list of
  runnable scripts, so the first completion skewed the rotation and let
  one script step twice while its neighbour starved.
"""

import pytest

from repro.core.database import Database
from repro.core.rules import Constraint, Local
from repro.errors import ConcurrencyAbort, TransactionAborted
from repro.txn.manager import MultiUserScheduler
from repro.workloads import build_chain, link, sum_node_schema


def constrained_db():
    from repro.workloads.topologies import sum_node_schema as base

    schema = base()
    schema.unfreeze()
    schema.extend_class("node").add_constraint(
        Constraint("cap", {"t": Local("total")}, lambda t: t <= 100)
    )
    schema.freeze()
    return Database(schema, pool_capacity=64)


class TestNonCCFailures:
    def test_unhandled_violation_fails_one_script_not_the_run(self):
        db = constrained_db()
        a = db.create("node", weight=10)
        b = db.create("node", weight=10)
        link(db, a, b)

        def violator(session):
            yield
            session.set_attr(a, "weight", 500)  # trips cap; NOT caught
            yield

        def bystander(session):
            session.set_attr(b, "weight", 20)
            yield
            session.get_attr(b, "total")

        result = MultiUserScheduler(db).run(
            [("violator", violator), ("bystander", bystander)]
        )
        assert result.committed == ["bystander"]
        assert set(result.failed) == {"violator"}
        assert result.failed["violator"]  # reason captured
        # The violator's work is rolled back; the bystander's is not.
        assert db.get_attr(a, "weight") == 10
        assert db.get_attr(b, "weight") == 20
        assert db.get_attr(b, "total") == 30

    def test_failed_script_leaves_no_adopted_delta_behind(self):
        db = constrained_db()
        a = db.create("node", weight=10)

        def violator(session):
            session.set_attr(a, "weight", 999)
            yield

        result = MultiUserScheduler(db).run([("violator", violator)])
        assert result.committed == []
        assert set(result.failed) == {"violator"}
        # The database is back to single-stream health: a plain
        # transaction can run after the schedule.
        with db.transaction("after"):
            db.set_attr(a, "weight", 11)
        assert db.get_attr(a, "weight") == 11

    def test_exceeding_max_restarts_fails_one_script_not_the_run(self):
        """Regression: the blown restart budget used to raise out of run().

        Before the fix, ``_restart`` raised :class:`TransactionAborted`
        straight through ``run()``, abandoning every other live session
        mid-script -- the same failure class the constraint-violation path
        already handles.  Now the script retires into ``failed`` and the
        bystanders run to completion.
        """
        db = Database(sum_node_schema())
        nodes = build_chain(db, 2)

        def old_reader(session):
            yield  # let the younger writer get its mark in first
            session.get_attr(nodes[0], "weight")

        def young_writer(session):
            session.set_attr(nodes[0], "weight", 7)
            yield
            yield

        def bystander(session):
            session.set_attr(nodes[1], "weight", 3)
            yield
            session.get_attr(nodes[1], "weight")

        # A pathological cap turns the first genuine CC restart terminal.
        result = MultiUserScheduler(db).run(
            [
                ("old", old_reader),
                ("young", young_writer),
                ("bystander", bystander),
            ],
            max_restarts=0,
        )
        assert sorted(result.committed) == ["bystander", "young"]
        assert set(result.failed) == {"old"}
        assert "restarts" in result.failed["old"]
        # The doomed script's work is gone; everyone else's committed.
        assert db.get_attr(nodes[0], "weight") == 7
        assert db.get_attr(nodes[1], "weight") == 3
        # The database is back to single-stream health.
        with db.transaction("after"):
            db.set_attr(nodes[0], "weight", 8)
        assert db.get_attr(nodes[0], "weight") == 8


class TestCommitTimeConcurrencyAbort:
    """A ConcurrencyAbort out of the commit machinery must restart cleanly.

    ``Session.commit`` detaches the delta before handing it to the
    transaction manager.  Before the fix, a ConcurrencyAbort escaping
    ``TransactionManager.commit`` (a commit-time check) left that delta
    adopted-but-uncommitted inside the manager: the scheduler's restart
    rollback was a no-op (the session had no delta), and the next adopted
    step raised ``TransactionError: cannot adopt``.  The session now
    reclaims the stranded delta on the way out, so the restart rolls the
    work back and the script re-runs to a real commit.
    """

    def _run_with_flaky_commit(self, seed=None):
        db = Database(sum_node_schema())
        x = db.create("node", weight=0)
        y = db.create("node", weight=0)
        rejections = {"left": 1}
        real_audit = db.audit_constraints

        def flaky_audit():
            # Simulate a commit-time TO rejection against the victim's
            # first commit attempt (the adopted delta carries the session
            # name as its label, so the rejection targets the right script
            # under any interleaving order).
            active = db.txn._active
            if rejections["left"] and active is not None and active.label == "victim":
                rejections["left"] -= 1
                raise ConcurrencyAbort("commit-time validation rejected")
            real_audit()

        db.audit_constraints = flaky_audit

        body_runs = []

        def victim(session):
            body_runs.append(session.ts)
            session.set_attr(x, "weight", 5)
            yield

        def bystander(session):
            session.set_attr(y, "weight", 9)
            yield

        scheduler = MultiUserScheduler(db, seed=seed)
        result = scheduler.run([("victim", victim), ("bystander", bystander)])
        return db, x, y, result, body_runs

    @pytest.mark.parametrize("seed", [None, 7], ids=["round-robin", "seeded"])
    def test_commit_abort_restarts_and_recommits(self, seed):
        db, x, y, result, body_runs = self._run_with_flaky_commit(seed)
        assert sorted(result.committed) == ["bystander", "victim"]
        assert result.failed == {}
        # Exactly one restart was charged, and the script's body really
        # re-ran (fresh timestamp) rather than being double-committed.
        assert result.restarts == 1
        assert len(body_runs) == 2
        assert body_runs[0] != body_runs[1]
        assert db.get_attr(x, "weight") == 5
        assert db.get_attr(y, "weight") == 9
        # Each committed script appears exactly once (no double count).
        assert len(result.committed) == len(set(result.committed))
        # The manager is clean: a plain transaction runs afterwards.
        with db.transaction("after"):
            db.set_attr(x, "weight", 6)
        assert db.get_attr(x, "weight") == 6


class TestRoundRobinFairness:
    def test_rotation_stays_fair_after_a_script_finishes(self):
        db = Database(sum_node_schema())
        order = []

        def script(tag, yields):
            def body(session):
                for __ in range(yields):
                    order.append(tag)
                    yield

            return body

        result = MultiUserScheduler(db).run(
            [
                ("s", script("s", 1)),
                ("b", script("b", 3)),
                ("c", script("c", 3)),
                ("d", script("d", 3)),
            ]
        )
        # After "s" commits, the rotation resumes with the script that was
        # due next ("b") -- not with whichever index the shrunken runnable
        # list happened to put under the cursor.
        assert order == ["s", "b", "c", "d", "b", "c", "d", "b", "c", "d"]
        assert sorted(result.committed) == ["b", "c", "d", "s"]
        assert result.failed == {}
