"""Transaction lifecycle, autocommit, and the Undo meta-action."""

import pytest

from repro.errors import TransactionError
from repro.workloads import build_chain, link


class TestExplicitTransactions:
    def test_commit_keeps_changes(self, db):
        db.begin()
        iid = db.create("node", weight=3)
        db.commit()
        assert db.get_attr(iid, "weight") == 3

    def test_abort_discards_changes(self, db):
        base = db.create("node", weight=1)
        db.begin()
        other = db.create("node", weight=9)
        db.set_attr(base, "weight", 100)
        db.abort()
        assert db.get_attr(base, "weight") == 1
        assert not db.exists(other)

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.abort()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_abort_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.abort()

    def test_context_manager_commits(self, db):
        with db.transaction():
            iid = db.create("node", weight=5)
        assert db.get_attr(iid, "weight") == 5

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.create("node", weight=5)
                raise RuntimeError("boom")
        assert len(db) == 0

    def test_labels_recorded(self, db):
        db.begin("alpha")
        db.create("node")
        delta = db.commit()
        assert delta.label == "alpha"


class TestAutocommit:
    def test_each_primitive_is_a_transaction(self, db):
        db.create("node")
        db.create("node")
        assert len(db.txn.history) == 2

    def test_composite_primitive_is_one_transaction(self, db):
        a, b = db.create("node"), db.create("node")
        link(db, a, b)
        history_before = len(db.txn.history)
        db.delete(a)  # disconnect + delete: one autocommit transaction
        assert len(db.txn.history) == history_before + 1

    def test_undo_autocommitted_primitive(self, db):
        iid = db.create("node", weight=2)
        db.set_attr(iid, "weight", 9)
        db.undo()
        assert db.get_attr(iid, "weight") == 2


class TestUndo:
    def test_undo_without_history_rejected(self, db):
        with pytest.raises(TransactionError):
            db.undo()

    def test_undo_during_transaction_rejected(self, db):
        db.begin()
        db.create("node")
        with pytest.raises(TransactionError):
            db.undo()
        db.abort()

    def test_undo_walks_history_backwards(self, db):
        iid = db.create("node", weight=1)
        db.set_attr(iid, "weight", 2)
        db.set_attr(iid, "weight", 3)
        db.undo()
        assert db.get_attr(iid, "weight") == 2
        db.undo()
        assert db.get_attr(iid, "weight") == 1
        db.undo()  # undoes the create
        assert not db.exists(iid)

    def test_undo_structural_change(self, db):
        a, b = db.create("node", weight=1), db.create("node", weight=2)
        link(db, a, b)
        assert db.get_attr(b, "total") == 3
        db.undo()
        assert db.get_attr(b, "total") == 2
        assert db.view(b).connections("inputs") == []

    def test_undo_delete_restores_connections_and_values(self, db):
        nodes = build_chain(db, 3)
        assert db.get_attr(nodes[2], "total") == 3
        db.delete(nodes[1])
        assert db.get_attr(nodes[2], "total") == 1
        db.undo()
        assert db.exists(nodes[1])
        assert db.view(nodes[1]).connections("inputs") == [nodes[0]]
        assert db.get_attr(nodes[2], "total") == 3

    def test_undo_restores_connection_order(self, db):
        hub = db.create("node")
        ups = [db.create("node", weight=i) for i in range(3)]
        for u in ups:
            db.connect(hub, "inputs", u, "outputs")
        db.disconnect(hub, "inputs", ups[1], "outputs")
        db.undo()
        assert db.view(hub).connections("inputs") == ups

    def test_undo_of_multi_record_transaction(self, db):
        a = db.create("node", weight=1)
        db.begin()
        b = db.create("node", weight=2)
        link(db, a, b)
        db.set_attr(a, "weight", 50)
        db.commit()
        assert db.get_attr(b, "total") == 52
        db.undo()
        assert db.get_attr(a, "weight") == 1
        assert not db.exists(b)

    def test_undo_ripple_correctness(self, db):
        """Undo restores values whose ripple was far larger than the delta."""
        nodes = build_chain(db, 100)
        original = db.get_attr(nodes[-1], "total")
        db.set_attr(nodes[0], "weight", 1000)
        assert db.get_attr(nodes[-1], "total") == original + 999
        db.undo()
        assert db.get_attr(nodes[-1], "total") == original


class TestDeltaEconomy:
    """E6: delta size proportional to the *initial* changes, not the ripple."""

    def test_delta_one_record_regardless_of_ripple(self, db):
        nodes = build_chain(db, 500)
        db.get_attr(nodes[-1], "total")
        db.begin()
        db.set_attr(nodes[0], "weight", 77)  # ripples through 500 nodes
        delta = db.commit()
        assert len(delta) == 1
        assert delta.touched_instances() == {nodes[0]}

    def test_delta_size_scales_with_primitive_count_only(self, db):
        sizes = {}
        for chain_len in (10, 300):
            nodes = build_chain(db, chain_len)
            db.get_attr(nodes[-1], "total")
            db.begin()
            db.set_attr(nodes[0], "weight", 42)
            sizes[chain_len] = db.commit().size_estimate()
        assert sizes[10] == sizes[300]
