"""Multi-user sessions interacting with derived data and constraints."""

import pytest

from repro.core.database import Database
from repro.core.rules import Constraint, Local
from repro.errors import TransactionAborted
from repro.txn.manager import MultiUserScheduler
from repro.workloads import build_chain, link, sum_node_schema


class TestDerivedReadsUnderCC:
    def test_session_reads_see_fresh_derived_values(self):
        db = Database(sum_node_schema(), pool_capacity=64)
        nodes = build_chain(db, 4)
        observed = []

        def writer(session):
            session.set_attr(nodes[0], "weight", 10)
            yield

        def reader(session):
            yield
            yield  # let the writer commit first under round-robin
            observed.append(session.get_attr(nodes[-1], "total"))

        result = MultiUserScheduler(db).run(
            [("writer", writer), ("reader", reader)]
        )
        assert sorted(result.committed) == ["reader", "writer"]
        # The reader ran after the writer's update; the derived value it
        # saw reflects it (13 = 10 + 3 ones).
        assert observed[-1] == 13

    def test_aborted_writer_leaves_derived_consistent(self):
        db = Database(sum_node_schema(), pool_capacity=64)
        nodes = build_chain(db, 3)
        db.get_attr(nodes[-1], "total")

        def doomed(session):
            session.set_attr(nodes[0], "weight", 100)
            yield
            yield
            yield
            session.get_attr(nodes[1], "total")  # conflicts below
            yield

        def aggressor(session):
            yield
            session.set_attr(nodes[1], "weight", 7)

        MultiUserScheduler(db).run([("doomed", doomed), ("aggressor", aggressor)])
        # Whatever the interleaving, the final derived value equals the
        # recomputation from final intrinsics.
        expected = sum(db.get_attr(n, "weight") for n in nodes)
        assert db.get_attr(nodes[-1], "total") == expected


class TestConstraintsUnderCC:
    def constrained_db(self):
        from repro.workloads.topologies import sum_node_schema as base

        schema = base()
        schema.unfreeze()
        schema.extend_class("node").add_constraint(
            Constraint("cap", {"t": Local("total")}, lambda t: t <= 100)
        )
        schema.freeze()
        return Database(schema, pool_capacity=64)

    def test_violating_session_aborts_cleanly(self):
        db = self.constrained_db()
        a = db.create("node", weight=10)
        b = db.create("node", weight=10)
        link(db, a, b)

        def violator(session):
            yield
            with pytest.raises(TransactionAborted):
                session.set_attr(a, "weight", 500)

        def bystander(session):
            session.set_attr(b, "weight", 20)
            yield

        result = MultiUserScheduler(db).run(
            [("violator", violator), ("bystander", bystander)]
        )
        assert sorted(result.committed) == ["bystander", "violator"]
        assert db.get_attr(a, "weight") == 10
        assert db.get_attr(b, "total") == 30
