"""Regression: Session.create must check timestamps before acting.

The write primitives all follow check-then-act -- a timestamp-ordering
rejection aborts the operation before anything mutates.  ``create`` used to
be the one exception: it created the instance first and checked afterwards,
so a doomed create allocated an instance id, placed a record, and logged a
CreateRecord, all of which had to be unwound by the restart's rollback.
These tests pin the fixed ordering: a create that fails ``check_write``
leaves no trace at all.
"""

import pytest

from repro.core.database import Database
from repro.errors import ConcurrencyAbort
from repro.txn.manager import MultiUserScheduler, Session
from repro.txn.timestamps import TimestampManager
from repro.workloads import sum_node_schema


def doomed_session(db: Database) -> tuple[Session, TimestampManager]:
    """A session whose next create must be rejected by basic TO.

    A younger transaction (ts=50) has already read the state of the id the
    create would allocate, so an older writer (ts=1) violates ordering.
    """
    tsm = TimestampManager()
    tsm.check_read(50, db.next_instance_id)
    session = Session(db, tsm, "old")
    session.start()  # ts=1 < read_ts=50
    return session, tsm


def test_doomed_create_allocates_no_instance_id():
    db = Database(sum_node_schema())
    predicted = db.next_instance_id
    session, __ = doomed_session(db)
    with pytest.raises(ConcurrencyAbort):
        session.create("node", weight=3)
    assert db.next_instance_id == predicted
    assert len(db) == 0


def test_doomed_create_logs_nothing():
    db = Database(sum_node_schema())
    session, __ = doomed_session(db)
    with pytest.raises(ConcurrencyAbort):
        session.create("node")
    assert session._delta is not None and len(session._delta) == 0
    # Rollback of the (empty) delta is a no-op rather than a cleanup.
    session.rollback()
    assert len(db) == 0


def test_successful_create_still_records_write_mark():
    db = Database(sum_node_schema())
    tsm = TimestampManager()
    session = Session(db, tsm, "s")
    session.start()
    iid = session.create("node", weight=1)
    session.commit()
    # The write mark protects the created instance: an older reader must
    # now be rejected.
    with pytest.raises(ConcurrencyAbort):
        tsm.check_read(0, iid)


class TestFailedCreateRetractsItsMark:
    """Regression: a create that fails *validation* must unmark its target.

    ``Session.create`` records a provisional write mark on the id it is
    about to allocate.  When the create itself then fails (unknown class,
    bad atom type) the id was never consumed -- leaving the mark behind
    poisoned ``next_instance_id``, spuriously aborting whichever older
    transaction later allocated that id.
    """

    def test_failed_create_leaves_no_write_mark(self):
        db = Database(sum_node_schema())
        tsm = TimestampManager()
        older = Session(db, tsm, "older")
        older.start()  # ts=1
        younger = Session(db, tsm, "younger")
        younger.start()  # ts=2
        with pytest.raises(Exception) as excinfo:
            younger.create("no_such_class")
        assert not isinstance(excinfo.value, ConcurrencyAbort)
        # The older session now allocates the very id the failed create
        # targeted; a leftover ts=2 mark would abort it here.
        iid = older.create("node", weight=1)
        older.commit()
        assert db.get_attr(iid, "weight") == 1

    def test_retraction_restores_the_previous_mark(self):
        db = Database(sum_node_schema())
        tsm = TimestampManager()
        target = db.next_instance_id
        tsm.check_write(3, target)  # pre-existing younger mark
        session = Session(db, tsm, "s")
        session.start()  # ts=1 -- doomed against the ts=3 mark
        with pytest.raises(ConcurrencyAbort):
            session.create("node")
        # A CC rejection happens before anything is marked: ts=3 survives.
        with pytest.raises(ConcurrencyAbort):
            tsm.check_read(2, target)

    def test_cc_rejection_is_not_swallowed_by_the_retraction_path(self):
        db = Database(sum_node_schema())
        session, tsm = doomed_session(db)
        with pytest.raises(ConcurrencyAbort):
            session.create("node", weight=3)
        # The younger reader's mark is intact.
        assert tsm._marks[db.next_instance_id].read_ts == 50


def test_scheduler_restart_still_converges_with_creates():
    db = Database(sum_node_schema())

    def creator(session: Session):
        session.create("node", weight=2)
        yield
        session.create("node", weight=3)

    result = MultiUserScheduler(db).run(
        [("u1", creator), ("u2", creator)]
    )
    assert sorted(result.committed) == ["u1", "u2"]
    assert len(db) == 4
