"""Sessions performing structural primitives under timestamp CC."""

import pytest

from repro.core.database import Database
from repro.txn.manager import MultiUserScheduler
from repro.workloads import sum_node_schema


def fresh_db():
    return Database(sum_node_schema(), pool_capacity=64)


class TestStructuralOps:
    def test_session_create_and_connect(self):
        db = fresh_db()
        created = {}

        def builder(session):
            a = session.create("node", weight=1)
            yield
            b = session.create("node", weight=2)
            session.connect(b, "inputs", a, "outputs")
            created["pair"] = (a, b)
            yield

        result = MultiUserScheduler(db).run([("builder", builder)])
        assert result.committed == ["builder"]
        a, b = created["pair"]
        assert db.get_attr(b, "total") == 3

    def test_session_delete(self):
        db = fresh_db()
        victim = db.create("node", weight=5)

        def deleter(session):
            session.delete(victim)
            yield

        MultiUserScheduler(db).run([("deleter", deleter)])
        assert not db.exists(victim)

    def test_session_disconnect(self):
        db = fresh_db()
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)
        db.connect(b, "inputs", a, "outputs")

        def surgeon(session):
            session.disconnect(b, "inputs", a, "outputs")
            yield

        MultiUserScheduler(db).run([("surgeon", surgeon)])
        assert db.get_attr(b, "total") == 2

    def test_aborted_structural_work_rolls_back(self):
        db = fresh_db()
        hot = db.create("node", weight=0)
        population_before = len(db)

        def doomed(session):
            session.create("node", weight=9)  # will be rolled back once
            yield
            yield
            yield
            session.get_attr(hot, "total")  # conflicts with the writer
            yield

        def writer(session):
            yield
            session.set_attr(hot, "weight", 3)

        result = MultiUserScheduler(db).run(
            [("doomed", doomed), ("writer", writer)]
        )
        assert result.restarts >= 1
        # The doomed script eventually committed exactly one extra node;
        # intermediate rolled-back creations left no residue.
        assert len(db) == population_before + 1

    def test_connect_conflict_on_shared_endpoint(self):
        db = fresh_db()
        hub = db.create("node")
        spokes = [db.create("node", weight=i + 1) for i in range(2)]

        def connector(index):
            def script(session):
                yield
                session.connect(hub, "inputs", spokes[index], "outputs")
                yield

            return script

        result = MultiUserScheduler(db, seed=3).run(
            [("c0", connector(0)), ("c1", connector(1))]
        )
        assert sorted(result.committed) == ["c0", "c1"]
        assert db.get_attr(hub, "total") == 3  # both connections landed
