"""Transaction-history retention tests."""

import pytest

from repro.core.database import Database
from repro.errors import TransactionError
from repro.workloads import sum_node_schema


class TestHistoryLimit:
    def test_history_trimmed_to_limit(self):
        db = Database(sum_node_schema())
        db.txn.history_limit = 3
        iid = db.create("node")
        for value in range(10):
            db.set_attr(iid, "weight", value + 1)
        assert len(db.txn.history) == 3

    def test_undo_beyond_limit_rejected(self):
        db = Database(sum_node_schema())
        db.txn.history_limit = 2
        iid = db.create("node")
        db.set_attr(iid, "weight", 1)
        db.set_attr(iid, "weight", 2)
        db.set_attr(iid, "weight", 3)
        db.undo()
        db.undo()
        with pytest.raises(TransactionError, match="no committed"):
            db.undo()
        # The retained levels were honoured.
        assert db.get_attr(iid, "weight") == 1

    def test_unlimited_by_default(self):
        db = Database(sum_node_schema())
        iid = db.create("node")
        for value in range(20):
            db.set_attr(iid, "weight", value + 1)
        assert len(db.txn.history) == 21  # create + 20 sets
