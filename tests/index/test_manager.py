"""Incremental maintenance of attribute indexes and subtype extents.

The structures in :mod:`repro.index` are themselves derived data: every
test here mutates the database through the ordinary primitives and then
checks the indexes against ground truth recomputed naively, including
across rollback, undo, and dynamic schema extension.
"""

import pytest

from repro.core.database import Database
from repro.dsl import compile_schema
from repro.errors import SchemaError
from repro.index import INDEX_DISABLED_ENV, IndexManager, indexes_enabled

SOURCE = """
object class item is
  attributes
    weight : integer;
    label  : string;
    twice  : integer;
  rules
    twice = weight * 2;
end object;

object class heavy_item subtype of item where weight > 10 is
  attributes
    heavy : boolean;
  rules
    heavy = true;
end object;
"""


def make_db(*indexed, functions=None, source=SOURCE):
    schema = compile_schema(source, functions=functions, freeze=False)
    for attr in indexed:
        schema.add_index("item", attr)
    schema.freeze()
    return Database(schema)


def index_of(db, attr, class_name="item"):
    return db.indexes.attr_indexes[(class_name, attr)]


def ground_truth(db, attr, class_name="item"):
    """What the index's buckets must equal: a naive sweep of the catalog."""
    buckets = {}
    for iid in db.instances_of(class_name):
        buckets.setdefault(db.get_attr(iid, attr), []).append(iid)
    return buckets


class TestSchemaDeclaration:
    def test_duplicate_index_rejected(self):
        schema = compile_schema(SOURCE, freeze=False)
        schema.add_index("item", "weight")
        with pytest.raises(SchemaError, match="already declares an index"):
            schema.add_index("item", "weight")

    def test_unknown_class_rejected_at_freeze(self):
        schema = compile_schema(SOURCE, freeze=False)
        schema.add_index("nonesuch", "weight")
        with pytest.raises(SchemaError, match="unknown object class"):
            schema.freeze()

    def test_unknown_attribute_rejected_at_freeze(self):
        schema = compile_schema(SOURCE, freeze=False)
        schema.add_index("item", "nonesuch")
        with pytest.raises(SchemaError, match="no attribute"):
            schema.freeze()

    def test_index_on_predicate_subtype_rejected(self):
        schema = compile_schema(SOURCE, freeze=False)
        schema.add_index("heavy_item", "weight")
        with pytest.raises(SchemaError, match="predicate subtype"):
            schema.freeze()

    def test_drop_index(self):
        schema = compile_schema(SOURCE, freeze=False)
        schema.add_index("item", "weight")
        schema.drop_index("item", "weight")
        schema.freeze()
        db = Database(schema)
        assert db.indexes.attr_indexes == {}


class TestIntrinsicMaintenance:
    def test_create_and_set_attr_move_buckets(self):
        db = make_db("weight")
        a = db.create("item", weight=3)
        b = db.create("item", weight=3)
        c = db.create("item", weight=8)
        index = index_of(db, "weight")
        assert index.buckets == {3: [a, b], 8: [c]}
        db.set_attr(b, "weight", 8)
        assert index.buckets == {3: [a], 8: [b, c]}
        assert not index.pending

    def test_delete_removes_everywhere(self):
        db = make_db("weight")
        a = db.create("item", weight=3)
        b = db.create("item", weight=3)
        db.delete(a)
        index = index_of(db, "weight")
        assert index.buckets == {3: [b]}
        assert index.key_of == {b: 3}

    def test_rollback_restores_index(self):
        db = make_db("weight")
        a = db.create("item", weight=3)
        before = dict(index_of(db, "weight").buckets)
        with pytest.raises(RuntimeError):
            with db.transaction("doomed"):
                db.create("item", weight=9)
                db.set_attr(a, "weight", 100)
                db.delete(a)
                raise RuntimeError("abandon")
        assert index_of(db, "weight").buckets == before
        assert index_of(db, "weight").buckets == ground_truth(db, "weight")

    def test_undo_restores_index(self):
        db = make_db("weight")
        a = db.create("item", weight=3)
        with db.transaction("grow"):
            db.create("item", weight=9)
            db.set_attr(a, "weight", 5)
        db.undo()
        assert index_of(db, "weight").buckets == {3: [a]}

    def test_ordered_probes(self):
        db = make_db("weight")
        for w in (5, 1, 9, 5, 3):
            db.create("item", weight=w)
        index = index_of(db, "weight")
        assert index.equal(5) == sorted(
            i for i in db.instances_of("item") if db.get_attr(i, "weight") == 5
        )
        assert index.range(">", 3) == sorted(
            i for i in db.instances_of("item") if db.get_attr(i, "weight") > 3
        )
        assert index.count_range("<=", 5) == 4
        assert index.ordered_keys(descending=False) == [1, 3, 5, 9]
        assert index.ordered_keys(descending=True) == [9, 5, 3, 1]


class TestDerivedMaintenance:
    def test_new_instances_are_pending_until_swept(self):
        db = make_db("twice")
        a = db.create("item", weight=3)
        index = index_of(db, "twice")
        assert a in index.pending
        db.indexes.refresh_attr_index(index)
        assert not index.pending
        assert index.buckets == {6: [a]}

    def test_stale_slots_swept_from_out_of_date_set(self):
        db = make_db("twice")
        a = db.create("item", weight=3)
        index = index_of(db, "twice")
        db.indexes.refresh_attr_index(index)
        db.set_attr(a, "weight", 10)  # invalidates twice without evaluating
        db.indexes.refresh_attr_index(index)
        assert index.buckets == {20: [a]}
        assert db.indexes.stats.swept_slots >= 2

    def test_refresh_matches_ground_truth_after_churn(self):
        db = make_db("twice")
        iids = [db.create("item", weight=w) for w in (1, 2, 3, 4)]
        db.indexes.refresh_attr_index(index_of(db, "twice"))
        db.set_attr(iids[0], "weight", 7)
        db.delete(iids[1])
        db.set_attr(iids[2], "weight", 7)
        db.indexes.refresh_attr_index(index_of(db, "twice"))
        assert index_of(db, "twice").buckets == ground_truth(db, "twice")

    def test_unhashable_value_quarantines_index(self):
        source = SOURCE.replace(
            "twice = weight * 2;", "twice = boxed(weight);"
        ).replace("twice  : integer;", "twice  : any;")
        db = make_db(
            "twice", functions={"boxed": lambda w: [w]}, source=source
        )
        a = db.create("item", weight=3)
        index = index_of(db, "twice")
        db.indexes.refresh_attr_index(index)
        assert a in index.unhashable
        assert not index.usable


class TestExtents:
    def test_membership_flips_track_attribute_changes(self):
        db = make_db()
        a = db.create("item", weight=5)
        extent = db.indexes.extents["heavy_item"]
        db.indexes.refresh_extent(extent)
        assert extent.members == set()
        db.set_attr(a, "weight", 20)
        db.indexes.refresh_extent(extent)
        assert extent.members == {a}
        db.set_attr(a, "weight", 2)
        db.indexes.refresh_extent(extent)
        assert extent.members == set()

    def test_delete_leaves_extent(self):
        db = make_db()
        a = db.create("item", weight=20)
        extent = db.indexes.extents["heavy_item"]
        db.indexes.refresh_extent(extent)
        assert extent.members == {a}
        db.delete(a)
        assert extent.members == set()
        assert a not in extent.pending

    def test_rollback_restores_membership(self):
        db = make_db()
        a = db.create("item", weight=20)
        extent = db.indexes.extents["heavy_item"]
        db.indexes.refresh_extent(extent)
        with pytest.raises(RuntimeError):
            with db.transaction("doomed"):
                db.set_attr(a, "weight", 1)
                assert not db.is_member(a, "heavy_item")
                raise RuntimeError("abandon")
        db.indexes.refresh_extent(extent)
        assert extent.members == {a}
        assert db.is_member(a, "heavy_item")


class TestDynamicExtension:
    def test_extend_schema_registers_new_extent(self):
        from repro.env.milestones import MilestoneManager

        mm = MilestoneManager()
        mm.add_milestone("a", scheduled=10, work=25)
        mm.add_milestone("b", scheduled=10, work=3)
        assert "very_late_milestone" not in mm.db.indexes.extents
        mm.add_very_late_support(limit=5)
        extent = mm.db.indexes.extents["very_late_milestone"]
        mm.db.indexes.refresh_extent(extent)
        assert len(extent.members) == 1


class TestMetricsAndDisabling:
    def test_metrics_shape(self):
        db = make_db("weight")
        db.create("item", weight=1)
        snapshot = db.obs.snapshot()["index"]
        assert snapshot["attr_indexes"] == 1
        assert snapshot["extents"] == 1  # heavy_item
        assert snapshot["entries"] == 1
        assert snapshot["inserts"] == 1

    def test_env_hatch_disables_maintenance(self, monkeypatch):
        monkeypatch.setenv(INDEX_DISABLED_ENV, "1")
        assert not indexes_enabled()
        db = make_db("weight")
        assert not db.indexes.enabled
        db.create("item", weight=1)
        assert db.indexes.attr_indexes == {}
        assert db.indexes.metrics()["entries"] == 0

    def test_manager_rebuild_matches_incremental(self):
        db = make_db("weight")
        for w in (4, 4, 9):
            db.create("item", weight=w)
        rebuilt = IndexManager(db)
        assert (
            rebuilt.attr_indexes[("item", "weight")].buckets
            == index_of(db, "weight").buckets
        )
