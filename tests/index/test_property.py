"""Property: indexed query results equal the naive scan, always (hypothesis).

Random scripts of creates, updates, and deletes churn attribute values,
derived slots, and predicate-subtype membership; after every script a
battery of queries must answer identically through :meth:`Query.run`
(planner, indexes, extents) and :meth:`Query.run_scan` (the naive
reference) -- under both the compiled engine and ``REPRO_NO_COMPILE=1``.
"""

import os

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compile import COMPILE_DISABLED_ENV
from repro.core.database import Database
from repro.dsl import compile_schema
from repro.dsl.query import compile_query

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=25,
)

SOURCE = """
object class item is
  attributes
    bucket : integer;
    score  : integer;
    twice  : integer;
  rules
    twice = bucket * 2;
end object;

object class heavy_item subtype of item where score > 50 is
  attributes
    heavy : boolean;
  rules
    heavy = true;
end object;
"""

QUERIES = [
    "select item",
    "select item where bucket == 2",
    "select item where bucket == 2 and score > 30",
    "select item where score >= 40",
    "select item where score < 25 order by bucket",
    "select item order by score desc limit 3",
    "select item order by twice limit 4",
    "select item where twice == 4",
    "select heavy_item",
    "select heavy_item where bucket <= 2 order by score desc",
]


def make_db():
    schema = compile_schema(SOURCE, freeze=False)
    for attr in ("bucket", "score", "twice"):
        schema.add_index("item", attr)
    schema.freeze()
    return Database(schema, pool_capacity=256), schema


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "set_bucket", "set_score", "delete", "query"]),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=1,
    max_size=40,
)


def run_script(db, schema, ops):
    """Apply the script, A/B-checking a query at every 'query' op."""
    live = []
    for op, a, b in ops:
        if op == "create":
            live.append(db.create("item", bucket=a % 5, score=b))
        elif op == "set_bucket" and live:
            db.set_attr(live[a % len(live)], "bucket", b % 5)
        elif op == "set_score" and live:
            # Crossing 50 flips heavy_item membership.
            db.set_attr(live[a % len(live)], "score", b)
        elif op == "delete" and live:
            db.delete(live.pop(a % len(live)))
        elif op == "query":
            text = QUERIES[a % len(QUERIES)]
            query = compile_query(schema, text)
            assert query.run(db) == query.run_scan(db), text
    # Final sweep: every query in the battery agrees.
    for text in QUERIES:
        query = compile_query(schema, text)
        assert query.run(db) == query.run_scan(db), text


@given(ops=ops_strategy)
@settings(**COMMON)
def test_indexed_equals_scan_compiled_engine(ops):
    db, schema = make_db()
    run_script(db, schema, ops)


@given(ops=ops_strategy)
@settings(**COMMON)
def test_indexed_equals_scan_interpreted_engine(ops):
    os.environ[COMPILE_DISABLED_ENV] = "1"
    try:
        db, schema = make_db()
    finally:
        os.environ.pop(COMPILE_DISABLED_ENV, None)
    run_script(db, schema, ops)


@given(ops=ops_strategy)
@settings(**COMMON)
def test_transaction_rollback_keeps_indexes_consistent(ops):
    db, schema = make_db()
    seed = [db.create("item", bucket=i % 5, score=i * 13 % 100) for i in range(6)]
    try:
        with db.transaction("doomed"):
            run_script(db, schema, ops)
            raise RuntimeError("abandon")
    except RuntimeError:
        pass
    assert sorted(db.instances_of("item")) == sorted(seed)
    for text in QUERIES:
        query = compile_query(schema, text)
        assert query.run(db) == query.run_scan(db), text
