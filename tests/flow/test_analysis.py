"""CFG construction and dataflow analysis tests (experiment E11)."""

from repro.env.flow import (
    build_cfg,
    dead_stores,
    live_variables,
    parse_program,
    reaching_definitions,
    uninitialized_uses,
)


def cfg_of(source):
    return build_cfg(parse_program(source))


class TestCfg:
    def test_straight_line(self):
        cfg = cfg_of("x = 1; y = x; print(y);")
        stmts = cfg.statement_nodes()
        assert [n.kind for n in stmts] == ["assign", "assign", "print"]
        assert not cfg.has_cycle()

    def test_if_creates_two_paths(self):
        cfg = cfg_of("if (x > 0) { y = 1; } print(y);")
        cond = next(n for n in cfg.statement_nodes() if n.kind == "cond")
        assert len(cond.successors) == 2  # then-branch and fall-through

    def test_while_creates_back_edge(self):
        cfg = cfg_of("while (i < 3) { i = i + 1; }")
        assert cfg.has_cycle()

    def test_defs_and_uses_recorded(self):
        cfg = cfg_of("x = y + 1;")
        node = cfg.statement_nodes()[0]
        assert node.defines == "x"
        assert node.uses == frozenset({"y"})

    def test_entry_exit_wiring(self):
        cfg = cfg_of("x = 1;")
        assert cfg.nodes[cfg.entry].successors
        assert cfg.nodes[cfg.exit].predecessors


class TestReachingDefinitions:
    def test_straight_line_reaches(self):
        cfg = cfg_of("x = 1; y = x;")
        rd = reaching_definitions(cfg)
        use = cfg.statement_nodes()[1]
        def_node = cfg.statement_nodes()[0]
        assert rd.definitions_reaching(use.node_id, "x") == {def_node.node_id}

    def test_redefinition_kills(self):
        cfg = cfg_of("x = 1; x = 2; y = x;")
        rd = reaching_definitions(cfg)
        use = cfg.statement_nodes()[2]
        second_def = cfg.statement_nodes()[1]
        assert rd.definitions_reaching(use.node_id, "x") == {second_def.node_id}

    def test_branches_merge(self):
        cfg = cfg_of("if (c > 0) { x = 1; } else { x = 2; } y = x;")
        rd = reaching_definitions(cfg)
        use = next(n for n in cfg.statement_nodes() if n.defines == "y")
        assert len(rd.definitions_reaching(use.node_id, "x")) == 2

    def test_loop_def_reaches_condition(self):
        cfg = cfg_of("i = 0; while (i < 3) { i = i + 1; }")
        rd = reaching_definitions(cfg)
        cond = next(n for n in cfg.statement_nodes() if n.kind == "cond")
        # Both the initial def and the loop-body def reach the condition.
        assert len(rd.definitions_reaching(cond.node_id, "i")) == 2


class TestLiveVariables:
    def test_variable_live_until_last_use(self):
        cfg = cfg_of("x = 1; print(x);")
        lv = live_variables(cfg)
        def_node = cfg.statement_nodes()[0]
        assert "x" in lv.live_out[def_node.node_id]

    def test_dead_after_final_use(self):
        cfg = cfg_of("x = 1; print(x); y = 2;")
        lv = live_variables(cfg)
        print_node = cfg.statement_nodes()[1]
        assert "x" not in lv.live_out[print_node.node_id]

    def test_loop_variable_live_around_loop(self):
        cfg = cfg_of("i = 0; while (i < 3) { i = i + 1; } print(i);")
        lv = live_variables(cfg)
        body = next(n for n in cfg.statement_nodes() if n.defines == "i" and n.uses)
        assert "i" in lv.live_out[body.node_id]


class TestDiagnostics:
    def test_uninitialized_use_detected(self):
        findings = uninitialized_uses(cfg_of("print(y);"))
        assert len(findings) == 1
        assert "y" in findings[0].message

    def test_conditional_initialisation_flagged(self):
        findings = uninitialized_uses(
            cfg_of("if (c > 0) { x = 1; } print(x);")
        )
        # The condition reads 'c' (never assigned) and 'x' may be unset.
        flagged = {f.message.split("'")[1] for f in findings}
        assert "c" in flagged
        # x *has* a reaching definition along one path, so the may-analysis
        # does not flag it; this is reaching-defs semantics.
        assert "x" not in flagged

    def test_clean_program_no_findings(self):
        findings = uninitialized_uses(cfg_of("x = 1; print(x);"))
        assert findings == []

    def test_dead_store_detected(self):
        findings = dead_stores(cfg_of("x = 1; x = 2; print(x);"))
        assert len(findings) == 1
        assert findings[0].label == "x = 1"

    def test_store_used_in_loop_not_dead(self):
        findings = dead_stores(
            cfg_of("i = 0; while (i < 3) { i = i + 1; } print(i);")
        )
        assert findings == []

    def test_trailing_store_is_dead(self):
        findings = dead_stores(cfg_of("x = 1; print(x); x = 2;"))
        assert [f.label for f in findings] == ["x = 2"]
