"""Mini-language parser tests."""

import pytest

from repro.env.flow import minilang as ml
from repro.errors import DslSyntaxError


class TestParsing:
    def test_assignment(self):
        prog = ml.parse_program("x = 1 + 2 * 3;")
        stmt = prog.body[0]
        assert isinstance(stmt, ml.Assign)
        assert stmt.name == "x"
        assert isinstance(stmt.value, ml.BinOp) and stmt.value.op == "+"

    def test_if_else(self):
        prog = ml.parse_program("if (x > 0) { y = 1; } else { y = 2; }")
        stmt = prog.body[0]
        assert isinstance(stmt, ml.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_else(self):
        prog = ml.parse_program("if (x > 0) { y = 1; }")
        assert prog.body[0].else_body == ()

    def test_while(self):
        prog = ml.parse_program("while (i < 10) { i = i + 1; }")
        stmt = prog.body[0]
        assert isinstance(stmt, ml.While)
        assert isinstance(stmt.body[0], ml.Assign)

    def test_print(self):
        prog = ml.parse_program("print(x + 1);")
        assert isinstance(prog.body[0], ml.Print)

    def test_nested_blocks(self):
        prog = ml.parse_program(
            "while (a < 3) { if (b == 0) { b = 1; } a = a + 1; }"
        )
        loop = prog.body[0]
        assert isinstance(loop.body[0], ml.If)
        assert isinstance(loop.body[1], ml.Assign)

    def test_parenthesised_expression(self):
        prog = ml.parse_program("x = (1 + 2) * 3;")
        assert prog.body[0].value.op == "*"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(DslSyntaxError):
            ml.parse_program("x = 1")

    def test_unterminated_block(self):
        with pytest.raises(DslSyntaxError, match="unterminated"):
            ml.parse_program("while (1 < 2) { x = 1;")

    def test_garbage(self):
        with pytest.raises(DslSyntaxError):
            ml.parse_program("$$$")


class TestVariablesUsed:
    def test_collects_reads(self):
        prog = ml.parse_program("x = a + b * a;")
        assert ml.variables_used(prog.body[0].value) == {"a", "b"}

    def test_constants_have_no_variables(self):
        prog = ml.parse_program("x = 1 + 2;")
        assert ml.variables_used(prog.body[0].value) == set()
