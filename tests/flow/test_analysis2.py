"""Constant propagation and available expressions tests."""

from repro.env.flow import (
    attach_rhs_asts,
    available_expressions,
    build_cfg,
    constant_folds,
    constant_propagation,
    parse_program,
    redundant_computations,
)


def analysed_cfg(source):
    program = parse_program(source)
    cfg = build_cfg(program)
    attach_rhs_asts(cfg, program)
    return cfg


class TestConstantPropagation:
    def test_straight_line_constants(self):
        cfg = analysed_cfg("x = 2; y = x + 3; z = y * 2;")
        cp = constant_propagation(cfg)
        z_node = next(n for n in cfg.statement_nodes() if n.defines == "z")
        assert cp.constant_at(z_node.node_id, "y") == 5

    def test_branch_conflict_becomes_top(self):
        cfg = analysed_cfg(
            "if (c > 0) { x = 1; } else { x = 2; } y = x;"
        )
        cp = constant_propagation(cfg)
        y_node = next(n for n in cfg.statement_nodes() if n.defines == "y")
        assert cp.constant_at(y_node.node_id, "x") is None

    def test_branch_agreement_stays_constant(self):
        cfg = analysed_cfg(
            "if (c > 0) { x = 7; } else { x = 7; } y = x;"
        )
        cp = constant_propagation(cfg)
        y_node = next(n for n in cfg.statement_nodes() if n.defines == "y")
        assert cp.constant_at(y_node.node_id, "x") == 7

    def test_loop_modified_variable_is_top(self):
        cfg = analysed_cfg("i = 0; while (i < 3) { i = i + 1; } y = i;")
        cp = constant_propagation(cfg)
        y_node = next(n for n in cfg.statement_nodes() if n.defines == "y")
        assert cp.constant_at(y_node.node_id, "i") is None

    def test_loop_invariant_stays_constant(self):
        cfg = analysed_cfg(
            "k = 5; i = 0; while (i < 3) { i = i + k; } y = k;"
        )
        cp = constant_propagation(cfg)
        y_node = next(n for n in cfg.statement_nodes() if n.defines == "y")
        assert cp.constant_at(y_node.node_id, "k") == 5

    def test_constant_folds_found(self):
        cfg = analysed_cfg("x = 2; y = x * 10; z = y + unknown;")
        folds = dict(
            (label, value) for __, label, value in constant_folds(cfg)
        )
        assert folds["x = 2"] == 2
        assert folds["y = (x * 10)"] == 20
        assert not any("unknown" in label for label in folds)

    def test_division_by_zero_not_folded(self):
        cfg = analysed_cfg("x = 0; y = 10 / x;")
        folds = [label for __, label, __ in constant_folds(cfg)]
        assert "x = 0" in folds
        assert not any(label.startswith("y") for label in folds)


class TestAvailableExpressions:
    def test_recomputed_expression_available(self):
        cfg = analysed_cfg("a = x + y; b = x + y;")
        redundant = redundant_computations(cfg)
        assert any(expr == "(x + y)" for __, __, expr in redundant)

    def test_redefinition_kills_availability(self):
        cfg = analysed_cfg("a = x + y; x = 1; b = x + y;")
        redundant = redundant_computations(cfg)
        assert not any(expr == "(x + y)" for __, __, expr in redundant)

    def test_must_semantics_across_branches(self):
        # Computed on only one branch: not available afterwards.
        cfg = analysed_cfg(
            "if (c > 0) { a = x + y; } b = x + y;"
        )
        redundant = redundant_computations(cfg)
        b_hits = [r for r in redundant if r[1].startswith("b")]
        assert b_hits == []

    def test_available_when_computed_on_all_branches(self):
        cfg = analysed_cfg(
            "if (c > 0) { a = x + y; } else { d = x + y; } b = x + y;"
        )
        redundant = redundant_computations(cfg)
        assert any(r[1].startswith("b") for r in redundant)

    def test_loop_invariant_available_on_back_edge(self):
        cfg = analysed_cfg(
            "a = x + y; i = 0; while (i < 3) { b = x + y; i = i + 1; }"
        )
        redundant = redundant_computations(cfg)
        assert any(r[1].startswith("b") for r in redundant)

    def test_analysis_converges(self):
        cfg = analysed_cfg(
            "i = 0; while (i < 9) { j = 0; while (j < 9) { j = j + 1; } i = i + 1; }"
        )
        result = available_expressions(cfg)
        assert result.iterations >= 2
