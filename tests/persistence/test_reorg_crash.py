"""Crash safety for online reorganisation: the step-boundary matrix.

A deterministic build (C commit appends) is followed by an online epoch
(1 ``reorg_begin`` + S ``reorg_step`` + 1 ``reorg_end`` appends).  Each
step is logged write-ahead, so for every k in 0..S a crash after the
(C+1+k)-th append must recover to:

* the logical state of the full build (migration moves no logical data --
  fingerprints compare instances, values, connections, history, and
  deliberately exclude physical placement);
* the first k plan groups co-located, one block each;
* a consistent layout (every instance placed once, capacities respected);
* ``reorg_abandoned`` true -- the epoch never completed.

Placement itself is physical state: a recovered database recomputes
record sizes without the live run's cached derived values, so block ids
need not match the live run -- only the clustering the WAL promised.
"""

import pytest

from repro.core.database import Database
from repro.persistence.faults import (
    CrashPoint,
    crash_after,
    database_fingerprint,
)
from repro.workloads.topologies import build_chain, link, sum_node_schema

SCHEMA = sum_node_schema()
GEOMETRY = {"block_capacity": 256, "pool_capacity": 4}


def build(db):
    """C = 3 commit appends; accesses train the usage counters for free."""
    with db.transaction("build"):
        build_chain(db, 6, weight=2)  # iids 1..6
    with db.transaction("crosslink"):
        a = db.create("node", weight=5)  # iid 7
        link(db, a, 1)
    with db.transaction("retune"):
        db.set_attr(1, "weight", 3)
    for __ in range(4):
        for iid in (6, 7):
            db.get_attr(iid, "total")


C = 3  # commit appends produced by build()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """A never-crashed epoch: the plan it logged and the logical state."""
    db = Database.open(
        str(tmp_path_factory.mktemp("ref") / "db"), SCHEMA, sync=False, **GEOMETRY
    )
    build(db)
    fingerprint = database_fingerprint(db)
    total6 = db.get_attr(6, "total")
    epoch = db.reorganize_online()
    plan = [list(group) for group in epoch.plan]
    db.reorg.run_to_completion()
    assert epoch.completed
    db.close()
    return {
        "steps": len(plan),
        "plan": plan,
        "fingerprint": fingerprint,
        "total6": total6,
    }


def partition(db):
    groups = {}
    for iid in db.instance_ids():
        groups.setdefault(db.storage.block_of(iid), set()).add(iid)
    return {frozenset(g) for g in groups.values()}


def assert_layout_consistent(db):
    seen = set()
    for block_id, block in db.storage.disk.blocks.items():
        for iid in block.residents:
            assert iid not in seen
            seen.add(iid)
            assert db.storage.block_of(iid) == block_id
        assert block.used <= block.capacity
    assert seen == set(db.instance_ids())


def assert_plan_prefix_applied(db, plan, k):
    """The first k migrated groups each occupy exactly one block."""
    for group in plan[:k]:
        blocks = {db.storage.block_of(iid) for iid in group}
        assert len(blocks) == 1, f"group {group} split across {blocks}"


def crashed_epoch(directory, k):
    """Build, then crash after the k-th reorg append (0 = after begin)."""
    db = Database.open(
        str(directory), SCHEMA, sync=False, injector=crash_after(C + 1 + k), **GEOMETRY
    )
    with pytest.raises(CrashPoint):
        build(db)
        db.reorganize_online()
        db.reorg.run_to_completion()


def recover(directory):
    db = Database.open(str(directory), SCHEMA, sync=False, **GEOMETRY)
    return db, db.persistence.stats.recovery


class TestStepBoundaryMatrix:
    def test_crash_at_every_step_boundary(self, tmp_path, reference):
        steps = reference["steps"]
        assert steps >= 2, "workload too small to exercise the matrix"
        for k in range(steps + 1):
            directory = tmp_path / f"crash-{k}"
            crashed_epoch(directory, k)
            db, report = recover(directory)
            ctx = f"crash after reorg append {k}"
            assert database_fingerprint(db) == reference["fingerprint"], ctx
            assert_layout_consistent(db)
            assert_plan_prefix_applied(db, reference["plan"], k)
            assert report.replayed == C, ctx
            assert report.reorg_steps_replayed == k, ctx
            assert report.reorg_abandoned, ctx
            # Readable: derived values survive the mixed layout.
            assert db.get_attr(6, "total") == reference["total6"], ctx
            db.close()

    def test_full_epoch_lands_exactly_on_the_plan(self, tmp_path, reference):
        # Crash after the reorg_end append: every step is durable and the
        # recovered partition is precisely the planned clustering.
        steps = reference["steps"]
        crashed_epoch(tmp_path / "db", steps + 1)
        db, report = recover(tmp_path / "db")
        assert database_fingerprint(db) == reference["fingerprint"]
        assert partition(db) == {frozenset(g) for g in reference["plan"]}
        assert report.reorg_steps_replayed == steps
        assert not report.reorg_abandoned
        db.close()

    def test_new_epoch_after_abandoned_recovery(self, tmp_path, reference):
        # The interrupted epoch does not resume; a fresh one re-plans and
        # finishes the job from the mixed layout.
        crashed_epoch(tmp_path / "db", 1)
        db, report = recover(tmp_path / "db")
        assert report.reorg_abandoned
        epoch = db.reorganize_online()
        db.reorg.run_to_completion()
        assert epoch.completed
        assert_layout_consistent(db)
        db.close()

    def test_recovery_is_idempotent(self, tmp_path, reference):
        crashed_epoch(tmp_path / "db", 2)
        db1, __ = recover(tmp_path / "db")
        first = partition(db1)
        db1.close()
        db2, report2 = recover(tmp_path / "db")
        assert partition(db2) == first
        assert report2.reorg_steps_replayed == 2
        db2.close()


class TestCheckpointMidEpoch:
    def test_checkpoint_folds_mixed_layout_into_image(self, tmp_path, reference):
        db = Database.open(str(tmp_path / "db"), SCHEMA, sync=False, **GEOMETRY)
        build(db)
        db.reorganize_online()
        db.reorg.step()
        db.reorg.step()
        db.checkpoint()  # mixed placement lands in the image; WAL truncates
        live = partition(db)
        db.close()  # "crash" here: the epoch never finished
        recovered, report = recover(tmp_path / "db")
        # The image stores per-instance placement, so the mixed layout is
        # restored exactly -- nothing to replay.
        assert partition(recovered) == live
        assert database_fingerprint(recovered) == reference["fingerprint"]
        assert report.reorg_steps_replayed == 0
        assert_layout_consistent(recovered)
        recovered.close()

    def test_steps_after_checkpoint_replay_on_restored_layout(
        self, tmp_path, reference
    ):
        steps = reference["steps"]
        db = Database.open(
            str(tmp_path / "db"),
            SCHEMA,
            sync=False,
            injector=crash_after(C + 1 + steps),  # append count survives truncation
            **GEOMETRY,
        )
        build(db)
        db.reorganize_online()
        plan = [list(group) for group in db.reorg.epoch.plan]
        db.reorg.step()
        db.checkpoint()
        with pytest.raises(CrashPoint):
            db.reorg.run_to_completion()
        recovered, report = recover(tmp_path / "db")
        # Steps 2..S sit in the WAL tail; step 1 came from the image.
        # Orphan step records (their begin was truncated away) still mark
        # the epoch as in flight.
        assert report.reorg_steps_replayed == steps - 1
        assert report.reorg_abandoned
        assert_layout_consistent(recovered)
        assert_plan_prefix_applied(recovered, plan, steps)
        assert database_fingerprint(recovered) == reference["fingerprint"]
        recovered.close()
