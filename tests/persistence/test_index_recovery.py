"""Recovery must rebuild index state consistently.

Indexes are derived structures rebuilt at open from the recovered catalog
and maintained through WAL replay's primitive re-application.  Whatever
prefix of the workload survives a crash, the recovered database's indexes
must equal a from-scratch rebuild of that prefix, and every indexed query
must agree with the naive scan.
"""

import pytest

from repro.core.database import Database
from repro.dsl import compile_schema
from repro.dsl.query import compile_query
from repro.persistence.faults import CrashPoint, crash_after, database_fingerprint

SOURCE = """
object class item is
  attributes
    bucket : integer;
    score  : integer;
    twice  : integer;
  rules
    twice = bucket * 2;
end object;

object class heavy_item subtype of item where score > 50 is
  attributes
    heavy : boolean;
  rules
    heavy = true;
end object;
"""


def make_schema():
    schema = compile_schema(SOURCE, freeze=False)
    schema.add_index("item", "bucket")
    schema.add_index("item", "twice")
    schema.freeze()
    return schema


QUERIES = [
    "select item where bucket == 1",
    "select item where twice == 4 order by score desc",
    "select item order by bucket limit 3",
    "select heavy_item",
]


def _event_seed(db):
    with db.transaction("seed"):
        for i in range(6):
            db.create("item", bucket=i % 3, score=i * 20)


def _event_churn(db):
    with db.transaction("churn"):
        db.set_attr(1, "bucket", 2)
        db.set_attr(2, "score", 99)  # flips into heavy_item
        db.delete(3)


def _event_regrow(db):
    with db.transaction("regrow"):
        db.create("item", bucket=1, score=80)
        db.set_attr(4, "score", 10)  # flips out of heavy_item


def _event_undo(db):
    db.undo()


EVENTS = [_event_seed, _event_churn, _event_regrow, _event_undo]
N = len(EVENTS)


def run_events(db, upto=N):
    for event in EVENTS[:upto]:
        event(db)


def assert_indexes_sound(db):
    """Indexes equal naive ground truth; queries equal the scan."""
    schema = db.schema
    for (class_name, attr), index in db.indexes.attr_indexes.items():
        truth = {}
        for iid in db.instances_of(class_name):
            truth.setdefault(db.get_attr(iid, attr), []).append(iid)
        db.indexes.refresh_attr_index(index)
        assert index.buckets == truth, (class_name, attr)
        assert not index.pending, (class_name, attr)
    for name, extent in db.indexes.extents.items():
        db.indexes.refresh_extent(extent)
        assert extent.members == set(db.instances_of(name)), name
    for text in QUERIES:
        query = compile_query(schema, text)
        assert query.run(db) == query.run_scan(db), text


class TestIndexRecovery:
    @pytest.mark.parametrize("k", range(1, N + 1))
    def test_crash_after_append_k_rebuilds_indexes(self, tmp_path, k):
        schema = make_schema()
        db = Database.open(str(tmp_path / "db"), schema, sync=False, injector=crash_after(k))
        with pytest.raises(CrashPoint):
            run_events(db)
        recovered = Database.open(str(tmp_path / "db"), make_schema(), sync=False)
        clean = Database(make_schema())
        run_events(clean, k)
        assert database_fingerprint(recovered) == database_fingerprint(clean)
        assert_indexes_sound(recovered)
        # And the recovered indexes answer exactly like the clean run's.
        for text in QUERIES:
            assert (
                compile_query(recovered.schema, text).run(recovered)
                == compile_query(clean.schema, text).run(clean)
            ), text

    def test_clean_reopen_rebuilds_indexes(self, tmp_path):
        schema = make_schema()
        db = Database.open(str(tmp_path / "db"), schema, sync=False)
        run_events(db)
        db.close()
        recovered = Database.open(str(tmp_path / "db"), make_schema(), sync=False)
        assert_indexes_sound(recovered)
