"""The crash matrix: recovery must land on a transaction boundary.

A deterministic workload of six durable events (commits and an Undo, with
an aborting transaction and derived-value reads interleaved) runs against
a durable database while a fault injector kills the process around a
chosen WAL append.  Recovery of the crashed directory must then fingerprint
identically to a never-crashed run of exactly the durable prefix --
instances, intrinsic values, connections, constraint outcomes, and
history all equal, never a mixture of two transactions.
"""

import pytest

from repro.core.database import Database
from repro.persistence.checkpoint import write_checkpoint
from repro.persistence.faults import (
    CrashPoint,
    crash_after,
    crash_before,
    database_fingerprint,
    flip_record_bit,
    torn_write,
    truncate_tail,
)
from repro.persistence.manager import PersistenceManager
from repro.workloads.topologies import build_chain, link, sum_node_schema

SCHEMA = sum_node_schema()


# ---------------------------------------------------------------------------
# the workload: six durable events (each is exactly one WAL append)
# ---------------------------------------------------------------------------


def _event_build(db):
    with db.transaction("build"):
        build_chain(db, 3, weight=2)  # iids 1, 2, 3


def _event_retune(db):
    # First a doomed transaction: its create consumes an instance id and its
    # write takes effect in memory, but the abort rolls both back and the
    # WAL never hears about it (aborts cost no durability I/O).
    with pytest.raises(RuntimeError):
        with db.transaction("doomed"):
            db.create("node", weight=99)  # consumes iid 4
            db.set_attr(1, "weight", 50)
            raise RuntimeError("abandon this transaction")
    with db.transaction("retune"):
        db.set_attr(1, "weight", 7)
        db.set_attr(3, "weight", 5)


def _event_extend(db):
    with db.transaction("extend"):
        new = db.create("node", weight=10)  # iid 5 (4 went to the doomed create)
        link(db, 3, new)
    # A derived read is not a durable event; it must not disturb the matrix.
    assert db.get_attr(new, "total") == 10 + db.get_attr(3, "total")


def _event_undo(db):
    db.undo()  # rolls back "extend": one durable undo record


def _event_regrow(db):
    with db.transaction("regrow"):
        new = db.create("node", weight=4)  # iid 6
        link(db, new, 1)


def _event_prune(db):
    with db.transaction("prune"):
        db.disconnect(3, "inputs", 2, "outputs")
        db.delete(3)


EVENTS = [
    _event_build,
    _event_retune,
    _event_extend,
    _event_undo,
    _event_regrow,
    _event_prune,
]
N = len(EVENTS)


def run_events(db, upto=N):
    for event in EVENTS[:upto]:
        event(db)


def clean_fingerprint(upto):
    """Fingerprint of a never-crashed, purely in-memory run of ``upto`` events."""
    db = Database(SCHEMA)
    run_events(db, upto)
    return database_fingerprint(db)


def crashed_run(directory, injector):
    """Drive the workload into an injected crash; returns appends survived."""
    db = Database.open(str(directory), SCHEMA, sync=False, injector=injector)
    with pytest.raises(CrashPoint):
        run_events(db)
    # The process is "dead": no close, no flush beyond what append did.
    return db.persistence.stats


def recover(directory):
    db = Database.open(str(directory), SCHEMA, sync=False)
    return db, db.persistence.stats.recovery


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------


class TestCrashMatrix:
    @pytest.mark.parametrize("k", range(1, N + 1))
    def test_crash_after_append_k_preserves_k_events(self, tmp_path, k):
        crashed_run(tmp_path / "db", crash_after(k))
        db, report = recover(tmp_path / "db")
        assert database_fingerprint(db) == clean_fingerprint(k)
        assert report.clean and report.replayed == k

    @pytest.mark.parametrize("k", range(1, N + 1))
    def test_crash_before_append_k_preserves_k_minus_1(self, tmp_path, k):
        crashed_run(tmp_path / "db", crash_before(k))
        db, report = recover(tmp_path / "db")
        assert database_fingerprint(db) == clean_fingerprint(k - 1)
        assert report.clean and report.replayed == k - 1

    @pytest.mark.parametrize("k", [1, 3, 4, N])
    @pytest.mark.parametrize("keep", [3, 20])
    def test_torn_write_drops_the_torn_record(self, tmp_path, k, keep):
        # keep=3 cuts inside the 8-byte frame header, keep=20 inside the
        # payload; both must scan as torn and truncate back to k-1 events.
        crashed_run(tmp_path / "db", torn_write(k, keep_bytes=keep))
        db, report = recover(tmp_path / "db")
        assert database_fingerprint(db) == clean_fingerprint(k - 1)
        assert report.dropped == "torn"
        assert report.truncated_bytes == keep
        assert report.replayed == k - 1

    def test_undo_record_is_durable(self, tmp_path):
        # Crash right after the undo append: the undone transaction must
        # stay undone after recovery (instance 5 gone, history popped).
        crashed_run(tmp_path / "db", crash_after(4))
        db, __ = recover(tmp_path / "db")
        assert not db.exists(5)
        assert [label for __, label, __ in database_fingerprint(db)["history"]] == [
            "build",
            "retune",
        ]

    def test_crash_leaves_wal_replayable_again(self, tmp_path):
        # Recovery is idempotent: recovering the same directory twice gives
        # the same state (the repair truncation converges).
        crashed_run(tmp_path / "db", torn_write(5, keep_bytes=11))
        db1, report1 = recover(tmp_path / "db")
        db1.close()
        db2, report2 = recover(tmp_path / "db")
        assert database_fingerprint(db1) == database_fingerprint(db2)
        assert not report1.clean and report2.clean


class TestPostHocCorruption:
    def _full_run(self, directory):
        db = Database.open(str(directory), SCHEMA, sync=False)
        run_events(db)
        db.close()

    def test_bit_flip_in_final_record_is_rejected_not_replayed(self, tmp_path):
        self._full_run(tmp_path / "db")
        flip_record_bit(str(tmp_path / "db" / "wal.log"), record=-1, byte=7, bit=1)
        db, report = recover(tmp_path / "db")
        assert database_fingerprint(db) == clean_fingerprint(N - 1)
        assert report.dropped == "crc"
        assert report.replayed == N - 1

    def test_truncated_tail_recovers_prefix(self, tmp_path):
        self._full_run(tmp_path / "db")
        truncate_tail(str(tmp_path / "db" / "wal.log"), 9)
        db, report = recover(tmp_path / "db")
        assert database_fingerprint(db) == clean_fingerprint(N - 1)
        assert report.dropped == "torn"

    def test_clean_shutdown_recovers_everything(self, tmp_path):
        self._full_run(tmp_path / "db")
        db, report = recover(tmp_path / "db")
        assert database_fingerprint(db) == clean_fingerprint(N)
        assert report.clean and report.replayed == N


class TestCheckpointRecovery:
    def test_checkpoint_then_tail_replay(self, tmp_path):
        db = Database.open(
            str(tmp_path / "db"), SCHEMA, sync=False, injector=crash_after(5)
        )
        run_events(db, 3)
        db.checkpoint()
        with pytest.raises(CrashPoint):
            for event in EVENTS[3:]:
                event(db)
        recovered, report = recover(tmp_path / "db")
        assert database_fingerprint(recovered) == clean_fingerprint(5)
        assert report.checkpoint_seq == 3
        assert report.replayed == 2  # only the post-checkpoint tail

    def test_crash_between_checkpoint_install_and_wal_truncation(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), SCHEMA, sync=False)
        run_events(db, 4)
        # Install the image but "die" before the WAL truncation: every WAL
        # record is now also in the image, and recovery must skip rather
        # than double-apply them.
        manager = db.persistence
        write_checkpoint(db, manager.checkpoint_path, manager.seq)
        recovered, report = recover(tmp_path / "db")
        assert database_fingerprint(recovered) == clean_fingerprint(4)
        assert report.checkpoint_seq == 4
        assert report.replayed == 0 and report.skipped == 4

    def test_checkpoint_shrinks_wal(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), SCHEMA, sync=False)
        run_events(db, 3)
        before = db.persistence.wal_bytes
        db.checkpoint()
        assert before > 0 and db.persistence.wal_bytes == 0
        db.close()


class TestContinuationAfterRecovery:
    def test_recovered_database_keeps_logging(self, tmp_path):
        crashed_run(tmp_path / "db", crash_after(2))
        db, __ = recover(tmp_path / "db")
        with db.transaction("post-recovery"):
            db.create("node", weight=11)
        db.close()
        again, report = recover(tmp_path / "db")
        assert report.clean and report.replayed == 3
        assert database_fingerprint(again) == database_fingerprint(db)

    def test_new_instance_ids_do_not_collide_with_replayed_ones(self, tmp_path):
        crashed_run(tmp_path / "db", crash_after(5))
        db, __ = recover(tmp_path / "db")
        with db.transaction("fresh"):
            fresh = db.create("node", weight=1)
        assert fresh == 7  # beyond every id the WAL ever mentioned (1-6)
        db.close()


class TestDurableConfiguration:
    def test_sync_true_fsyncs_every_commit(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), SCHEMA, sync=True)
        run_events(db, 2)
        assert db.persistence._wal.syncs == 2
        db.close()
        recovered, __ = recover(tmp_path / "db")
        assert database_fingerprint(recovered) == clean_fingerprint(2)

    def test_aborts_append_nothing(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), SCHEMA, sync=False)
        run_events(db, 2)  # includes the doomed transaction
        stats = db.persistence.stats
        assert stats.commits_logged == 2 and stats.undos_logged == 0
        assert db.persistence._wal.appended == 2
        db.close()

    def test_opening_fresh_directory_creates_empty_database(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), SCHEMA, sync=False)
        assert len(db) == 0
        assert db.persistence.stats.recovery.replayed == 0
        assert database_fingerprint(db) == clean_fingerprint(0)
        db.close()
