"""Unit tests for WAL framing, scanning, repair, and checkpoint files."""

import json
import os
import struct

import pytest

from repro.errors import StorageError, TransactionError
from repro.persistence.checkpoint import read_checkpoint, write_checkpoint
from repro.persistence.faults import flip_record_bit, truncate_tail
from repro.persistence.wal import (
    WalScan,
    WriteAheadLog,
    decode_wal_payload,
    encode_commit_payload,
    encode_undo_payload,
    repair_wal,
    scan_wal,
    wal_payload_spans,
)
from repro.core.database import Database
from repro.txn.log import Delta, SetAttrRecord
from repro.workloads.topologies import build_chain, sum_node_schema


def wal_with(path, payloads, sync=False):
    wal = WriteAheadLog(path, sync=sync)
    for payload in payloads:
        wal.append(payload)
    wal.close()
    return wal


PAYLOADS = [{"type": "undo", "seq": i, "txn_id": i} for i in range(1, 4)]


class TestFraming:
    def test_append_scan_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        scan = scan_wal(path)
        assert scan.clean
        assert scan.payloads == PAYLOADS
        assert scan.valid_bytes == os.path.getsize(path)

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(str(tmp_path / "absent.log"))
        assert scan.clean and scan.payloads == [] and scan.valid_bytes == 0

    def test_commit_payload_round_trip(self, tmp_path):
        delta = Delta(txn_id=7, label="retune")
        delta.records.append(SetAttrRecord(iid=1, attr="weight", old_value=2, new_value=9))
        path = str(tmp_path / "wal.log")
        wal_with(path, [encode_commit_payload(3, delta)])
        kind, seq, decoded = decode_wal_payload(scan_wal(path).payloads[0])
        assert (kind, seq) == ("commit", 3)
        assert decoded == delta

    def test_undo_payload_round_trip(self):
        kind, seq, delta = decode_wal_payload(encode_undo_payload(5, Delta(txn_id=2)))
        assert (kind, seq, delta) == ("undo", 5, None)

    def test_unknown_payload_type_rejected(self):
        with pytest.raises(StorageError):
            decode_wal_payload({"type": "mystery", "seq": 1})

    def test_sync_counts_fsyncs(self, tmp_path):
        wal = wal_with(str(tmp_path / "wal.log"), PAYLOADS, sync=True)
        assert wal.syncs == len(PAYLOADS)
        wal = wal_with(str(tmp_path / "nosync.log"), PAYLOADS, sync=False)
        assert wal.syncs == 0

    def test_reset_empties_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=False)
        wal.append(PAYLOADS[0])
        wal.reset()
        wal.append(PAYLOADS[1])
        wal.close()
        assert scan_wal(path).payloads == [PAYLOADS[1]]


class TestTornTails:
    def test_cut_inside_payload_is_torn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        truncate_tail(path, 5)
        scan = scan_wal(path)
        assert scan.dropped == "torn"
        assert scan.payloads == PAYLOADS[:-1]

    def test_cut_inside_header_is_torn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        spans = wal_payload_spans(path)
        # Leave only 3 bytes of the final record's 8-byte header.
        truncate_tail(path, os.path.getsize(path) - (spans[-1][0] - 8) - 3)
        scan = scan_wal(path)
        assert scan.dropped == "torn"
        assert scan.payloads == PAYLOADS[:-1]

    def test_bit_flip_fails_crc(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        flip_record_bit(path, record=-1, byte=2, bit=4)
        scan = scan_wal(path)
        assert scan.dropped == "crc"
        assert scan.payloads == PAYLOADS[:-1]

    def test_non_json_payload_with_matching_crc_rejected(self, tmp_path):
        import zlib

        path = str(tmp_path / "wal.log")
        data = b"not json at all"
        with open(path, "wb") as fh:
            fh.write(struct.pack(">II", len(data), zlib.crc32(data)) + data)
        assert scan_wal(path).dropped == "crc"

    def test_repair_truncates_to_valid_prefix(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        truncate_tail(path, 5)
        scan = scan_wal(path)
        assert repair_wal(path, scan)
        assert os.path.getsize(path) == scan.valid_bytes
        healed = scan_wal(path)
        assert healed.clean and healed.payloads == PAYLOADS[:-1]

    def test_repair_of_clean_log_is_a_noop(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        size = os.path.getsize(path)
        assert not repair_wal(path, scan_wal(path))
        assert os.path.getsize(path) == size

    def test_appends_after_repair_scan_cleanly(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        truncate_tail(path, 5)
        repair_wal(path, scan_wal(path))
        wal = WriteAheadLog(path, sync=False)
        wal.append({"type": "undo", "seq": 9, "txn_id": 9})
        wal.close()
        scan = scan_wal(path)
        assert scan.clean
        assert [p["seq"] for p in scan.payloads] == [1, 2, 9]

    def test_payload_spans_address_each_record(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal_with(path, PAYLOADS)
        spans = wal_payload_spans(path)
        assert len(spans) == 3
        with open(path, "rb") as fh:
            buf = fh.read()
        for (start, length), payload in zip(spans, PAYLOADS):
            assert json.loads(buf[start : start + length]) == payload


class TestCheckpointFile:
    def _db(self):
        db = Database(sum_node_schema())
        build_chain(db, 2, weight=3)
        return db

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        write_checkpoint(self._db(), path, wal_seq=4)
        document = read_checkpoint(path)
        assert document["wal_seq"] == 4
        assert document["format"] == 1
        assert document["image"]["instances"]

    def test_missing_checkpoint_reads_none(self, tmp_path):
        assert read_checkpoint(str(tmp_path / "absent.json")) is None

    def test_unknown_format_rejected(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        with open(path, "w") as fh:
            json.dump({"format": 99, "wal_seq": 0, "image": {}}, fh)
        with pytest.raises(StorageError):
            read_checkpoint(path)

    def test_missing_fields_rejected(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        with open(path, "w") as fh:
            json.dump({"format": 1}, fh)
        with pytest.raises(StorageError):
            read_checkpoint(path)

    def test_install_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        write_checkpoint(self._db(), path, wal_seq=1)
        write_checkpoint(self._db(), path, wal_seq=2)
        assert read_checkpoint(path)["wal_seq"] == 2
        assert not os.path.exists(path + ".tmp")

    def test_checkpoint_refused_inside_transaction(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), sum_node_schema(), sync=False)
        db.begin("open-ended")
        try:
            with pytest.raises(TransactionError):
                db.checkpoint()
        finally:
            db.abort()
            db.close()
