"""Distributed-federation tests (Section 5 direction)."""

import pytest

from repro.core.database import Database
from repro.distributed import Federation, FederationError
from repro.env.milestones import MilestoneManager, milestone_schema
from repro.workloads import link, sum_node_schema


def two_sites():
    fed = Federation()
    a = Database(sum_node_schema(), pool_capacity=64)
    b = Database(sum_node_schema(), pool_capacity=64)
    fed.add_site("A", a)
    fed.add_site("B", b)
    return fed, a, b


class TestLinking:
    def test_cross_site_value_flows_after_sync(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=7)
        consumer = b.create("node", weight=1)
        fed.link("B", consumer, "inputs", "A", producer, "outputs")
        # Before sync the mirror carries the flow default (0).
        assert b.get_attr(consumer, "total") == 1
        report = fed.sync()
        assert report.messages_sent == 1
        assert b.get_attr(consumer, "total") == 8

    def test_same_site_link_rejected(self):
        fed, a, __ = two_sites()
        x = a.create("node")
        y = a.create("node")
        with pytest.raises(FederationError, match="same site"):
            fed.link("A", x, "inputs", "A", y, "outputs")

    def test_unknown_site_rejected(self):
        fed, a, __ = two_sites()
        x = a.create("node")
        with pytest.raises(FederationError, match="unknown site"):
            fed.link("C", x, "inputs", "A", x, "outputs")

    def test_mirror_shared_between_consumers(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=5)
        c1 = b.create("node")
        c2 = b.create("node")
        l1 = fed.link("B", c1, "inputs", "A", producer, "outputs")
        l2 = fed.link("B", c2, "inputs", "A", producer, "outputs")
        assert l1.mirror_iid == l2.mirror_iid
        fed.sync()
        assert b.get_attr(c1, "total") == 5
        assert b.get_attr(c2, "total") == 5

    def test_unlink_stops_flow(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=5)
        consumer = b.create("node")
        cross = fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        assert b.get_attr(consumer, "total") == 5
        fed.unlink(cross)
        assert b.get_attr(consumer, "total") == 0
        a.set_attr(producer, "weight", 50)
        fed.sync()  # idle mirror: nothing ships (see test_sync_bugs.py)
        assert b.get_attr(consumer, "total") == 0


class TestChangeOnlyTraffic:
    def test_quiescent_sync_ships_nothing(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=7)
        consumer = b.create("node")
        fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        report = fed.sync()
        assert report.quiescent
        assert report.values_checked == 1  # checked, not shipped

    def test_only_changed_values_shipped(self):
        fed, a, b = two_sites()
        producers = [a.create("node", weight=i) for i in range(5)]
        consumers = [b.create("node") for __ in range(5)]
        for producer, consumer in zip(producers, consumers):
            fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        a.set_attr(producers[2], "weight", 99)
        report = fed.sync()
        assert report.messages_sent == 1
        assert b.get_attr(consumers[2], "total") == 99

    def test_local_ripple_after_sync(self):
        """One shipped value drives a whole local derived chain."""
        fed, a, b = two_sites()
        producer = a.create("node", weight=3)
        entry = b.create("node")
        chain = [entry]
        for __ in range(4):
            nxt = b.create("node", weight=1)
            link(b, chain[-1], nxt)
            chain.append(nxt)
        fed.link("B", entry, "inputs", "A", producer, "outputs")
        fed.sync()
        assert b.get_attr(chain[-1], "total") == 7  # 3 + 4*1

    def test_undo_on_consumer_site_is_local(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=3)
        consumer = b.create("node")
        fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        assert b.get_attr(consumer, "total") == 3
        b.undo()  # undoes the sync's mirror write, locally
        assert b.get_attr(consumer, "total") == 0
        assert a.get_attr(producer, "weight") == 3  # producer untouched


class TestChainedSites:
    def test_three_site_pipeline(self):
        fed = Federation()
        dbs = {}
        for name in ("A", "B", "C"):
            dbs[name] = Database(sum_node_schema(), pool_capacity=64)
            fed.add_site(name, dbs[name])
        na = dbs["A"].create("node", weight=1)
        nb = dbs["B"].create("node", weight=2)
        nc = dbs["C"].create("node", weight=4)
        fed.link("B", nb, "inputs", "A", na, "outputs")
        fed.link("C", nc, "inputs", "B", nb, "outputs")
        passes = fed.sync_until_quiescent()
        assert passes >= 2  # the A->B->C chain needs two waves
        assert dbs["C"].get_attr(nc, "total") == 7

    def test_cross_site_cycle_detected(self):
        fed, a, b = two_sites()
        na = a.create("node", weight=1)
        nb = b.create("node", weight=1)
        fed.link("B", nb, "inputs", "A", na, "outputs")
        fed.link("A", na, "inputs", "B", nb, "outputs")
        with pytest.raises(FederationError, match="cycle"):
            fed.sync_until_quiescent(max_passes=8)


class TestDistributedMilestones:
    def test_plan_split_across_two_teams(self):
        """The Section 5 scenario: private databases, shared schedule."""
        fed = Federation()
        team_a = MilestoneManager(Database(milestone_schema(), pool_capacity=64))
        team_b = MilestoneManager(Database(milestone_schema(), pool_capacity=64))
        fed.add_site("team-a", team_a.db)
        fed.add_site("team-b", team_b.db)

        design = team_a.add_milestone("design", scheduled=10, work=8)
        team_a.add_milestone("a-impl", scheduled=20, work=5)
        team_a.depends("a-impl", "design")

        b_impl = team_b.add_milestone("b-impl", scheduled=25, work=6)
        # b-impl waits for team A's design milestone, across sites.
        fed.link("team-b", b_impl, "depends_on", "team-a", design, "consists_of")
        fed.sync_until_quiescent()
        assert team_b.expected("b-impl") == 14  # 8 (remote design) + 6

        team_a.slip("design", 10)  # team A slips privately
        assert team_b.expected("b-impl") == 14  # not yet shared
        fed.sync_until_quiescent()
        assert team_b.expected("b-impl") == 24
        assert team_b.is_late("b-impl") is False
        team_a.slip("design", 10)
        fed.sync_until_quiescent()
        assert team_b.is_late("b-impl") is True


class TestFederationErrors:
    def test_unlink_unknown_link_rejected(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=1)
        consumer = b.create("node")
        cross = fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.unlink(cross)
        with pytest.raises(FederationError, match="unknown cross-link"):
            fed.unlink(cross)

    def test_duplicate_site_rejected(self):
        fed, a, __ = two_sites()
        with pytest.raises(FederationError, match="already registered"):
            fed.add_site("A", a)

    def test_flow_disagreement_rejected(self):
        from repro.core.schema import (
            AttrKind, AttributeDef, End, FlowDecl, ObjectClass, PortDef,
            RelationshipType, Schema,
        )

        # A site whose "dep" relationship carries a *different* flow set.
        other = Schema()
        other.add_relationship_type(
            RelationshipType("dep", [FlowDecl("weird", "integer", End.PLUG)])
        )
        other.add_class(ObjectClass(
            "node",
            attributes=[AttributeDef("weight", "integer")],
            ports=[PortDef("inputs", "dep", End.SOCKET, multi=True)],
        ))
        odd_db = Database(other.freeze())
        fed, a, __ = two_sites()
        fed.add_site("odd", odd_db)
        consumer = odd_db.create("node")
        producer = a.create("node")
        with pytest.raises(FederationError, match="disagree"):
            fed.link("odd", consumer, "inputs", "A", producer, "outputs")

    def test_same_end_rejected(self):
        fed, a, b = two_sites()
        x = a.create("node")
        y = b.create("node")
        with pytest.raises(FederationError, match="same end"):
            fed.link("B", y, "inputs", "A", x, "inputs")

    def test_sync_skips_deleted_mirror(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=2)
        consumer = b.create("node")
        cross = fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        fed.unlink(cross)
        b.delete(cross.mirror_iid)
        report = fed.sync()  # must not crash on the gone mirror
        assert report.messages_sent == 0
