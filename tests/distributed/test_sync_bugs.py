"""Regression tests for the three federation-sync soundness holes.

Each of these failed against the pre-batching sync:

* a producer deleted on its own site made the next ``sync()`` raise
  ``UnknownInstanceError`` out of the pass;
* an ``unlink()``-ed mirror kept receiving (and counting) shipped values
  forever, since collection never checked for live links;
* deliveries were applied value-by-value outside any transaction, so a
  consumer constraint violation left the site half-updated.
"""

import pytest

from repro.core.database import Database
from repro.core.rules import Constraint, Local
from repro.distributed import Federation
from repro.workloads import sum_node_schema


def two_sites(consumer_schema=None):
    fed = Federation()
    a = Database(sum_node_schema(), pool_capacity=64)
    b = Database(consumer_schema or sum_node_schema(), pool_capacity=64)
    fed.add_site("A", a)
    fed.add_site("B", b)
    return fed, a, b


def capped_schema(limit=100):
    """The sum-node schema plus a ``total <= limit`` consumer constraint."""
    schema = sum_node_schema()
    schema.unfreeze()
    schema.extend_class("node").add_constraint(
        Constraint("cap", {"t": Local("total")}, lambda t: t <= limit)
    )
    return schema.freeze()


class TestDanglingProducer:
    def test_deleted_producer_is_recorded_not_raised(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=9)
        consumer = b.create("node")
        cross = fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        assert b.get_attr(consumer, "total") == 9

        a.delete(producer)  # site A acts privately; the link now dangles
        report = fed.sync()  # pre-fix: raised UnknownInstanceError here
        assert report.dangling_links == [cross]
        assert cross not in fed.links
        # The consumer keeps the last synced value (the mirror freezes).
        assert b.get_attr(consumer, "total") == 9
        assert fed.metrics().flatten()["federation.dangling_links_dropped"] == 1

    def test_dangling_link_is_dropped_once(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=1)
        consumer = b.create("node")
        fed.link("B", consumer, "inputs", "A", producer, "outputs")
        a.delete(producer)
        assert len(fed.sync().dangling_links) == 1
        report = fed.sync()
        assert report.dangling_links == [] and report.quiescent

    def test_healthy_links_still_sync_around_a_dangling_one(self):
        fed, a, b = two_sites()
        doomed = a.create("node", weight=3)
        healthy = a.create("node", weight=5)
        c1 = b.create("node")
        c2 = b.create("node")
        fed.link("B", c1, "inputs", "A", doomed, "outputs")
        fed.link("B", c2, "inputs", "A", healthy, "outputs")
        a.delete(doomed)
        report = fed.sync()  # one dangling link must not starve the other
        assert len(report.dangling_links) == 1
        assert b.get_attr(c2, "total") == 5


class TestUnlinkedMirrorShipsNothing:
    def test_idle_mirror_receives_no_values(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=5)
        consumer = b.create("node")
        cross = fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        fed.unlink(cross)

        a.set_attr(producer, "weight", 50)
        report = fed.sync()  # pre-fix: shipped into the idle mirror forever
        assert report.quiescent
        assert report.values_checked == 0
        assert report.messages_sent == 0
        # The mirror itself froze at the last synced value.
        assert b.get_attr(cross.mirror_iid, "v_total") == 5

    def test_unlink_does_not_inflate_traffic_counters(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=1)
        consumer = b.create("node")
        cross = fed.link("B", consumer, "inputs", "A", producer, "outputs")
        fed.sync()
        fed.unlink(cross)
        before = fed.total_messages
        for value in (10, 20, 30):
            a.set_attr(producer, "weight", value)
            fed.sync()
        assert fed.total_messages == before

    def test_other_consumer_keeps_flowing_after_one_unlinks(self):
        fed, a, b = two_sites()
        producer = a.create("node", weight=2)
        c1 = b.create("node")
        c2 = b.create("node")
        l1 = fed.link("B", c1, "inputs", "A", producer, "outputs")
        fed.link("B", c2, "inputs", "A", producer, "outputs")
        fed.sync()
        fed.unlink(l1)
        a.set_attr(producer, "weight", 8)
        fed.sync()  # the shared mirror still has one live link
        assert b.get_attr(c2, "total") == 8
        assert b.get_attr(c1, "total") == 0  # disconnected consumer


class TestAtomicDelivery:
    def build(self):
        """Two independent producer->consumer pairs sharing one channel."""
        fed, a, b = two_sites(consumer_schema=capped_schema(limit=100))
        p1 = a.create("node", weight=5)
        p2 = a.create("node", weight=5)
        c1 = b.create("node")
        c2 = b.create("node")
        fed.link("B", c1, "inputs", "A", p1, "outputs")
        fed.link("B", c2, "inputs", "A", p2, "outputs")
        fed.sync()
        assert b.get_attr(c1, "total") == 5
        assert b.get_attr(c2, "total") == 5
        return fed, a, b, p1, p2, c1, c2

    def test_violating_batch_rolls_back_wholly(self):
        fed, a, b, p1, p2, c1, c2 = self.build()
        a.set_attr(p1, "weight", 7)  # fine on its own
        a.set_attr(p2, "weight", 500)  # trips the consumer's cap
        report = fed.sync()  # one A>B batch carrying both changes
        assert report.batches_failed == 1
        assert report.messages_sent == 0
        (channel, seq, reason) = report.failed_deliveries[0]
        assert channel == "A>B" and "cap" in reason
        # Pre-fix: c1 was updated and c2 was not -- a half-applied
        # delivery.  Atomic delivery leaves BOTH at their old values.
        assert b.get_attr(c1, "total") == 5
        assert b.get_attr(c2, "total") == 5

    def test_failed_batch_is_retried_until_it_commits(self):
        fed, a, b, p1, p2, c1, c2 = self.build()
        a.set_attr(p1, "weight", 7)
        a.set_attr(p2, "weight", 500)
        assert fed.sync().batches_failed == 1
        assert fed.sync().batches_failed == 1  # still queued, still failing
        # The consumer resolves the violation locally (raises its room
        # under the cap is impossible here, so lower its own demand --
        # delete the capped consumer); the queued batch then lands.
        b.delete(c2)
        report = fed.sync()
        assert report.batches_failed == 0
        assert report.batches_applied == 1
        assert b.get_attr(c1, "total") == 7
        assert fed.metrics().flatten()["federation.outbox_pending"] == 0

    def test_blocked_channel_does_not_recollect_duplicates(self):
        fed, a, b, p1, p2, c1, c2 = self.build()
        a.set_attr(p2, "weight", 500)
        assert fed.sync().batches_failed == 1
        a.set_attr(p1, "weight", 9)  # changes while the channel is blocked
        report = fed.sync()
        assert report.batches_shipped == 0  # blocked: no duplicate diffing
        b.delete(c2)
        fed.sync_until_quiescent()
        assert b.get_attr(c1, "total") == 9  # the late change still arrives

    def test_consumer_state_is_untouched_by_a_failed_delivery(self):
        from repro.persistence.faults import database_fingerprint

        fed, a, b, p1, p2, c1, c2 = self.build()
        before = database_fingerprint(b)
        a.set_attr(p2, "weight", 500)
        assert fed.sync().batches_failed == 1
        # Values, connections, AND history: the rollback left no trace.
        assert database_fingerprint(b) == before
