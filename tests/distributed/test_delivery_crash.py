"""Crash matrix for durable federation delivery (``fed_send``/``fed_ack``).

Two durable sites, one cross-site link.  After an initial synced epoch,
the producer site is reopened with a fault injector and one update is
driven through ``sync()``; the producer's WAL appends are then exactly

1. the ``set_attr`` commit,
2. the ``fed_send`` (batch enters the durable outbox),
3. the ``fed_ack`` (consumer committed, batch leaves the outbox),

so crashing around appends 2 and 3 hits every interesting window:

* **before send** -- the update is durable but the shipment is not; a
  rebuilt federation re-collects the diff.  No value is lost.
* **after send** -- the outbox survives; the rebuilt federation
  re-delivers the queued batch.  No value is lost.
* **before ack** -- the consumer durably applied (its ``fed_recv``
  high-water mark survives) but the producer still holds the batch; the
  redelivery is deduplicated, not applied twice.

In every case the recovered federation converges to the same state as a
never-crashed run: exactly-once application per channel.
"""

import pytest

from repro.core.database import Database
from repro.distributed import Federation, federated_schema
from repro.persistence.faults import CrashPoint, crash_after, crash_before
from repro.workloads import sum_node_schema


def open_site(path, injector=None):
    return Database.open(
        str(path),
        federated_schema(sum_node_schema()),
        sync=False,
        injector=injector,
    )


def build_federation(a, b):
    fed = Federation()
    fed.add_site("A", a)
    fed.add_site("B", b)
    return fed


def seed_epoch(tmp_path):
    """Durable two-site federation, linked and synced once, then closed."""
    a = open_site(tmp_path / "A")
    b = open_site(tmp_path / "B")
    fed = build_federation(a, b)
    producer = a.create("node", weight=7)
    consumer = b.create("node")
    fed.link("B", consumer, "inputs", "A", producer, "outputs")
    fed.sync()
    assert b.get_attr(consumer, "total") == 7
    a.close()
    b.close()
    return producer, consumer


def crashed_update(tmp_path, producer, injector):
    """Reopen with the injector on A, update, and sync into the crash."""
    a = open_site(tmp_path / "A", injector=injector)
    b = open_site(tmp_path / "B")
    fed = build_federation(a, b)
    a.set_attr(producer, "weight", 50)  # producer append #1
    with pytest.raises(CrashPoint):
        fed.sync()  # appends #2 (fed_send) and #3 (fed_ack)
    # The process is "dead"; the federation object dies with it.
    b.close()


def recover(tmp_path):
    a = open_site(tmp_path / "A")
    b = open_site(tmp_path / "B")
    return build_federation(a, b), a, b


class TestDeliveryCrashMatrix:
    def test_crash_before_send_loses_nothing(self, tmp_path):
        producer, consumer = seed_epoch(tmp_path)
        crashed_update(tmp_path, producer, crash_before(2))
        fed, a, b = recover(tmp_path)
        # The shipment never became durable: the rebuilt outbox is empty
        # and the mirror still shows the old epoch.
        assert fed.metrics().flatten()["federation.outbox_pending"] == 0
        assert b.get_attr(consumer, "total") == 7
        # But the update itself IS durable, so a fresh pass re-collects it.
        report = fed.sync()
        assert report.batches_shipped == 1
        assert report.batches_deduped == 0
        assert b.get_attr(consumer, "total") == 50

    def test_crash_after_send_redelivers_the_batch(self, tmp_path):
        producer, consumer = seed_epoch(tmp_path)
        crashed_update(tmp_path, producer, crash_after(2))
        fed, a, b = recover(tmp_path)
        # The batch survived in the durable outbox, undelivered.
        assert fed.metrics().flatten()["federation.outbox_pending"] == 1
        assert b.get_attr(consumer, "total") == 7
        report = fed.sync()
        assert report.batches_applied == 1
        assert report.batches_shipped == 0  # delivered from the outbox,
        assert report.batches_deduped == 0  # not re-collected
        assert b.get_attr(consumer, "total") == 50

    def test_crash_before_ack_dedups_the_redelivery(self, tmp_path):
        producer, consumer = seed_epoch(tmp_path)
        crashed_update(tmp_path, producer, crash_before(3))
        fed, a, b = recover(tmp_path)
        # The consumer durably applied before the crash...
        assert b.get_attr(consumer, "total") == 50
        # ...but the producer never heard the ack, so the batch is still
        # in its outbox.  The redelivery must be dropped, not re-applied.
        assert fed.metrics().flatten()["federation.outbox_pending"] == 1
        report = fed.sync()
        assert report.batches_deduped == 1
        assert report.batches_applied == 0
        assert report.messages_sent == 0
        assert b.get_attr(consumer, "total") == 50
        assert fed.metrics().flatten()["federation.outbox_pending"] == 0

    @pytest.mark.parametrize("injector", [crash_before(2), crash_after(2), crash_before(3)])
    def test_every_window_converges_to_the_clean_outcome(self, tmp_path, injector):
        producer, consumer = seed_epoch(tmp_path)
        crashed_update(tmp_path, producer, injector)
        fed, a, b = recover(tmp_path)
        fed.sync_until_quiescent()
        assert a.get_attr(producer, "weight") == 50
        assert b.get_attr(consumer, "total") == 50
        assert fed.metrics().flatten()["federation.outbox_pending"] == 0
        # And the channel keeps working after the incident.
        a.set_attr(producer, "weight", 60)
        fed.sync_until_quiescent()
        assert b.get_attr(consumer, "total") == 60

    def test_recovered_state_survives_a_second_reopen(self, tmp_path):
        """Post-recovery sync work is itself durable (acks are journalled)."""
        producer, consumer = seed_epoch(tmp_path)
        crashed_update(tmp_path, producer, crash_before(3))
        fed, a, b = recover(tmp_path)
        fed.sync_until_quiescent()
        a.close()
        b.close()
        fed2, a2, b2 = recover(tmp_path)
        assert fed2.metrics().flatten()["federation.outbox_pending"] == 0
        assert b2.get_attr(consumer, "total") == 50
        assert fed2.sync().quiescent
