"""Property: an N-site federation computes what one site would.

Hypothesis generates small weighted DAGs with every node assigned to one
of three sites.  The same graph is built twice -- once in a single
database with ordinary connections, once scattered across a federation
where every cross-site edge becomes a mirror link -- and after
``sync_until_quiescent`` every node's derived total must agree, before
and after a round of weight updates.  The property runs in both compiled
and ``REPRO_NO_COMPILE=1`` engines (the flag is read at database
construction, so it wraps the whole build-and-run).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import COMPILE_DISABLED_ENV
from repro.core.database import Database
from repro.distributed import Federation
from repro.workloads import sum_node_schema

N_SITES = 3


@st.composite
def dag_spec(draw):
    n = draw(st.integers(min_value=3, max_value=7))
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=20), min_size=n, max_size=n
        )
    )
    sites = draw(
        st.lists(
            st.integers(min_value=0, max_value=N_SITES - 1),
            min_size=n,
            max_size=n,
        )
    )
    # Edges only run low index -> high index, so the graph is acyclic and
    # the federation never needs its cycle guard.
    edges = [
        (i, j)
        for j in range(1, n)
        for i in range(j)
        if draw(st.booleans())
    ]
    updates = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=40),
            ),
            max_size=3,
        )
    )
    return n, weights, sites, edges, updates


def single_site(spec):
    n, weights, __, edges, __ = spec
    db = Database(sum_node_schema(), pool_capacity=128)
    ids = [db.create("node", weight=w) for w in weights]
    for i, j in edges:
        db.connect(ids[j], "inputs", ids[i], "outputs")
    return db, ids


def federated(spec):
    n, weights, sites, edges, __ = spec
    fed = Federation()
    names = [f"S{k}" for k in range(N_SITES)]
    for name in names:
        fed.add_site(name, Database(sum_node_schema(), pool_capacity=128))
    nodes = [
        (names[site], fed.site(names[site]).create("node", weight=w))
        for site, w in zip(sites, weights)
    ]
    for i, j in edges:
        p_site, p_iid = nodes[i]
        c_site, c_iid = nodes[j]
        if p_site == c_site:
            fed.site(c_site).connect(c_iid, "inputs", p_iid, "outputs")
        else:
            fed.link(c_site, c_iid, "inputs", p_site, p_iid, "outputs")
    return fed, nodes


def totals_single(db, ids):
    return [db.get_attr(iid, "total") for iid in ids]


def totals_federated(fed, nodes):
    return [fed.site(site).get_attr(iid, "total") for site, iid in nodes]


def run_property(spec, no_compile: bool):
    if no_compile:
        os.environ[COMPILE_DISABLED_ENV] = "1"
    try:
        db, ids = single_site(spec)
        fed, nodes = federated(spec)
        fed.sync_until_quiescent(max_passes=64)
        assert totals_federated(fed, nodes) == totals_single(db, ids)

        for slot, value in spec[4]:
            db.set_attr(ids[slot], "weight", value)
            site, iid = nodes[slot]
            fed.site(site).set_attr(iid, "weight", value)
        fed.sync_until_quiescent(max_passes=64)
        assert totals_federated(fed, nodes) == totals_single(db, ids)
    finally:
        os.environ.pop(COMPILE_DISABLED_ENV, None)


@pytest.mark.parametrize("no_compile", [False, True], ids=["compiled", "interpreted"])
@settings(max_examples=25, deadline=None)
@given(spec=dag_spec())
def test_federation_matches_single_site(no_compile, spec):
    run_property(spec, no_compile)


def test_known_shape_matches_in_both_modes():
    """A deterministic anchor case, independent of hypothesis shrinking."""
    spec = (
        5,
        [1, 2, 3, 4, 5],
        [0, 1, 2, 0, 1],
        [(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)],
        [(0, 9), (3, 0)],
    )
    for no_compile in (False, True):
        run_property(spec, no_compile)
