"""docs/DISTRIBUTED.md must document exactly the live ``federation.*``
metric namespace -- held to :meth:`Federation.metrics` the same way
docs/OBSERVABILITY.md is held to ``Database.metrics()``."""

from __future__ import annotations

import pathlib
import re

from repro.distributed import Federation

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "DISTRIBUTED.md"
METRIC_BULLET = re.compile(r"^- `(federation\.[a-z_]+)`", re.MULTILINE)
FED_EVENTS = ("fed_batch_shipped", "fed_batch_applied", "fed_migration")


def documented_metrics() -> list[str]:
    return METRIC_BULLET.findall(DOC.read_text())


def test_every_federation_metric_is_documented_and_vice_versa():
    live = set(Federation().metrics().flatten())
    documented = set(documented_metrics())
    assert documented == live, (
        "docs/DISTRIBUTED.md and Federation.metrics() disagree: "
        f"undocumented={sorted(live - documented)} "
        f"stale={sorted(documented - live)}"
    )


def test_no_metric_is_documented_twice():
    documented = documented_metrics()
    assert len(documented) == len(set(documented))


def test_federation_events_are_referenced():
    text = DOC.read_text()
    for name in FED_EVENTS:
        assert f"`{name}`" in text, (
            f"event {name!r} is not mentioned in docs/DISTRIBUTED.md"
        )


def test_federation_events_live_in_the_global_registry():
    # The full field-level documentation lives in OBSERVABILITY.md and is
    # enforced by tests/obs/test_docs.py; here we only pin membership.
    from repro.obs.events import EVENT_TYPES

    for name in FED_EVENTS:
        assert name in EVENT_TYPES
