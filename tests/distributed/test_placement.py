"""Placement layer: crossing graph, shard assignment, migration, rebalance."""

import pytest

from repro.core.database import Database
from repro.distributed import Federation, FederationError, Placement
from repro.errors import StorageError
from repro.storage.clustering import assign_groups_to_shards
from repro.workloads import link, sum_node_schema


def sites(*names):
    fed = Federation()
    dbs = {}
    for name in names:
        dbs[name] = Database(sum_node_schema(), pool_capacity=256)
        fed.add_site(name, dbs[name])
    return fed, dbs


class TestAssignGroupsToShards:
    def test_empty_shards_rejected(self):
        with pytest.raises(StorageError):
            assign_groups_to_shards([["x"]], {"x": 1}, [])

    def test_affinity_preferred_under_cap(self):
        groups = [["a"], ["b"]]
        sizes = {"a": 1, "b": 1}
        out = assign_groups_to_shards(
            groups, sizes, ["S0", "S1"], affinity={0: "S1", 1: "S0"}
        )
        assert out == {0: "S1", 1: "S0"}

    def test_overflow_spills_to_least_loaded(self):
        # Both groups want S0, but together they exceed the slack cap, so
        # the second lands on the emptier shard instead.
        groups = [["a", "b"], ["c", "d"]]
        sizes = {"a": 1, "b": 1, "c": 1, "d": 1}
        out = assign_groups_to_shards(
            groups, sizes, ["S0", "S1"], affinity={0: "S0", 1: "S0"}
        )
        assert sorted(out.values()) == ["S0", "S1"]

    def test_biggest_groups_place_first(self):
        groups = [["a"], ["b", "c", "d"]]
        sizes = {"a": 1, "b": 1, "c": 1, "d": 1}
        out = assign_groups_to_shards(groups, sizes, ["S0", "S1"])
        assert out[1] == "S0"  # the big group took the first shard
        assert out[0] == "S1"


class TestCrossingGraph:
    def test_mirrors_are_invisible(self):
        fed, dbs = sites("A", "B")
        p = dbs["A"].create("node", weight=1)
        c = dbs["B"].create("node")
        fed.link("B", c, "inputs", "A", p, "outputs")
        sizes, edges, usage = Placement(fed).crossing_graph()
        assert set(sizes) == {("A", p), ("B", c)}
        # The cross edge is indexed from both ends, through the mirror.
        assert ("A", p) in dict(edges[("B", c)]).values()
        assert ("B", c) in dict(edges[("A", p)]).values()

    def test_link_traffic_weights_the_edge(self):
        fed, dbs = sites("A", "B")
        p = dbs["A"].create("node", weight=1)
        c = dbs["B"].create("node")
        fed.link("B", c, "inputs", "A", p, "outputs")
        fed.sync()
        for value in (5, 6, 7):
            dbs["A"].set_attr(p, "weight", value)
            fed.sync()
        __, edges, usage = Placement(fed).crossing_graph()
        # 1 baseline + 4 delivered values.
        assert usage.crossing_count(("B", c), "inputs") == 5

    def test_cross_weight_zero_when_colocated(self):
        fed, dbs = sites("A", "B")
        x = dbs["A"].create("node", weight=1)
        y = dbs["A"].create("node")
        link(dbs["A"], x, y)
        placement = Placement(fed)
        sizes, edges, usage = placement.crossing_graph()
        assert placement.cross_weight(edges, usage, {n: "A" for n in sizes}) == 0
        split = {("A", x): "A", ("A", y): "B"}
        assert placement.cross_weight(edges, usage, split) > 0


class TestMigration:
    def test_migrate_collapses_link_into_local_connection(self):
        fed, dbs = sites("A", "B")
        p = dbs["A"].create("node", weight=7)
        c = dbs["B"].create("node")
        fed.link("B", c, "inputs", "A", p, "outputs")
        fed.sync()
        new = fed.migrate_instance("A", p, "B")
        assert not dbs["A"].exists(p)
        assert fed.links == []  # cross edge became a plain connection
        assert dbs["B"].get_attr(c, "total") == 7
        assert fed.gc_mirrors() == 1  # the orphaned mirror is reclaimed
        dbs["B"].set_attr(new, "weight", 9)
        assert dbs["B"].get_attr(c, "total") == 9  # no sync needed anymore

    def test_migrate_splits_local_connection_into_link(self):
        fed, dbs = sites("A", "B")
        up = dbs["A"].create("node", weight=3)
        down = dbs["A"].create("node", weight=1)
        link(dbs["A"], up, down)
        assert dbs["A"].get_attr(down, "total") == 4
        new = fed.migrate_instance("A", down, "B")
        assert len(fed.links) == 1  # the left-behind edge went cross-site
        fed.sync_until_quiescent()
        assert dbs["B"].get_attr(new, "total") == 4
        dbs["A"].set_attr(up, "weight", 10)
        fed.sync_until_quiescent()
        assert dbs["B"].get_attr(new, "total") == 11

    def test_migrating_a_mirror_is_rejected(self):
        fed, dbs = sites("A", "B")
        p = dbs["A"].create("node", weight=1)
        c = dbs["B"].create("node")
        cross = fed.link("B", c, "inputs", "A", p, "outputs")
        with pytest.raises(FederationError, match="not migrated"):
            fed.migrate_instance("B", cross.mirror_iid, "A")

    def test_migrate_preserves_intrinsics(self):
        fed, dbs = sites("A", "B")
        p = dbs["A"].create("node", weight=42)
        new = fed.migrate_instance("A", p, "B")
        assert dbs["B"].get_attr(new, "weight") == 42
        assert fed.metrics().flatten()["federation.migrations"] == 1


class TestRebalance:
    def scattered_chain(self, fed, dbs, names, length=4):
        chain = []
        for i in range(length):
            site = names[i % len(names)]
            chain.append((site, dbs[site].create("node", weight=1 + i)))
        for (up_site, up), (down_site, down) in zip(chain, chain[1:]):
            fed.link(down_site, down, "inputs", up_site, up, "outputs")
        return chain

    def test_converged_layout_plans_no_moves(self):
        fed, dbs = sites("A", "B")
        for name in ("A", "B"):
            ids = [dbs[name].create("node", weight=1) for __ in range(4)]
            for up, down in zip(ids, ids[1:]):
                link(dbs[name], up, down)
        plan = Placement(fed).plan()
        assert plan.moves == []
        assert plan.cross_weight_before == plan.cross_weight_after == 0

    def test_rebalance_reduces_cross_weight_and_keeps_values(self):
        fed, dbs = sites("A", "B", "C")
        names = ["A", "B", "C"]
        chains = [self.scattered_chain(fed, dbs, names) for __ in range(3)]
        fed.sync_until_quiescent(max_passes=32)
        tails = []
        for chain in chains:
            site, iid = chain[-1]
            tails.append(fed.site(site).get_attr(iid, "total"))
        plan = Placement(fed).rebalance()
        assert plan.executed  # something actually moved
        assert plan.cross_weight_after < plan.cross_weight_before
        fed.sync_until_quiescent(max_passes=32)
        for chain, expected in zip(chains, tails):
            site, iid = plan.relocated.get(chain[-1], chain[-1])
            assert fed.site(site).get_attr(iid, "total") == expected

    def test_rebalance_is_idempotent_once_a_neighborhood_fits(self):
        # With a group capacity covering the whole chain, the first
        # rebalance co-locates it entirely; the second finds nothing to do.
        fed, dbs = sites("A", "B")
        names = ["A", "B"]
        self.scattered_chain(fed, dbs, names)
        fed.sync_until_quiescent(max_passes=32)
        placement = Placement(fed, group_capacity=4)
        first = placement.rebalance()
        assert first.cross_weight_after == 0
        fed.sync_until_quiescent(max_passes=32)
        again = placement.plan()
        assert again.moves == []  # the second pass finds nothing to do
        assert again.cross_weight_before == 0

    def test_empty_federation_rejected(self):
        with pytest.raises(FederationError, match="empty federation"):
            Placement(Federation()).plan()
