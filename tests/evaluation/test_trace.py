"""Wave-tracer tests."""

from repro.core.database import Database
from repro.evaluation.trace import WaveTracer
from repro.workloads import build_chain, sum_node_schema


def fresh_db():
    return Database(sum_node_schema(), pool_capacity=256)


class TestTracing:
    def test_records_marks_and_evaluations(self):
        db = fresh_db()
        nodes = build_chain(db, 4)
        db.get_attr(nodes[-1], "total")
        with WaveTracer(db) as trace:
            db.set_attr(nodes[0], "weight", 9)
            db.get_attr(nodes[-1], "total")
        assert (nodes[0], "weight") in trace.seeds
        assert (nodes[-1], "total") in [s for s in trace.marked]
        assert (nodes[-1], "total") in trace.evaluated_slots()
        assert trace.value_of((nodes[-1], "total")) == 12

    def test_behaviour_unchanged_after_exit(self):
        db = fresh_db()
        nodes = build_chain(db, 3)
        with WaveTracer(db):
            db.set_attr(nodes[0], "weight", 5)
        # After the tracer detaches, everything still works and nothing
        # further is recorded.
        db.set_attr(nodes[0], "weight", 7)
        assert db.get_attr(nodes[-1], "total") == 9

    def test_marks_within_could_change_bound(self):
        db = fresh_db()
        nodes = build_chain(db, 10)
        db.get_attr(nodes[-1], "total")
        tracer = WaveTracer(db)
        with tracer as trace:
            db.set_attr(nodes[3], "weight", 2)
        nodes_bound, edges_bound = tracer.could_change_bound()
        assert len(trace.marked) <= nodes_bound

    def test_disk_counters_captured(self):
        db = Database(sum_node_schema(), block_capacity=256, pool_capacity=2)
        nodes = build_chain(db, 30)
        db.storage.buffer.clear()
        with WaveTracer(db) as trace:
            db.get_attr(nodes[-1], "total")
        assert trace.disk_reads > 0

    def test_summary_renders(self):
        db = fresh_db()
        nodes = build_chain(db, 2)
        with WaveTracer(db) as trace:
            db.set_attr(nodes[0], "weight", 3)
            db.get_attr(nodes[-1], "total")
        text = trace.summary()
        assert "seed" in text and "marked" in text and "evaluated" in text

    def test_no_activity_trace_empty(self):
        db = fresh_db()
        with WaveTracer(db) as trace:
            pass
        assert trace.marked == [] and trace.evaluated == []
