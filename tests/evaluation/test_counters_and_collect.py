"""Counters arithmetic and the collect-chunk path of the engine."""

from repro.core.database import Database
from repro.evaluation.counters import EvalCounters
from repro.workloads import link, sum_node_schema


class TestCounters:
    def test_snapshot_is_independent(self):
        counters = EvalCounters(rule_evaluations=3)
        snap = counters.snapshot()
        counters.rule_evaluations = 10
        assert snap.rule_evaluations == 3

    def test_delta_since(self):
        counters = EvalCounters()
        snap = counters.snapshot()
        counters.rule_evaluations += 4
        counters.slots_marked += 2
        delta = counters.delta_since(snap)
        assert delta.rule_evaluations == 4
        assert delta.slots_marked == 2
        assert delta.demands == 0

    def test_reset(self):
        counters = EvalCounters(rule_evaluations=5, demands=2)
        counters.reset()
        assert counters.rule_evaluations == 0
        assert counters.demands == 0


class TestCollectChunks:
    """Clean values on non-resident blocks are fetched by scheduled
    collect chunks, so value gathering is subject to I/O-aware ordering."""

    def build_gather(self, policy="greedy"):
        db = Database(
            sum_node_schema(),
            block_capacity=2048,
            pool_capacity=2,
            policy=policy,
        )
        producers = [db.create("node", weight=i + 1) for i in range(40)]
        hub = db.create("node")
        for producer in producers:
            link(db, producer, hub)
        for producer in producers:
            # Warm both the totals and the transmitted values the hub reads.
            db.get_attr(producer, "total")
            db.get_transmitted(producer, "outputs", "total")
        return db, hub, producers

    def test_gather_computes_correct_sum(self):
        db, hub, producers = self.build_gather()
        assert db.get_attr(hub, "total") == sum(range(1, 41))

    def test_gather_collects_without_reevaluating_producers(self):
        db, hub, producers = self.build_gather()
        before = db.engine.counters.snapshot()
        db.get_attr(hub, "total")
        delta = db.engine.counters.delta_since(before)
        # Only the hub's own slot evaluates; producers are merely collected.
        assert delta.rule_evaluations == 1

    def test_collect_falls_back_to_request_when_invalidated(self):
        # A producer invalidated after the hub was marked still evaluates
        # correctly within the same demand.
        db, hub, producers = self.build_gather()
        db.set_attr(producers[0], "weight", 100)
        assert db.get_attr(hub, "total") == sum(range(1, 41)) + 99

    def test_policies_agree_on_gather(self):
        values = set()
        for policy in ("greedy", "fifo", "lifo"):
            db, hub, __ = self.build_gather(policy)
            values.add(db.get_attr(hub, "total"))
        assert len(values) == 1

    def test_greedy_gather_reads_fewer_blocks_than_fifo(self):
        reads = {}
        for policy in ("greedy", "fifo"):
            db, hub, producers = self.build_gather(policy)
            # Interleave the hub's connection order across blocks by
            # reconnecting in a shuffled order.
            for producer in producers:
                db.disconnect(hub, "inputs", producer, "outputs")
            blocks = {}
            for producer in producers:
                blocks.setdefault(db.storage.block_of(producer), []).append(producer)
            groups = list(blocks.values())
            width = max(len(g) for g in groups)
            for i in range(width):
                for group in groups:
                    if i < len(group):
                        db.connect(hub, "inputs", group[i], "outputs")
            db.engine.invalidate_derived([(hub, "total")])
            db.storage.buffer.clear()
            before = db.storage.disk.stats.snapshot()
            db.get_attr(hub, "total")
            reads[policy] = db.storage.disk.stats.delta_since(before).reads
        assert reads["greedy"] <= reads["fifo"]
