"""The paper's optimality claims (experiments E1/E2/E3 invariants).

Section 2.2: "the attribute evaluation technique used in the Cactis system
will not evaluate any attribute that is not actually needed, and will not
evaluate any given attribute more than once."
"""

import pytest

from repro.core.database import Database
from repro.graph.depgraph import could_change
from repro.workloads import (
    build_chain,
    build_diamond_ladder,
    build_fan,
    sum_node_schema,
)


def fresh_db() -> Database:
    return Database(sum_node_schema(), pool_capacity=256)


class TestEvaluateAtMostOnce:
    def test_diamond_ladder_single_evaluation_per_slot(self):
        """On a 2^d-path ladder, each slot evaluates exactly once per wave."""
        db = fresh_db()
        ladder = build_diamond_ladder(db, depth=8)
        db.get_attr(ladder["bottom"], "total")
        before = db.engine.counters.snapshot()
        db.set_attr(ladder["top"], "weight", 42)
        db.get_attr(ladder["bottom"], "total")
        delta = db.engine.counters.delta_since(before)
        n_slots = 2 * len(ladder["all"])  # total + transmitted, per node
        assert delta.rule_evaluations <= n_slots
        # The work is linear in the region, nowhere near the 2^8 paths.
        assert delta.rule_evaluations < 2**8

    def test_marks_bounded_by_could_change(self):
        db = fresh_db()
        ladder = build_diamond_ladder(db, depth=6)
        db.get_attr(ladder["bottom"], "total")
        seed = (ladder["top"], "weight")
        region, edges = could_change(db.depgraph, [seed])
        before = db.engine.counters.snapshot()
        db.set_attr(ladder["top"], "weight", 9)
        delta = db.engine.counters.delta_since(before)
        assert delta.slots_marked <= len(region)
        assert delta.mark_edge_visits <= edges + len(region)

    def test_evaluations_bounded_by_marks_plus_unseen(self):
        """A demand evaluates only marked or never-computed slots."""
        db = fresh_db()
        nodes = build_chain(db, 50)
        db.get_attr(nodes[-1], "total")  # everything computed once
        before = db.engine.counters.snapshot()
        db.set_attr(nodes[25], "weight", 7)
        db.get_attr(nodes[-1], "total")
        delta = db.engine.counters.delta_since(before)
        # Only the 24 downstream nodes (x2 slots each) can recompute.
        assert delta.rule_evaluations <= 2 * 24 + 2


class TestRepeatedUpdateCutShort:
    """E2: "if an attribute A were assigned 2 different values in a row
    before updating the system, the second assignment would only update A
    and not visit any other attributes and hence incur only O(1) overhead."
    """

    def test_second_assignment_marks_nothing(self):
        db = fresh_db()
        nodes = build_chain(db, 200)
        db.get_attr(nodes[-1], "total")
        db.set_attr(nodes[0], "weight", 5)  # marks the whole chain
        before = db.engine.counters.snapshot()
        db.set_attr(nodes[0], "weight", 6)  # everything already marked
        delta = db.engine.counters.delta_since(before)
        assert delta.slots_marked == 0
        assert delta.rule_evaluations == 0
        # Only the out-edges of the changed slot are visited.
        assert delta.mark_edge_visits <= 2

    def test_second_assignment_edge_visits_constant_in_chain_length(self):
        visits = {}
        for length in (10, 1000):
            db = fresh_db()
            nodes = build_chain(db, length)
            db.get_attr(nodes[-1], "total")
            db.set_attr(nodes[0], "weight", 5)
            before = db.engine.counters.snapshot()
            db.set_attr(nodes[0], "weight", 6)
            visits[length] = db.engine.counters.delta_since(
                before
            ).mark_edge_visits
        assert visits[10] == visits[1000]


class TestLaziness:
    """E3: unimportant attributes stay out of date until demanded."""

    def test_no_evaluation_without_demand(self):
        db = fresh_db()
        fan = build_fan(db, width=100)
        for consumer in fan["consumers"]:
            db.get_attr(consumer, "total")  # everything clean
        before = db.engine.counters.snapshot()
        db.set_attr(fan["hub"], "weight", 3)
        delta = db.engine.counters.delta_since(before)
        # Marking touched the consumers, but nothing was evaluated.
        assert delta.rule_evaluations == 0
        assert delta.slots_marked >= 100

    def test_demand_evaluates_only_that_consumer(self):
        db = fresh_db()
        fan = build_fan(db, width=100)
        for consumer in fan["consumers"]:
            db.get_attr(consumer, "total")
        db.set_attr(fan["hub"], "weight", 3)
        before = db.engine.counters.snapshot()
        db.get_attr(fan["consumers"][0], "total")
        delta = db.engine.counters.delta_since(before)
        # hub.total, hub's transmit, and the one consumer: three slots.
        assert delta.rule_evaluations <= 3

    def test_remaining_consumers_still_marked(self):
        db = fresh_db()
        fan = build_fan(db, width=10)
        for consumer in fan["consumers"]:
            db.get_attr(consumer, "total")
        db.set_attr(fan["hub"], "weight", 3)
        db.get_attr(fan["consumers"][0], "total")
        for other in fan["consumers"][1:]:
            assert db.engine.is_out_of_date((other, "total"))

    def test_watched_attribute_evaluated_eagerly(self):
        db = fresh_db()
        fan = build_fan(db, width=10)
        watched = fan["consumers"][0]
        db.watch(watched, "total")
        db.set_attr(fan["hub"], "weight", 3)
        # The standing demand made the slot important: it is already clean.
        assert not db.engine.is_out_of_date((watched, "total"))
        assert db.engine.is_out_of_date((fan["consumers"][1], "total"))

    def test_unwatch_restores_laziness(self):
        db = fresh_db()
        fan = build_fan(db, width=4)
        watched = fan["consumers"][0]
        db.watch(watched, "total")
        db.unwatch(watched, "total")
        db.set_attr(fan["hub"], "weight", 3)
        assert db.engine.is_out_of_date((watched, "total"))


class TestCorrectnessUnderLaziness:
    def test_values_always_consistent_when_read(self):
        db = fresh_db()
        nodes = build_chain(db, 20)
        db.set_attr(nodes[3], "weight", 10)
        db.set_attr(nodes[7], "weight", 20)
        db.set_attr(nodes[0], "weight", 30)
        expected = 30 + 1 + 1 + 10 + 1 + 1 + 1 + 20 + sum([1] * 12)
        assert db.get_attr(nodes[-1], "total") == expected

    def test_interleaved_sets_and_gets(self):
        db = fresh_db()
        nodes = build_chain(db, 10)
        for i, node in enumerate(nodes):
            db.set_attr(node, "weight", i)
            assert db.get_attr(nodes[-1], "total") == sum(range(i + 1)) + (
                9 - i
            )
