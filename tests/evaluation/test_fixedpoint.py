"""Unit tests for the circular (fixed-point) attribute system."""

import pytest

from repro.errors import SchemaError
from repro.evaluation.fixedpoint import (
    CircularAttributeSystem,
    FixedPointDivergence,
)


class TestAcyclic:
    def test_simple_dependency(self):
        system = CircularAttributeSystem()
        system.set_value("x", 3)
        system.define("y", ["x"], lambda x: x + 1, bottom=0)
        values = system.solve()
        assert values["y"] == 4

    def test_chain(self):
        system = CircularAttributeSystem()
        system.set_value("a", 1)
        system.define("b", ["a"], lambda a: a * 2, bottom=0)
        system.define("c", ["b"], lambda b: b * 2, bottom=0)
        assert system.solve()["c"] == 4


class TestCyclic:
    def test_mutual_sets_reach_fixed_point(self):
        # in(a) = out(b) | {"seed"}; out(b) = in(a)  -- converges.
        system = CircularAttributeSystem()
        system.define(
            "in_a", ["out_b"], lambda ob: (ob or frozenset()) | {"seed"},
            bottom=frozenset(),
        )
        system.define(
            "out_b", ["in_a"], lambda ia: ia or frozenset(), bottom=frozenset()
        )
        values = system.solve()
        assert values["in_a"] == frozenset({"seed"})
        assert values["out_b"] == frozenset({"seed"})

    def test_loop_accumulates_to_closure(self):
        # Transitive closure through a 3-cycle: each node contributes one
        # element; at the fixed point every node sees all three.
        system = CircularAttributeSystem()
        names = ["n0", "n1", "n2"]
        for i, name in enumerate(names):
            prev = names[(i - 1) % 3]
            system.define(
                name,
                [prev],
                lambda p, i=i: (p or frozenset()) | {i},
                bottom=frozenset(),
            )
        values = system.solve()
        for name in names:
            assert values[name] == frozenset({0, 1, 2})

    def test_divergent_system_raises(self):
        system = CircularAttributeSystem()
        system.define("x", ["x"], lambda x: (x or 0) + 1, bottom=0)
        with pytest.raises(FixedPointDivergence):
            system.solve(max_rounds=50)

    def test_iteration_count_reported(self):
        system = CircularAttributeSystem()
        system.define("a", ["b"], lambda b: min((b or 0) + 1, 5), bottom=0)
        system.define("b", ["a"], lambda a: a or 0, bottom=0)
        system.solve()
        assert system.iterations >= 2
        assert system.equation_firings >= system.iterations


class TestMisuse:
    def test_duplicate_definition_rejected(self):
        system = CircularAttributeSystem()
        system.define("x", [], lambda: 1, bottom=0)
        with pytest.raises(SchemaError):
            system.define("x", [], lambda: 2, bottom=0)

    def test_intrinsic_conflicts_with_equation(self):
        system = CircularAttributeSystem()
        system.define("x", [], lambda: 1, bottom=0)
        with pytest.raises(SchemaError):
            system.set_value("x", 9)

    def test_value_before_solve_raises(self):
        system = CircularAttributeSystem()
        system.define("x", [], lambda: 1, bottom=0)
        with pytest.raises(SchemaError):
            system.value("x")

    def test_value_after_solve(self):
        system = CircularAttributeSystem()
        system.define("x", [], lambda: 1, bottom=0)
        system.solve()
        assert system.value("x") == 1
