"""Batched propagation waves: ``Database.batch`` and batched transactions.

The batch API defers phase-1 marking across many primitive updates and
runs one coalesced wave at close.  These tests pin its contract: deferral
and coalescing are observable only through the counters -- values, marks
at close, and constraint outcomes are identical to per-update waves.
"""

import pytest

from repro.baselines.triggers import depth_first_factory
from repro.core.database import Database
from repro.core.rules import (
    AttributeTarget,
    Constraint,
    Local,
    Received,
    Rule,
    TransmitTarget,
)
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)
from repro.errors import TransactionAborted, UnknownAttributeError
from repro.workloads import build_chain, link, sum_node_schema


def constrained_schema() -> Schema:
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType("dep", [FlowDecl("total", "integer", End.PLUG)])
    )
    schema.add_class(
        ObjectClass(
            "node",
            attributes=[
                AttributeDef("weight", "integer"),
                AttributeDef("cap", "integer", default=100),
                AttributeDef("total", "integer", AttrKind.DERIVED),
            ],
            ports=[
                PortDef("inputs", "dep", End.SOCKET, multi=True),
                PortDef("outputs", "dep", End.PLUG, multi=True),
            ],
            rules=[
                Rule(
                    AttributeTarget("total"),
                    {"w": Local("weight"), "ins": Received("inputs", "total")},
                    lambda w, ins: w + sum(ins),
                ),
                Rule(
                    TransmitTarget("outputs", "total"),
                    {"t": Local("total")},
                    lambda t: t,
                ),
            ],
            constraints=[
                Constraint(
                    "under_cap",
                    {"total": Local("total"), "cap": Local("cap")},
                    lambda total, cap: total <= cap,
                )
            ],
        )
    )
    return schema.freeze()


class TestDeferralAndCoalescing:
    def test_marking_deferred_until_close(self, db):
        nodes = build_chain(db, 4)
        db.get_attr(nodes[-1], "total")  # clean
        with db.batch():
            db.set_attr(nodes[0], "weight", 9)
            assert (nodes[-1], "total") not in db.engine.out_of_date
        assert (nodes[-1], "total") in db.engine.out_of_date

    def test_one_wave_for_many_updates(self, db):
        nodes = build_chain(db, 6)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        with db.batch():
            for iid in nodes:
                db.set_attr(iid, "weight", 3)
        delta = db.engine.counters.delta_since(before)
        assert delta.waves == 1
        assert delta.batched_updates == len(nodes)
        assert db.get_attr(nodes[-1], "total") == 3 * len(nodes)

    def test_values_identical_to_per_update(self):
        def run(batch: bool) -> list[int]:
            db = Database(sum_node_schema())
            nodes = build_chain(db, 8)
            link(db, nodes[2], nodes[6])
            db.get_attr(nodes[-1], "total")
            updates = [(nodes[i % 8], (i * 7) % 23 + 1) for i in range(40)]
            if batch:
                with db.batch():
                    for iid, value in updates:
                        db.set_attr(iid, "weight", value)
            else:
                for iid, value in updates:
                    db.set_attr(iid, "weight", value)
            return [db.get_attr(iid, "total") for iid in nodes]

        assert run(batch=True) == run(batch=False)

    def test_nested_batches_flush_once_at_outermost_close(self, db):
        nodes = build_chain(db, 4)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        with db.batch():
            db.set_attr(nodes[0], "weight", 2)
            with db.batch():
                db.set_attr(nodes[1], "weight", 3)
            # Inner close must not run the wave.
            assert (nodes[-1], "total") not in db.engine.out_of_date
        assert db.engine.counters.delta_since(before).waves == 1

    def test_connect_and_disconnect_batch_too(self, db):
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)
        c = db.create("node", weight=4)
        link(db, a, c)
        db.get_attr(c, "total")
        before = db.engine.counters.snapshot()
        with db.batch():
            link(db, b, c)
            db.set_attr(a, "weight", 10)
        assert db.engine.counters.delta_since(before).waves == 1
        assert db.get_attr(c, "total") == 16


class TestMidBatchReads:
    def test_read_inside_batch_sees_fresh_value(self, db):
        nodes = build_chain(db, 5)
        db.get_attr(nodes[-1], "total")
        with db.batch():
            db.set_attr(nodes[0], "weight", 50)
            assert db.get_attr(nodes[-1], "total") == 50 + 4

    def test_read_flush_keeps_later_updates_batched(self, db):
        nodes = build_chain(db, 5)
        db.get_attr(nodes[-1], "total")
        with db.batch():
            db.set_attr(nodes[0], "weight", 50)
            db.get_attr(nodes[-1], "total")  # flushes the first seed
            db.set_attr(nodes[1], "weight", 7)
            # The post-read update is deferred again until close.
            assert (nodes[-1], "total") not in db.engine.out_of_date
        assert db.get_attr(nodes[-1], "total") == 50 + 7 + 3


class TestImportanceAtClose:
    def test_standing_demand_evaluated_once_at_close(self, db):
        nodes = build_chain(db, 10)
        db.watch(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        for value in range(2, 7):
            db.set_attr(nodes[0], "weight", value)
        per_update = db.engine.counters.delta_since(before).rule_evaluations

        before = db.engine.counters.snapshot()
        with db.batch():
            for value in range(2, 7):
                db.set_attr(nodes[0], "weight", value)
        batched = db.engine.counters.delta_since(before).rule_evaluations
        assert batched < per_update
        assert db.get_attr(nodes[-1], "total") == 6 + 9

    def test_constraint_violation_at_close_rolls_back_whole_batch(self):
        db = Database(constrained_schema())
        a = db.create("node", weight=10, cap=100)
        b = db.create("node", weight=5, cap=40)
        db.connect(a, "outputs", b, "inputs")
        db.get_attr(b, "total")
        with pytest.raises(TransactionAborted):
            with db.batch():
                db.set_attr(a, "weight", 20)   # fine on its own
                db.set_attr(b, "weight", 30)   # 20 + 30 > cap 40
        # The *whole* batch rolled back, including the innocent update.
        assert db.get_attr(a, "weight") == 10
        assert db.get_attr(b, "weight") == 5
        assert db.get_attr(b, "total") == 15

    def test_batch_overshoot_resolved_within_batch_commits(self):
        db = Database(constrained_schema())
        iid = db.create("node", weight=10, cap=50)
        db.get_attr(iid, "total")
        # Per-update waves would veto the first assignment; the batch only
        # checks the constraint against the *final* state at close.
        with db.batch():
            db.set_attr(iid, "weight", 80)
            db.set_attr(iid, "weight", 30)
        assert db.get_attr(iid, "weight") == 30
        assert db.get_attr(iid, "total") == 30


class TestErrorPaths:
    def test_exception_inside_batch_flushes_marks(self, db):
        nodes = build_chain(db, 4)
        db.get_attr(nodes[-1], "total")
        with pytest.raises(UnknownAttributeError):
            with db.batch():
                db.set_attr(nodes[0], "weight", 9)
                db.set_attr(nodes[0], "no_such_attr", 1)
        # The first update survives (it was valid) and its staleness was
        # not lost in the unwind.
        assert db.get_attr(nodes[0], "weight") == 9
        assert db.get_attr(nodes[-1], "total") == 9 + 3

    def test_engine_usable_after_batch_abort(self):
        db = Database(constrained_schema())
        iid = db.create("node", weight=10, cap=50)
        with pytest.raises(TransactionAborted):
            with db.batch():
                db.set_attr(iid, "weight", 60)
        db.set_attr(iid, "weight", 45)
        assert db.get_attr(iid, "total") == 45


class TestBatchedTransactions:
    def test_transaction_batch_defers_to_commit(self, db):
        nodes = build_chain(db, 5)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        with db.transaction(batch=True):
            for iid in nodes:
                db.set_attr(iid, "weight", 2)
            assert (nodes[-1], "total") not in db.engine.out_of_date
        assert db.engine.counters.delta_since(before).waves == 1
        assert db.get_attr(nodes[-1], "total") == 10

    def test_batched_transaction_constraint_aborts(self):
        db = Database(constrained_schema())
        iid = db.create("node", weight=10, cap=50)
        db.get_attr(iid, "total")
        with pytest.raises(TransactionAborted):
            with db.transaction(batch=True):
                db.set_attr(iid, "weight", 60)
        assert db.get_attr(iid, "weight") == 10
        assert not db.txn.in_transaction

    def test_explicit_abort_of_batched_transaction(self, db):
        nodes = build_chain(db, 4)
        db.get_attr(nodes[-1], "total")
        db.begin(batch=True)
        db.set_attr(nodes[0], "weight", 42)
        db.abort()
        assert db.get_attr(nodes[0], "weight") == 1
        assert db.get_attr(nodes[-1], "total") == 4

    def test_auto_batch_database_setting(self):
        db = Database(sum_node_schema(), auto_batch_transactions=True)
        nodes = build_chain(db, 5)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        with db.transaction():
            for iid in nodes:
                db.set_attr(iid, "weight", 2)
        assert db.engine.counters.delta_since(before).waves == 1
        # Opt out per-transaction.
        before = db.engine.counters.snapshot()
        with db.transaction(batch=False):
            db.set_attr(nodes[0], "weight", 3)
            db.set_attr(nodes[1], "weight", 3)
        assert db.engine.counters.delta_since(before).waves == 2

    def test_unbatched_transaction_still_immediate(self, db):
        nodes = build_chain(db, 3)
        db.get_attr(nodes[-1], "total")
        with db.transaction():
            db.set_attr(nodes[0], "weight", 9)
            assert (nodes[-1], "total") in db.engine.out_of_date


class TestBaselinesAndFastPath:
    def test_batch_is_noop_for_baseline_engines(self):
        db = Database(sum_node_schema(), engine_factory=depth_first_factory())
        nodes = build_chain(db, 4)
        with db.batch():
            db.set_attr(nodes[0], "weight", 6)
        assert db.get_attr(nodes[-1], "total") == 6 + 3

    def test_fast_path_off_matches_fast_path_on(self):
        def run(fast_path: bool):
            db = Database(sum_node_schema(), fast_path=fast_path)
            nodes = build_chain(db, 8)
            db.get_attr(nodes[-1], "total")
            for value in (5, 9):
                db.set_attr(nodes[0], "weight", value)
            counters = db.engine.counters
            return (
                [db.get_attr(iid, "total") for iid in nodes],
                counters.rule_evaluations,
                counters.slots_marked,
                counters.mark_edge_visits,
            )

        assert run(fast_path=True) == run(fast_path=False)

    def test_fast_path_hits_replace_chunk_executions(self):
        db = Database(sum_node_schema(), pool_capacity=4096)
        nodes = build_chain(db, 6)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        db.set_attr(nodes[0], "weight", 7)
        delta = db.engine.counters.delta_since(before)
        # Everything is resident: marking rode the fast lane exclusively.
        assert delta.fast_path_hits > 0
        assert delta.chunk_executions == 0

    def test_non_greedy_policies_keep_chunked_waves(self):
        db = Database(sum_node_schema(), policy="fifo", pool_capacity=4096)
        nodes = build_chain(db, 6)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        db.set_attr(nodes[0], "weight", 7)
        delta = db.engine.counters.delta_since(before)
        assert delta.fast_path_hits == 0
        assert delta.chunk_executions > 0
