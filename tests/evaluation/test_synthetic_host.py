"""The engine against a minimal synthetic host.

Validates the :class:`~repro.evaluation.host.EvaluationHost` contract
independently of the full database: a hand-wired host with three slots
(one intrinsic, two derived) drives marking, demand, collection, and the
constraint callback exactly as documented.
"""

import pytest

from repro.core.rules import AttributeTarget, Local, Rule
from repro.errors import ConstraintViolation
from repro.evaluation.engine import IncrementalEngine
from repro.evaluation.host import DepBinding
from repro.graph.depgraph import DependencyGraph
from repro.storage.manager import StorageManager


class SyntheticHost:
    """Three slots on one instance: x (intrinsic) -> d -> q."""

    def __init__(self) -> None:
        self.depgraph = DependencyGraph()
        self.storage = StorageManager(block_capacity=256, pool_capacity=4)
        self.usage = self.storage.usage
        self.values = {(1, "x"): 10}
        self.rules = {
            (1, "d"): Rule(
                AttributeTarget("d"), {"x": Local("x")}, lambda x: x * 2
            ),
            (1, "q"): Rule(
                AttributeTarget("q"), {"d": Local("d")}, lambda d: d + 1
            ),
        }
        self.depgraph.add_edge((1, "x"), (1, "d"))
        self.depgraph.add_edge((1, "d"), (1, "q"))
        self.storage.place(1, 64)
        self.constraint_results = []

    def rule_for(self, slot):
        return self.rules.get(slot)

    def resolved_inputs(self, slot):
        rule = self.rules[slot]
        return [
            DepBinding(kw=kw, slots=[(slot[0], decl.attr)])
            for kw, decl in rule.inputs.items()
        ]

    def read_slot_value(self, slot):
        return self.values[slot]

    def write_slot_value(self, slot, value):
        self.values[slot] = value

    def has_slot_value(self, slot):
        return slot in self.values

    def receive_port_between(self, consumer, producer):
        return None  # single instance: all edges are local

    def handle_constraint_result(self, slot, holds):
        self.constraint_results.append((slot, holds))
        if not holds:
            raise ConstraintViolation("synthetic", slot[0])

    def handle_subtype_result(self, slot, member):
        raise AssertionError("no subtype slots in this host")


class TestContract:
    def test_demand_pulls_the_chain(self):
        host = SyntheticHost()
        engine = IncrementalEngine(host)
        assert engine.demand((1, "q")) == 21
        assert host.values[(1, "d")] == 20

    def test_marking_then_lazy_recompute(self):
        host = SyntheticHost()
        engine = IncrementalEngine(host)
        engine.demand((1, "q"))
        host.values[(1, "x")] = 100
        engine.propagate_intrinsic_change((1, "x"))
        assert engine.is_out_of_date((1, "d"))
        assert engine.is_out_of_date((1, "q"))
        assert host.values[(1, "d")] == 20  # unchanged until demanded
        assert engine.demand((1, "q")) == 201
        assert not engine.is_out_of_date((1, "d"))

    def test_each_slot_evaluated_once_per_wave(self):
        host = SyntheticHost()
        engine = IncrementalEngine(host)
        engine.demand((1, "q"))
        host.values[(1, "x")] = 3
        engine.propagate_intrinsic_change((1, "x"))
        before = engine.counters.snapshot()
        engine.demand((1, "q"))
        assert engine.counters.delta_since(before).rule_evaluations == 2

    def test_constraint_callback_invoked(self):
        host = SyntheticHost()
        host.rules[(1, "__constraint__cap")] = Rule(
            AttributeTarget("__constraint__cap"),
            {"d": Local("d")},
            lambda d: d < 1000,
        )
        host.depgraph.add_edge((1, "d"), (1, "__constraint__cap"))
        engine = IncrementalEngine(host)
        assert engine.demand((1, "__constraint__cap")) is True
        assert host.constraint_results == [((1, "__constraint__cap"), True)]
        host.values[(1, "x")] = 10_000
        with pytest.raises(ConstraintViolation):
            engine.propagate_intrinsic_change((1, "x"))

    def test_standing_demand_is_important(self):
        host = SyntheticHost()
        engine = IncrementalEngine(host)
        engine.demand((1, "q"))
        engine.register_demand((1, "q"))
        host.values[(1, "x")] = 4
        engine.propagate_intrinsic_change((1, "x"))
        # The watched slot was evaluated during the wave.
        assert host.values[(1, "q")] == 9
        assert not engine.is_out_of_date((1, "q"))
