"""Unit tests for the chunk scheduler."""

from repro.evaluation.scheduler import Chunk, ChunkScheduler


def make_scheduler(resident=frozenset(), policy="greedy", blocks=None):
    blocks = blocks or {}
    return ChunkScheduler(
        is_resident=lambda iid: iid in resident,
        block_of=lambda iid: blocks.get(iid, iid),
        policy=policy,
    )


class TestBasicExecution:
    def test_runs_all_chunks(self):
        sched = make_scheduler()
        ran = []
        for i in range(5):
            sched.schedule(Chunk(lambda i=i: ran.append(i), iid=i))
        assert sched.run_to_exhaustion() == 5
        assert sorted(ran) == [0, 1, 2, 3, 4]

    def test_chunks_scheduled_during_execution_run(self):
        sched = make_scheduler()
        ran = []

        def outer():
            ran.append("outer")
            sched.schedule(Chunk(lambda: ran.append("inner"), iid=2))

        sched.schedule(Chunk(outer, iid=1))
        sched.run_to_exhaustion()
        assert ran == ["outer", "inner"]

    def test_idle_property(self):
        sched = make_scheduler()
        assert sched.idle
        sched.schedule(Chunk(lambda: None, iid=1))
        assert not sched.idle
        sched.run_to_exhaustion()
        assert sched.idle


class TestPriorities:
    def test_greedy_runs_cheapest_first(self):
        sched = make_scheduler()
        ran = []
        sched.schedule(Chunk(lambda: ran.append("expensive"), iid=1, priority=9.0))
        sched.schedule(Chunk(lambda: ran.append("cheap"), iid=2, priority=0.5))
        sched.run_to_exhaustion()
        assert ran == ["cheap", "expensive"]

    def test_resident_chunks_run_before_cheap_nonresident(self):
        sched = make_scheduler(resident={7})
        ran = []
        sched.schedule(Chunk(lambda: ran.append("cheap"), iid=1, priority=0.0))
        sched.schedule(Chunk(lambda: ran.append("resident"), iid=7, priority=99.0))
        sched.run_to_exhaustion()
        assert ran == ["resident", "cheap"]

    def test_user_requests_preempt_other_queue_work(self):
        sched = make_scheduler()
        ran = []
        sched.schedule(Chunk(lambda: ran.append("normal"), iid=1, priority=0.0))
        sched.schedule(
            Chunk(lambda: ran.append("user"), iid=2, priority=5.0, user_request=True)
        )
        sched.run_to_exhaustion()
        assert ran == ["user", "normal"]

    def test_fifo_policy_order(self):
        sched = make_scheduler(policy="fifo")
        ran = []
        for i in range(4):
            sched.schedule(Chunk(lambda i=i: ran.append(i), iid=i, priority=4 - i))
        sched.run_to_exhaustion()
        assert ran == [0, 1, 2, 3]

    def test_lifo_policy_order(self):
        sched = make_scheduler(policy="lifo")
        ran = []
        for i in range(4):
            sched.schedule(Chunk(lambda i=i: ran.append(i), iid=i))
        sched.run_to_exhaustion()
        assert ran == [3, 2, 1, 0]

    def test_unknown_policy_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            make_scheduler(policy="random")


class TestBlockPromotion:
    def test_on_block_loaded_promotes(self):
        blocks = {1: 10, 2: 20}
        sched = make_scheduler(blocks=blocks)
        ran = []
        sched.schedule(Chunk(lambda: ran.append("a"), iid=1, priority=1.0))
        sched.schedule(Chunk(lambda: ran.append("b"), iid=2, priority=0.5))
        # Block 10 (holding instance 1) becomes resident: promote.
        sched.on_block_loaded(10)
        sched.run_to_exhaustion()
        assert ran == ["a", "b"]

    def test_promotion_does_not_duplicate_execution(self):
        blocks = {1: 10}
        sched = make_scheduler(blocks=blocks)
        count = [0]
        sched.schedule(Chunk(lambda: count.__setitem__(0, count[0] + 1), iid=1))
        sched.on_block_loaded(10)
        sched.run_to_exhaustion()
        assert count[0] == 1

    def test_clear_drops_everything(self):
        sched = make_scheduler()
        sched.schedule(Chunk(lambda: None, iid=1))
        sched.clear()
        assert sched.run_to_exhaustion() == 0

    def test_chunk_loading_own_block_runs_once(self):
        """Regression: a heap-popped chunk whose body loads its own block
        must not be promoted by on_block_loaded into a second execution."""
        blocks = {1: 10}
        sched = make_scheduler(blocks=blocks)
        count = [0]

        def body():
            count[0] += 1
            # The chunk's work faults in its own block (touch -> buffer
            # load -> promotion callback), exactly what _mark does.
            sched.on_block_loaded(10)

        sched.schedule(Chunk(body, iid=1, priority=1.0))
        sched.run_to_exhaustion()
        assert count[0] == 1

    def test_pop_prunes_block_index(self):
        blocks = {1: 10, 2: 10}
        sched = make_scheduler(blocks=blocks)
        ran = []
        sched.schedule(Chunk(lambda: ran.append("a"), iid=1, priority=0.5))
        sched.schedule(Chunk(lambda: ran.append("b"), iid=2, priority=1.0))
        sched.run_to_exhaustion()
        # Both consumed from the heap; the shared block's index entry must
        # be gone so a later load promotes nothing.
        sched.on_block_loaded(10)
        assert sched.run_to_exhaustion() == 0
        assert ran == ["a", "b"]


class TestBlockDemotion:
    """Regression: eviction between scheduling and execution used to leave
    residency-routed entries in the very-high deque, running them against a
    non-resident block ahead of properly priced work."""

    def _mutable_scheduler(self, resident, blocks, fast_runner=None):
        return ChunkScheduler(
            is_resident=lambda iid: iid in resident,
            block_of=lambda iid: blocks[iid],
            policy="greedy",
            fast_runner=fast_runner,
        )

    def test_evict_between_schedule_and_run_demotes_chunk(self):
        resident, blocks = {1}, {1: 10, 2: 20}
        sched = self._mutable_scheduler(resident, blocks)
        ran = []
        sched.schedule(Chunk(lambda: ran.append("evicted"), iid=1, priority=9.0))
        sched.schedule(Chunk(lambda: ran.append("cheap"), iid=2, priority=0.5))
        resident.discard(1)
        sched.on_block_evicted(10)
        sched.run_to_exhaustion()
        # Demoted out of the fast lane: the cheap non-resident chunk now
        # rightly runs first, and the demoted work still runs exactly once.
        assert ran == ["cheap", "evicted"]

    def test_demoted_chunk_promoted_again_on_reload(self):
        resident, blocks = {1}, {1: 10, 2: 20}
        sched = self._mutable_scheduler(resident, blocks)
        ran = []
        sched.schedule(Chunk(lambda: ran.append("bounced"), iid=1, priority=9.0))
        sched.schedule(Chunk(lambda: ran.append("other"), iid=2, priority=0.5))
        resident.discard(1)
        sched.on_block_evicted(10)
        resident.add(1)
        sched.on_block_loaded(10)
        sched.run_to_exhaustion()
        assert ran == ["bounced", "other"]

    def test_evicted_fast_entry_demoted_and_runs_once(self):
        seen = []
        resident, blocks = {1}, {1: 10, 2: 20}
        sched = self._mutable_scheduler(resident, blocks, fast_runner=seen.append)
        entry = (0, (1, "attr"), None)
        sched.schedule_fast(entry)
        ran = []
        sched.schedule(Chunk(lambda: ran.append("cheap"), iid=2, priority=0.5))
        resident.discard(1)
        sched.on_block_evicted(10)
        assert sched.run_to_exhaustion() == 2
        assert seen == [entry]
        assert ran == ["cheap"]

    def test_eviction_of_unrelated_block_keeps_order(self):
        resident, blocks = {1, 2}, {1: 10, 2: 20}
        sched = self._mutable_scheduler(resident, blocks)
        ran = []
        sched.schedule(Chunk(lambda: ran.append("a"), iid=1))
        sched.schedule(Chunk(lambda: ran.append("b"), iid=2))
        sched.on_block_evicted(99)
        sched.run_to_exhaustion()
        assert ran == ["a", "b"]

    def test_pool_eviction_reaches_scheduler(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import SimulatedDisk

        disk = SimulatedDisk(256)
        ids = [disk.allocate_block().block_id for __ in range(3)]
        evicted = []
        pool = BufferPool(disk, capacity=2, on_evict=evicted.append)
        pool.fetch(ids[0])
        pool.fetch(ids[1])
        pool.fetch(ids[2])  # LRU-evicts ids[0]
        assert evicted == [ids[0]]
        pool.drop(ids[1])
        assert evicted == [ids[0], ids[1]]
        pool.clear()
        assert evicted == [ids[0], ids[1], ids[2]]
        pool.drop(12345)  # absent frame: no callback
        assert len(evicted) == 3


class TestFastLane:
    def test_fast_entries_execute_via_runner(self):
        seen = []
        sched = ChunkScheduler(
            is_resident=lambda iid: True,
            block_of=lambda iid: iid,
            policy="greedy",
            fast_runner=seen.append,
        )
        sched.schedule_fast((0, (1, "a"), None))
        sched.schedule_fast((1, (2, "b"), None))
        assert sched.run_to_exhaustion() == 2
        assert seen == [(0, (1, "a"), None), (1, (2, "b"), None)]
        assert sched.fast_executed == 2
        assert sched.executed == 0

    def test_fast_entries_interleave_with_resident_chunks_in_order(self):
        ran = []
        sched = ChunkScheduler(
            is_resident=lambda iid: True,
            block_of=lambda iid: iid,
            policy="greedy",
            fast_runner=lambda entry: ran.append(entry[1]),
        )
        sched.schedule(Chunk(lambda: ran.append("chunk1"), iid=1))
        sched.schedule_fast((0, "fast1", None))
        sched.schedule(Chunk(lambda: ran.append("chunk2"), iid=2))
        sched.schedule_fast((0, "fast2", None))
        sched.run_to_exhaustion()
        # The fast lane shares the very-high deque: strict FIFO order.
        assert ran == ["chunk1", "fast1", "chunk2", "fast2"]
