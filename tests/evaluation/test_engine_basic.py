"""Engine behaviour: demand, cycles, transitive flows, wave hygiene."""

import pytest

from repro.core.database import Database
from repro.errors import CycleError
from repro.workloads import build_chain, build_grid, link, sum_node_schema


def fresh_db(**kwargs) -> Database:
    return Database(sum_node_schema(), **kwargs)


class TestDemand:
    def test_intrinsic_demand_returns_stored_value(self, db):
        iid = db.create("node", weight=9)
        assert db.get_attr(iid, "weight") == 9

    def test_derived_demand_transitive(self, db):
        nodes = build_chain(db, 5)
        assert db.get_attr(nodes[-1], "total") == 5

    def test_clean_demand_does_not_reevaluate(self, db):
        nodes = build_chain(db, 5)
        db.get_attr(nodes[-1], "total")
        before = db.engine.counters.snapshot()
        db.get_attr(nodes[-1], "total")
        assert db.engine.counters.delta_since(before).rule_evaluations == 0

    def test_grid_values_correct(self, db):
        grid = build_grid(db, 4, 4)
        # Each cell's total counts weighted paths; the sink's value equals
        # the number of monotone lattice paths weighted by cells.  Compute
        # the expectation independently.
        expect = {}
        for r in range(4):
            for c in range(4):
                incoming = 0
                if r > 0:
                    incoming += expect[(r - 1, c)]
                if c > 0:
                    incoming += expect[(r, c - 1)]
                expect[(r, c)] = 1 + incoming
        assert db.get_attr(grid["sink"], "total") == expect[(3, 3)]


class TestCycleDetection:
    def test_cycle_forming_connect_rejected(self, db):
        a, b = db.create("node"), db.create("node")
        link(db, a, b)
        with pytest.raises(CycleError):
            link(db, b, a)

    def test_engine_usable_after_cycle_error(self, db):
        a, b = db.create("node", weight=1), db.create("node", weight=2)
        link(db, a, b)
        with pytest.raises(CycleError):
            link(db, b, a)
        # The offending connect was rolled back; values still retrievable.
        c = db.create("node", weight=4)
        link(db, c, b)
        assert db.get_attr(b, "total") == 7  # b depends on a (1) and c (4)

    def test_long_cycle_detected(self, db):
        nodes = build_chain(db, 10)
        db.get_attr(nodes[-1], "total")
        with pytest.raises(CycleError) as excinfo:
            link(db, nodes[-1], nodes[0])  # closes the loop
        assert len(excinfo.value.slots) >= 2
        # Rolled back: values unchanged and the chain still acyclic.
        assert db.get_attr(nodes[-1], "total") == 10

    def test_self_loop_rejected(self, db):
        a = db.create("node")
        with pytest.raises(CycleError):
            db.connect(a, "inputs", a, "outputs")
        assert db.view(a).connections("inputs") == []

    def test_lazy_mode_detects_at_demand(self):
        db = Database(sum_node_schema(), detect_cycles=False)
        a, b = db.create("node"), db.create("node")
        link(db, a, b)
        link(db, b, a)  # permitted: eager checking disabled
        with pytest.raises(CycleError):
            db.get_attr(a, "total")


class TestDeepGraphs:
    def test_chain_10k_no_recursion_error(self):
        db = fresh_db(pool_capacity=1024)
        nodes = build_chain(db, 10_000)
        assert db.get_attr(nodes[-1], "total") == 10_000

    def test_deep_ripple(self):
        db = fresh_db(pool_capacity=1024)
        nodes = build_chain(db, 2_000)
        db.get_attr(nodes[-1], "total")
        db.set_attr(nodes[0], "weight", 100)
        assert db.get_attr(nodes[-1], "total") == 2_099


class TestSchedulingPoliciesAgree:
    @pytest.mark.parametrize("policy", ["greedy", "fifo", "lifo"])
    def test_policies_compute_identical_values(self, policy):
        db = Database(sum_node_schema(), policy=policy, pool_capacity=4)
        grid = build_grid(db, 5, 5)
        baseline = Database(sum_node_schema(), pool_capacity=1024)
        grid2 = build_grid(baseline, 5, 5)
        assert db.get_attr(grid["sink"], "total") == baseline.get_attr(
            grid2["sink"], "total"
        )
        db.set_attr(grid["origin"], "weight", 50)
        baseline.set_attr(grid2["origin"], "weight", 50)
        assert db.get_attr(grid["sink"], "total") == baseline.get_attr(
            grid2["sink"], "total"
        )


class TestUnchangedValues:
    def test_unchanged_evaluations_counted(self, db):
        # Node whose weight flips between values producing the same total
        # downstream is still recomputed once but flagged unchanged.
        a, b = db.create("node", weight=2), db.create("node", weight=1)
        link(db, a, b)
        db.get_attr(b, "total")
        db.set_attr(a, "weight", 3)
        db.set_attr(a, "weight", 2)  # back to original
        before = db.engine.counters.snapshot()
        db.get_attr(b, "total")
        delta = db.engine.counters.delta_since(before)
        assert delta.unchanged_evaluations >= 1


class TestEagerMode:
    def test_eager_mode_leaves_nothing_out_of_date(self):
        db = fresh_db(eager=True)
        from repro.workloads import build_fan

        fan = build_fan(db, 10)
        db.set_attr(fan["hub"], "weight", 7)
        assert not db.engine.out_of_date
        for consumer in fan["consumers"]:
            assert db.instance(consumer).attrs["total"] == 8

    def test_eager_and_lazy_agree_on_values(self):
        results = []
        for eager in (False, True):
            db = fresh_db(eager=eager)
            nodes = build_chain(db, 10)
            db.set_attr(nodes[2], "weight", 5)
            results.append([db.get_attr(n, "total") for n in nodes])
        assert results[0] == results[1]
