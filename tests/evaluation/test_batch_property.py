"""Property test: batched waves are observationally identical (hypothesis).

Replays the same random update/query script over the same random DAG with
and without ``db.batch()`` and asserts bitwise-identical:

* values observed by every mid-script query (a mid-batch read flushes the
  deferred marking, so it must see exactly the per-update value);
* final attribute values of every instance;
* the out-of-date mark set after the batch closes;
* constraint outcomes (violations abort in both modes, success states
  match).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.database import Database
from repro.errors import TransactionAborted
from repro.workloads import build_random_dag, sum_node_schema
from tests.evaluation.test_batching import constrained_schema

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=30,
)


@st.composite
def dag_and_script(draw, max_nodes=16, max_ops=30):
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    edge_prob = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "get"]),
                st.integers(min_value=0, max_value=max_nodes - 1),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=max_ops,
        )
    )
    return n_nodes, edge_prob, seed, ops


def apply_ops(db, nodes, ops):
    observed = []
    for op, index, value in ops:
        iid = nodes[index % len(nodes)]
        if op == "set":
            db.set_attr(iid, "weight", value)
        else:
            observed.append(db.get_attr(iid, "total"))
    return observed


def run_case(case, batch: bool):
    n_nodes, edge_prob, seed, ops = case
    db = Database(sum_node_schema(), pool_capacity=256)
    nodes = build_random_dag(db, n_nodes, edge_prob, seed=seed)
    if batch:
        with db.batch():
            observed = apply_ops(db, nodes, ops)
        marks = frozenset(db.engine.out_of_date)
    else:
        observed = apply_ops(db, nodes, ops)
        marks = frozenset(db.engine.out_of_date)
    finals = [
        (db.get_attr(n, "weight"), db.get_attr(n, "total")) for n in nodes
    ]
    return observed, marks, finals


class TestBatchEquivalence:
    @given(dag_and_script())
    @settings(**COMMON)
    def test_batched_script_matches_per_update(self, case):
        plain = run_case(case, batch=False)
        batched = run_case(case, batch=True)
        observed_plain, marks_plain, finals_plain = plain
        observed_batched, marks_batched, finals_batched = batched
        assert observed_batched == observed_plain
        assert finals_batched == finals_plain
        # The coalesced wave marks the union of the per-update regions; by
        # close the two mark sets must coincide exactly.
        assert marks_batched == marks_plain

    @given(
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=20, max_value=60),
    )
    @settings(**COMMON)
    def test_constraint_outcome_matches(self, w_a, w_b, cap):
        """Same final state => same constraint verdict in both modes.

        One assignment per attribute, so the batch's check-at-close sees
        the same final state a per-update transaction audit would.
        """

        def run(batch: bool):
            db = Database(constrained_schema())
            a = db.create("node", weight=1, cap=1_000)
            b = db.create("node", weight=1, cap=cap)
            db.connect(a, "outputs", b, "inputs")
            db.get_attr(b, "total")
            try:
                if batch:
                    with db.batch():
                        db.set_attr(a, "weight", w_a)
                        db.set_attr(b, "weight", w_b)
                else:
                    with db.transaction():
                        db.set_attr(a, "weight", w_a)
                        db.set_attr(b, "weight", w_b)
            except TransactionAborted:
                aborted = True
            else:
                aborted = False
            return aborted, db.get_attr(a, "weight"), db.get_attr(b, "total")

        assert run(batch=True) == run(batch=False)
