"""Lexer unit tests."""

import pytest

from repro.dsl.lexer import Token, tokenize
from repro.errors import DslSyntaxError


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("Object CLASS end") == [
            ("kw", "object"),
            ("kw", "class"),
            ("kw", "end"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("Exp_Compl") == [("ident", "Exp_Compl")]

    def test_integers_and_reals(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].kind == "int" and tokens[0].value == 42
        assert tokens[1].kind == "real" and tokens[1].value == 3.5

    def test_integer_dot_not_real_without_digits(self):
        # "1." followed by an ident is an int, then symbol, then ident.
        assert [t.kind for t in tokenize("1.x")[:-1]] == ["int", "sym", "ident"]

    def test_strings_with_escapes(self):
        token = tokenize(r'"a\"b\nc"')[0]
        assert token.kind == "string"
        assert token.value == 'a"b\nc'

    def test_symbols_longest_match(self):
        assert kinds(":= <= >= <> !=") == [
            ("sym", ":="),
            ("sym", "<="),
            ("sym", ">="),
            ("sym", "<>"),
            ("sym", "!="),
        ]

    def test_comments_skipped(self):
        assert kinds("a /* comment\nwith lines */ b") == [
            ("ident", "a"),
            ("ident", "b"),
        ]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"


class TestErrors:
    def test_unterminated_comment(self):
        with pytest.raises(DslSyntaxError, match="comment"):
            tokenize("/* never closed")

    def test_unterminated_string(self):
        with pytest.raises(DslSyntaxError, match="string"):
            tokenize('"open')

    def test_newline_in_string(self):
        with pytest.raises(DslSyntaxError, match="string"):
            tokenize('"line\nbreak"')

    def test_unexpected_character(self):
        with pytest.raises(DslSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_error_carries_position(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("ok\n  @")
        assert excinfo.value.line == 2


class TestTokenHelpers:
    def test_is_kw_and_is_sym(self):
        kw, sym = tokenize("end ;")[:2]
        assert kw.is_kw("end") and not kw.is_kw("begin")
        assert sym.is_sym(";") and not sym.is_sym(":")
