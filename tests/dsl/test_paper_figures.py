"""The paper's figures, compiled verbatim and behaviour-checked.

Figure 1 (milestones) and Figures 2-4 (make_rule) are carried in the
library as DSL source; these tests pin their exact semantics so any
compiler change that would alter the figures' behaviour fails loudly.
"""

import pytest

from repro.core.atoms import TIME0
from repro.core.database import Database
from repro.dsl import compile_schema, parse
from repro.env.make import figure4_schema_source
from repro.env.milestones import MILESTONE_SCHEMA


class TestFigure1:
    @pytest.fixture
    def db(self):
        return Database(compile_schema(MILESTONE_SCHEMA))

    def test_exp_compl_with_no_dependencies_is_local_work(self, db):
        m = db.create("milestone", local_work=6, sched_compl=10)
        # Figure 1: latest starts at TIME0, loop adds nothing.
        assert db.get_attr(m, "exp_compl") == TIME0 + 6

    def test_exp_compl_takes_latest_dependency(self, db):
        early = db.create("milestone", local_work=3, sched_compl=5)
        late = db.create("milestone", local_work=9, sched_compl=12)
        sink = db.create("milestone", local_work=1, sched_compl=15)
        db.connect(sink, "depends_on", early, "consists_of")
        db.connect(sink, "depends_on", late, "consists_of")
        # later_of picks the 9; + local work 1.
        assert db.get_attr(sink, "exp_compl") == 10

    def test_late_is_strict_comparison(self, db):
        m = db.create("milestone", local_work=10, sched_compl=10)
        # later_than(10, 10) is false: exactly on time is not late.
        assert db.get_attr(m, "late") is False
        db.set_attr(m, "local_work", 11)
        assert db.get_attr(m, "late") is True

    def test_exp_time_transmitted_equals_exp_compl(self, db):
        m = db.create("milestone", local_work=4, sched_compl=9)
        assert db.get_transmitted(m, "consists_of", "exp_time") == db.get_attr(
            m, "exp_compl"
        )

    def test_transitive_ripple_matches_paper_narrative(self, db):
        """'Changing the expected completion date for one milestone may have
        effects that ripple throughout' -- three levels deep."""
        a = db.create("milestone", local_work=5, sched_compl=10)
        b = db.create("milestone", local_work=5, sched_compl=20)
        c = db.create("milestone", local_work=5, sched_compl=30)
        db.connect(b, "depends_on", a, "consists_of")
        db.connect(c, "depends_on", b, "consists_of")
        assert db.get_attr(c, "exp_compl") == 15
        db.set_attr(a, "local_work", 25)
        assert db.get_attr(c, "exp_compl") == 35
        assert db.get_attr(c, "late") is True


class TestFigures234:
    def test_source_parses(self):
        decl = parse(figure4_schema_source())
        cls = decl.classes[0]
        assert cls.name == "make_rule"
        assert [p.name for p in cls.ports] == ["output", "depends_on"]
        assert [a.name for a in cls.attrs] == ["file_name", "make_command"]
        targets = [(r.target_port, r.target_value) for r in cls.rules]
        assert targets == [("output", "mod_time"), ("output", "up_to_date")]

    def test_figure3_youngest_semantics(self):
        """mod_time = the latest of own file time and dependencies'."""
        from repro.env.files import SimulatedFileSystem, make_default_runner
        from repro.env.make import compile_figure4_schema

        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        db = Database(compile_figure4_schema(fs, runner))
        old = db.create("make_rule", file_name="old.c", make_command="")
        new = db.create("make_rule", file_name="new.c", make_command="")
        target = db.create("make_rule", file_name="t.o", make_command="")
        fs.write("old.c", "1")
        fs.write("new.c", "2")
        fs.write("t.o", "3")
        db.connect(target, "depends_on", old, "output")
        db.connect(target, "depends_on", new, "output")
        youngest = db.get_transmitted(target, "output", "mod_time")
        assert youngest == fs.mod_time("t.o")  # t.o written last
        fs.write("new.c", "2b")  # now new.c is the youngest
        # External change: invalidate the file-derived values.
        db.engine.invalidate_derived(
            [(i, "output>mod_time") for i in (old, new, target)]
        )
        assert db.get_transmitted(target, "output", "mod_time") == fs.mod_time(
            "new.c"
        )

    def test_figure4_runs_command_only_when_stale(self):
        from repro.env.files import SimulatedFileSystem, make_default_runner
        from repro.env.make import compile_figure4_schema

        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        db = Database(compile_figure4_schema(fs, runner))
        fs.write("src.c", "body")
        src = db.create("make_rule", file_name="src.c", make_command="")
        obj = db.create(
            "make_rule", file_name="obj.o", make_command="cc -o obj.o src.c"
        )
        db.connect(obj, "depends_on", src, "output")
        db.get_transmitted(obj, "output", "up_to_date")
        assert runner.journal == ["cc -o obj.o src.c"]
        # A second evaluation with a current target runs nothing.
        db.engine.invalidate_derived(
            [(src, "output>mod_time"), (src, "output>up_to_date"),
             (obj, "output>mod_time"), (obj, "output>up_to_date")]
        )
        db.get_transmitted(obj, "output", "up_to_date")
        assert runner.journal == ["cc -o obj.o src.c"]
