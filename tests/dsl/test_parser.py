"""Parser unit tests."""

import pytest

from repro.dsl import ast
from repro.dsl.parser import parse
from repro.errors import DslSyntaxError

RELATIONSHIP = """
relationship r is
    v : time from plug default 3;
end relationship;
"""


class TestRelationshipDecl:
    def test_flows_parsed(self):
        decl = parse(RELATIONSHIP)
        rel = decl.relationships[0]
        assert rel.name == "r"
        flow = rel.flows[0]
        assert (flow.value, flow.type_name, flow.sent_by, flow.default) == (
            "v",
            "time",
            "plug",
            3,
        )

    def test_negative_default(self):
        decl = parse(
            "relationship r is v : integer from socket default -1; end;"
        )
        assert decl.relationships[0].flows[0].default == -1

    def test_missing_direction_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse("relationship r is v : time from nowhere; end;")


CLASS = RELATIONSHIP + """
object class c is
  relationships
    ins : r multi socket;
    outs : r plug;
  attributes
    x : integer;
    d : integer derived;
    s : string = "hi";
  rules
    d = x + 1;
    outs v = d;
  constraints
    positive : x >= 0;
end object;
"""


class TestClassDecl:
    def test_sections_parsed(self):
        cls = parse(CLASS).classes[0]
        assert cls.name == "c"
        assert [p.name for p in cls.ports] == ["ins", "outs"]
        assert cls.ports[0].multi and not cls.ports[1].multi
        assert [a.name for a in cls.attrs] == ["x", "d", "s"]
        assert cls.attrs[1].derived
        assert cls.attrs[2].default == "hi"
        assert len(cls.rules) == 2
        assert cls.constraints[0].name == "positive"

    def test_transmit_rule_target(self):
        cls = parse(CLASS).classes[0]
        rule = cls.rules[1]
        assert rule.target_port == "outs" and rule.target_value == "v"

    def test_subtype_with_where(self):
        decl = parse(
            CLASS
            + "object class big subtype of c where d > 10 is "
            + "attributes flag : boolean; end object;"
        )
        sub = decl.classes[1]
        assert sub.supertype == "c"
        assert isinstance(sub.where, ast.Binary)

    def test_plain_subclass(self):
        decl = parse(CLASS + "object class sub subtype of c is end object;")
        sub = decl.classes[1]
        assert sub.supertype == "c" and sub.where is None

    def test_unknown_section_rejected(self):
        with pytest.raises(DslSyntaxError, match="section"):
            parse("object class c is stuff end;")


BLOCK_RULE = RELATIONSHIP + """
object class c is
  relationships
    ins : r multi socket;
  attributes
    d : time derived;
  rules
    d = begin
        acc : time;
        acc := TIME0;
        for each dep related to ins do
            acc := later_of(acc, dep.v);
        end for;
        if acc > 100 then
            return 100;
        else
            return acc;
        end if;
    end;
end object;
"""


class TestStatements:
    def test_block_rule_structure(self):
        rule = parse(BLOCK_RULE).classes[0].rules[0]
        body = rule.body
        assert isinstance(body, ast.Block)
        kinds = [type(s).__name__ for s in body.body]
        assert kinds == ["VarDecl", "Assign", "ForEach", "If"]

    def test_for_each_fields(self):
        body = parse(BLOCK_RULE).classes[0].rules[0].body
        loop = body.body[2]
        assert loop.var == "dep" and loop.port == "ins"
        assert isinstance(loop.body[0], ast.Assign)

    def test_if_else_bodies(self):
        body = parse(BLOCK_RULE).classes[0].rules[0].body
        cond = body.body[3]
        assert isinstance(cond.then_body[0], ast.Return)
        assert isinstance(cond.else_body[0], ast.Return)

    def test_expression_statement(self):
        source = RELATIONSHIP + (
            "object class c is relationships ins : r multi socket; "
            "attributes d : integer derived; rules d = begin "
            "void(1); return 0; end; end;"
        )
        body = parse(source).classes[0].rules[0].body
        assert isinstance(body.body[0], ast.ExprStmt)


class TestExpressions:
    def parse_expr(self, text):
        source = (
            "object class c is attributes d : integer derived; "
            f"rules d = {text}; end;"
        )
        return parse(source).classes[0].rules[0].body

    def test_precedence_mul_over_add(self):
        expr = self.parse_expr("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_parentheses(self):
        expr = self.parse_expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_comparison_canonicalised(self):
        assert self.parse_expr("a = b").op == "=="
        assert self.parse_expr("a <> b").op == "!="

    def test_boolean_operators(self):
        expr = self.parse_expr("a and b or not c")
        assert expr.op == "or"
        assert expr.left.op == "and"
        assert expr.right.op == "not"

    def test_unary_minus(self):
        expr = self.parse_expr("-x + 1")
        assert expr.op == "+" and expr.left.op == "-"

    def test_call_with_args(self):
        expr = self.parse_expr("later_of(a, b + 1)")
        assert isinstance(expr, ast.Call)
        assert expr.fn == "later_of" and len(expr.args) == 2

    def test_field_ref(self):
        expr = self.parse_expr("p.v")
        assert isinstance(expr, ast.FieldRef)
        assert (expr.base, expr.field_name) == ("p", "v")

    def test_literals(self):
        assert self.parse_expr("true").value is True
        assert self.parse_expr("false").value is False
        assert self.parse_expr('"text"').value == "text"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(DslSyntaxError):
            parse("object class c is attributes x : integer end;")

    def test_garbage_toplevel(self):
        with pytest.raises(DslSyntaxError, match="relationship"):
            parse("banana")

    def test_error_reports_position(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            parse("object class c is\n  attributes\n    x integer;\nend;")
        assert excinfo.value.line >= 2
