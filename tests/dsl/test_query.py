"""Query-language tests."""

import pytest

from repro.core.database import Database
from repro.dsl.query import compile_query, run_query
from repro.env.milestones import MilestoneManager
from repro.errors import DslCompileError, DslSyntaxError
from repro.workloads import link, sum_node_schema


@pytest.fixture
def db():
    db = Database(sum_node_schema(), pool_capacity=64)
    for w in (1, 4, 7, 10):
        db.create("node", weight=w)
    return db


class TestBasics:
    def test_select_all(self, db):
        assert run_query(db, "select node") == db.instances_of("node")

    def test_where_intrinsic(self, db):
        result = run_query(db, "select node where weight > 5")
        assert [db.get_attr(i, "weight") for i in result] == [7, 10]

    def test_where_derived(self, db):
        nodes = db.instances_of("node")
        link(db, nodes[0], nodes[1])  # totals: 1, 5, 7, 10
        result = run_query(db, "select node where total >= 5")
        assert [db.get_attr(i, "total") for i in result] == [5, 7, 10]

    def test_where_boolean_logic(self, db):
        result = run_query(
            db, "select node where weight > 2 and not (weight == 7)"
        )
        assert [db.get_attr(i, "weight") for i in result] == [4, 10]

    def test_where_with_builtin_function(self, db):
        result = run_query(db, "select node where later_of(weight, 5) == 5")
        assert [db.get_attr(i, "weight") for i in result] == [1, 4]


class TestOrderingAndLimit:
    def test_order_by_desc(self, db):
        result = run_query(db, "select node order by weight desc")
        assert [db.get_attr(i, "weight") for i in result] == [10, 7, 4, 1]

    def test_order_default_ascending(self, db):
        result = run_query(db, "select node where weight > 1 order by weight")
        assert [db.get_attr(i, "weight") for i in result] == [4, 7, 10]

    def test_limit(self, db):
        result = run_query(db, "select node order by weight desc limit 2")
        assert [db.get_attr(i, "weight") for i in result] == [10, 7]

    def test_compiled_query_reusable(self, db):
        query = compile_query(db.schema, "select node where weight >= 7")
        assert len(query.run(db)) == 2
        db.create("node", weight=99)
        assert len(query.run(db)) == 3


class TestOnApplications:
    def test_late_milestones_query(self):
        mm = MilestoneManager()
        mm.add_milestone("a", scheduled=10, work=12)
        mm.add_milestone("b", scheduled=10, work=3)
        result = run_query(mm.db, "select milestone where late")
        assert len(result) == 1

    def test_order_by_expected_completion(self):
        mm = MilestoneManager()
        mm.add_milestone("a", scheduled=10, work=12)
        mm.add_milestone("b", scheduled=10, work=3)
        mm.add_milestone("c", scheduled=10, work=7)
        result = run_query(
            mm.db, "select milestone order by exp_compl desc limit 1"
        )
        assert mm.db.get_attr(result[0], "local_work") == 12


class TestErrors:
    def test_missing_select(self, db):
        with pytest.raises(DslSyntaxError, match="select"):
            run_query(db, "node where weight > 1")

    def test_unknown_class(self, db):
        with pytest.raises(DslCompileError, match="unknown object class"):
            run_query(db, "select widget")

    def test_unknown_attribute_in_where(self, db):
        with pytest.raises(DslCompileError, match="unknown name"):
            run_query(db, "select node where colour == 1")

    def test_unknown_order_attribute(self, db):
        with pytest.raises(DslCompileError, match="no attribute"):
            run_query(db, "select node order by colour")

    def test_trailing_garbage(self, db):
        with pytest.raises(DslSyntaxError, match="unexpected token"):
            run_query(db, "select node banana")

    def test_limit_requires_integer(self, db):
        with pytest.raises(DslSyntaxError, match="integer"):
            run_query(db, "select node limit many")
