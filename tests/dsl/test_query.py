"""Query-language tests."""

import pytest

from repro.core.database import Database
from repro.dsl.query import compile_query, run_query
from repro.env.milestones import MilestoneManager
from repro.dsl import compile_schema
from repro.errors import DslCompileError, DslSyntaxError, QueryError
from repro.workloads import link, sum_node_schema


@pytest.fixture
def db():
    db = Database(sum_node_schema(), pool_capacity=64)
    for w in (1, 4, 7, 10):
        db.create("node", weight=w)
    return db


class TestBasics:
    def test_select_all(self, db):
        assert run_query(db, "select node") == db.instances_of("node")

    def test_where_intrinsic(self, db):
        result = run_query(db, "select node where weight > 5")
        assert [db.get_attr(i, "weight") for i in result] == [7, 10]

    def test_where_derived(self, db):
        nodes = db.instances_of("node")
        link(db, nodes[0], nodes[1])  # totals: 1, 5, 7, 10
        result = run_query(db, "select node where total >= 5")
        assert [db.get_attr(i, "total") for i in result] == [5, 7, 10]

    def test_where_boolean_logic(self, db):
        result = run_query(
            db, "select node where weight > 2 and not (weight == 7)"
        )
        assert [db.get_attr(i, "weight") for i in result] == [4, 10]

    def test_where_with_builtin_function(self, db):
        result = run_query(db, "select node where later_of(weight, 5) == 5")
        assert [db.get_attr(i, "weight") for i in result] == [1, 4]


class TestOrderingAndLimit:
    def test_order_by_desc(self, db):
        result = run_query(db, "select node order by weight desc")
        assert [db.get_attr(i, "weight") for i in result] == [10, 7, 4, 1]

    def test_order_default_ascending(self, db):
        result = run_query(db, "select node where weight > 1 order by weight")
        assert [db.get_attr(i, "weight") for i in result] == [4, 7, 10]

    def test_limit(self, db):
        result = run_query(db, "select node order by weight desc limit 2")
        assert [db.get_attr(i, "weight") for i in result] == [10, 7]

    def test_compiled_query_reusable(self, db):
        query = compile_query(db.schema, "select node where weight >= 7")
        assert len(query.run(db)) == 2
        db.create("node", weight=99)
        assert len(query.run(db)) == 3


class TestOnApplications:
    def test_late_milestones_query(self):
        mm = MilestoneManager()
        mm.add_milestone("a", scheduled=10, work=12)
        mm.add_milestone("b", scheduled=10, work=3)
        result = run_query(mm.db, "select milestone where late")
        assert len(result) == 1

    def test_order_by_expected_completion(self):
        mm = MilestoneManager()
        mm.add_milestone("a", scheduled=10, work=12)
        mm.add_milestone("b", scheduled=10, work=3)
        mm.add_milestone("c", scheduled=10, work=7)
        result = run_query(
            mm.db, "select milestone order by exp_compl desc limit 1"
        )
        assert mm.db.get_attr(result[0], "local_work") == 12


class TestErrors:
    def test_missing_select(self, db):
        with pytest.raises(DslSyntaxError, match="select"):
            run_query(db, "node where weight > 1")

    def test_unknown_class(self, db):
        with pytest.raises(DslCompileError, match="unknown object class"):
            run_query(db, "select widget")

    def test_unknown_attribute_in_where(self, db):
        with pytest.raises(DslCompileError, match="unknown name"):
            run_query(db, "select node where colour == 1")

    def test_unknown_order_attribute(self, db):
        with pytest.raises(DslCompileError, match="no attribute"):
            run_query(db, "select node order by colour")

    def test_trailing_garbage(self, db):
        with pytest.raises(DslSyntaxError, match="unexpected token"):
            run_query(db, "select node banana")

    def test_limit_requires_integer(self, db):
        with pytest.raises(DslSyntaxError, match="integer"):
            run_query(db, "select node limit many")


class TestDuplicateClauses:
    """Duplicate order/limit clauses must be rejected, not silently last-wins."""

    def test_duplicate_order_by_rejected(self, db):
        with pytest.raises(DslSyntaxError, match="duplicate 'order by'") as err:
            run_query(db, "select node order by weight order by total")
        assert err.value.line == 1
        assert err.value.column == len("select node order by weight ") + 1

    def test_duplicate_limit_rejected(self, db):
        with pytest.raises(DslSyntaxError, match="duplicate 'limit'"):
            run_query(db, "select node limit 2 limit 3")

    def test_order_then_limit_then_order_rejected(self, db):
        with pytest.raises(DslSyntaxError, match="duplicate 'order by'"):
            run_query(db, "select node order by weight limit 2 order by weight")

    def test_limit_either_side_of_order_is_still_one_limit(self, db):
        # A single limit on either side of order by stays legal.
        assert run_query(db, "select node limit 2 order by weight desc") == \
            run_query(db, "select node order by weight desc limit 2")


class TestErrorPositions:
    """Compile errors must carry the offending token's position.

    ``compile_query`` used to raise its own errors with no position and
    hand ``_compile_body`` a hardcoded ``line=1``.
    """

    def test_unknown_class_is_positioned(self, db):
        with pytest.raises(DslCompileError) as err:
            run_query(db, "select widget")
        assert err.value.line == 1
        assert err.value.column == len("select ") + 1

    def test_unknown_class_on_later_line(self, db):
        with pytest.raises(DslCompileError) as err:
            run_query(db, "\n\nselect widget")
        assert err.value.line == 3

    def test_unknown_order_attribute_is_positioned(self, db):
        with pytest.raises(DslCompileError) as err:
            run_query(db, "select node\norder by colour")
        assert err.value.line == 2
        assert err.value.column == len("order by ") + 1

    def test_where_clause_error_positioned_on_its_own_line(self, db):
        with pytest.raises(DslCompileError) as err:
            run_query(db, "select node\nwhere weight > 1\n  and colour == 2")
        assert err.value.line == 3
        assert err.value.column == len("  and ") + 1


class TestOrderingErrors:
    """Unorderable sort keys surface as QueryError, not a raw TypeError."""

    @pytest.fixture
    def patchy_db(self):
        source = """
        object class patchy is
          attributes
            seed : integer;
            val  : any;
          rules
            val = pick(seed);
        end object;
        """
        values = {1: 10, 2: None, 3: "s", 4: 20}
        schema = compile_schema(
            source, functions={"pick": lambda s: values[s]}, freeze=False
        )
        schema.freeze()
        db = Database(schema)
        for seed in (1, 4):
            db.create("patchy", seed=seed)
        return db

    def test_none_value_raises_query_error_naming_instance(self, patchy_db):
        db = patchy_db
        missing = db.create("patchy", seed=2)  # val -> None
        query = compile_query(db.schema, "select patchy order by val")
        for runner in (query.run, query.run_scan):
            with pytest.raises(QueryError) as err:
                runner(db)
            assert err.value.iid == missing
            assert err.value.attr == "val"
            assert "None" in str(err.value)
            assert str(missing) in str(err.value)

    def test_mixed_types_raise_query_error_naming_instance(self, patchy_db):
        db = patchy_db
        odd = db.create("patchy", seed=3)  # val -> "s" amid integers
        query = compile_query(db.schema, "select patchy order by val")
        for runner in (query.run, query.run_scan):
            with pytest.raises(QueryError) as err:
                runner(db)
            assert err.value.iid == odd
            assert err.value.attr == "val"
            assert "str" in str(err.value)

    def test_uniform_keys_still_sort(self, patchy_db):
        db = patchy_db
        result = run_query(db, "select patchy order by val desc")
        assert [db.get_attr(i, "val") for i in result] == [20, 10]
