"""Compiler tests: dependency analysis and rule interpretation."""

import pytest

from repro.core.database import Database
from repro.core.rules import Local, Received
from repro.dsl import compile_schema
from repro.errors import DslCompileError, DslRuntimeError

BASIC = """
relationship dep is
    total : integer from plug;
end relationship;

object class node is
  relationships
    ins  : dep multi socket;
    outs : dep multi plug;
  attributes
    weight : integer;
    total  : integer;
  rules
    total = begin
        acc : integer;
        acc := weight;
        for each d related to ins do
            acc := acc + d.total;
        end for;
        return acc;
    end;
    outs total = total;
end object;
"""


class TestCompiledSchemaWorks:
    def test_end_to_end(self):
        db = Database(compile_schema(BASIC))
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)
        db.connect(b, "ins", a, "outs")
        assert db.get_attr(b, "total") == 3
        db.set_attr(a, "weight", 10)
        assert db.get_attr(b, "total") == 12

    def test_attr_with_rule_promoted_to_derived(self):
        schema = compile_schema(BASIC)
        assert schema.resolved("node").attributes["total"].derived

    def test_dependencies_declared(self):
        schema = compile_schema(BASIC)
        rule = schema.resolved("node").rule_for["total"]
        inputs = set(rule.inputs.values())
        assert Local("weight") in inputs
        assert Received("ins", "total") in inputs


class TestExpressionSemantics:
    def compile_fn(self, expr, attrs="x : integer; y : integer;"):
        source = (
            f"object class c is attributes {attrs} d : integer; "
            f"rules d = {expr}; end;"
        )
        schema = compile_schema(source)
        return schema.resolved("c").rule_for["d"]

    def test_arithmetic(self):
        rule = self.compile_fn("x * 2 + y - 1")
        assert rule.body(l_x=3, l_y=4) == 9

    def test_integer_division(self):
        rule = self.compile_fn("x / y")
        assert rule.body(l_x=7, l_y=2) == 3  # C semantics

    def test_modulo(self):
        rule = self.compile_fn("x % y")
        assert rule.body(l_x=7, l_y=3) == 1

    def test_comparisons(self):
        rule = self.compile_fn("x <= y")
        assert rule.body(l_x=1, l_y=2) is True
        assert rule.body(l_x=3, l_y=2) is False

    def test_boolean_logic(self):
        rule = self.compile_fn("x > 0 and not (y > 0)")
        assert rule.body(l_x=1, l_y=0) is True
        assert rule.body(l_x=1, l_y=1) is False

    def test_constants(self):
        rule = self.compile_fn("TIME0 + 1")
        assert rule.body() == 1

    def test_builtin_functions(self):
        rule = self.compile_fn("later_of(x, y) + min(x, y)")
        assert rule.body(l_x=3, l_y=5) == 8

    def test_custom_functions_and_constants(self):
        source = (
            "object class c is attributes d : integer; "
            "rules d = twice(BASE); end;"
        )
        schema = compile_schema(
            source, functions={"twice": lambda v: 2 * v}, constants={"BASE": 21}
        )
        assert schema.resolved("c").rule_for["d"].body() == 42


class TestBlockSemantics:
    def test_local_variable_default(self):
        source = (
            "object class c is attributes d : integer; rules d = begin "
            "acc : integer; return acc; end; end;"
        )
        schema = compile_schema(source)
        assert schema.resolved("c").rule_for["d"].body() == 0

    def test_if_else(self):
        source = (
            "object class c is attributes x : integer; d : string; "
            "rules d = begin if x > 0 then return \"pos\"; "
            "else return \"neg\"; end if; end; end;"
        )
        rule = compile_schema(source).resolved("c").rule_for["d"]
        assert rule.body(l_x=5) == "pos"
        assert rule.body(l_x=-5) == "neg"

    def test_missing_return_raises(self):
        source = (
            "object class c is attributes d : integer; rules d = begin "
            "x : integer; end; end;"
        )
        rule = compile_schema(source).resolved("c").rule_for["d"]
        with pytest.raises(DslRuntimeError, match="without a return"):
            rule.body()

    def test_for_each_iterates_connection_order(self):
        db = Database(compile_schema(BASIC))
        hub = db.create("node", weight=0)
        for w in (1, 2, 3):
            up = db.create("node", weight=w)
            db.connect(hub, "ins", up, "outs")
        assert db.get_attr(hub, "total") == 6

    def test_loop_with_no_value_reference_gets_implicit_dep(self):
        source = """
        relationship dep is total : integer from plug; end;
        object class c is
          relationships ins : dep multi socket;
          attributes n : integer;
          rules n = begin
              count : integer;
              for each d related to ins do
                  count := count + 1;
              end for;
              return count;
          end;
        end;
        """
        schema = compile_schema(source)
        rule = schema.resolved("c").rule_for["n"]
        assert Received("ins", "total") in set(rule.inputs.values())


class TestCompileErrors:
    def test_unknown_name(self):
        with pytest.raises(DslCompileError, match="unknown name"):
            compile_schema(
                "object class c is attributes d : integer; rules d = ghost; end;"
            )

    def test_unknown_function(self):
        with pytest.raises(DslCompileError, match="unknown function"):
            compile_schema(
                "object class c is attributes d : integer; rules d = frob(1); end;"
            )

    def test_for_each_over_single_port_rejected(self):
        source = """
        relationship dep is total : integer from plug; end;
        object class c is
          relationships one : dep socket;
          attributes d : integer;
          rules d = begin
              for each x related to one do void(x.total); end for;
              return 0;
          end;
        end;
        """
        with pytest.raises(DslCompileError, match="Multi port"):
            compile_schema(source)

    def test_field_ref_on_multi_port_rejected(self):
        source = """
        relationship dep is total : integer from plug; end;
        object class c is
          relationships many : dep multi socket;
          attributes d : integer;
          rules d = many.total;
        end;
        """
        with pytest.raises(DslCompileError, match="For Each"):
            compile_schema(source)

    def test_unknown_flow_value_rejected(self):
        source = """
        relationship dep is total : integer from plug; end;
        object class c is
          relationships one : dep socket;
          attributes d : integer;
          rules d = one.ghost;
        end;
        """
        with pytest.raises(DslCompileError, match="does not receive"):
            compile_schema(source)

    def test_unknown_recovery_function(self):
        source = (
            "object class c is attributes x : integer; "
            "constraints pos : x >= 0 recover fixit; end;"
        )
        with pytest.raises(DslCompileError, match="recovery"):
            compile_schema(source)


class TestSingleValuedPortAccess:
    def test_direct_field_ref_on_single_port(self):
        source = """
        relationship dep is total : integer from plug; end;
        object class consumer is
          relationships one : dep socket;
          attributes d : integer;
          rules d = one.total + 1;
        end;
        object class producer is
          relationships out : dep multi plug;
          attributes v : integer;
          rules out total = v;
        end;
        """
        db = Database(compile_schema(source))
        p = db.create("producer", v=10)
        c = db.create("consumer")
        db.connect(c, "one", p, "out")
        assert db.get_attr(c, "d") == 11

    def test_dangling_single_port_uses_flow_default(self):
        source = """
        relationship dep is total : integer from plug default 7; end;
        object class consumer is
          relationships one : dep socket;
          attributes d : integer;
          rules d = one.total + 1;
        end;
        """
        db = Database(compile_schema(source))
        c = db.create("consumer")
        assert db.get_attr(c, "d") == 8


class TestInheritanceInDsl:
    def test_subclass_uses_supertype_attrs(self):
        source = (
            "object class base is attributes x : integer; end;"
            "object class sub subtype of base is "
            "attributes d : integer; rules d = x + 1; end;"
        )
        db = Database(compile_schema(source))
        iid = db.create("sub", x=4)
        assert db.get_attr(iid, "d") == 5
