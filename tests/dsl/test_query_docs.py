"""docs/QUERY.md is a reference: hold it to the implementation.

Same contract style as ``tests/obs/test_docs.py``: the metric bullets
must equal the live ``index.*`` section, the documented access paths must
equal the planner's, the documented grammar must compile, and the inline
Python snippet must run.
"""

from __future__ import annotations

import pathlib
import re

from repro.core.database import Database
from repro.dsl import compile_schema, run_query
from repro.dsl.query import compile_query
from repro.env.milestones import MilestoneManager
from repro.errors import DslSyntaxError, QueryError, SchemaError

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "QUERY.md"
METRIC_BULLET = re.compile(r"^- `(index(?:\.[a-z_]+)+)`", re.MULTILINE)

ACCESS_PATHS = {"scan", "extent", "index_eq", "index_range", "index_order"}


def test_documented_index_metrics_match_live_section():
    schema = compile_schema(
        "object class item is attributes weight : integer; end object;",
        freeze=False,
    )
    schema.add_index("item", "weight")
    schema.freeze()
    live = {f"index.{key}" for key in Database(schema).indexes.metrics()}
    documented = set(METRIC_BULLET.findall(DOC.read_text()))
    assert documented == live, (
        f"docs/QUERY.md and IndexManager.metrics() disagree: "
        f"undocumented={sorted(live - documented)} "
        f"stale={sorted(documented - live)}"
    )


def test_documented_access_paths_match_planner():
    text = DOC.read_text()
    for path in ACCESS_PATHS:
        assert f"`{path}`" in text, f"access path {path!r} undocumented"


def test_documented_grammar_clauses_compile():
    # Every clause combination the grammar block promises must parse.
    schema = compile_schema(
        "object class item is attributes weight : integer; end object;"
    )
    for text in (
        "select item",
        "select item where weight > 1",
        "select item order by weight",
        "select item order by weight asc",
        "select item order by weight desc",
        "select item limit 3",
        "select item where weight > 1 order by weight desc limit 3",
        "select item limit 3 order by weight",
    ):
        compile_query(schema, text)


def test_documented_duplicate_clause_contract():
    schema = compile_schema(
        "object class item is attributes weight : integer; end object;"
    )
    for text in (
        "select item order by weight order by weight",
        "select item limit 1 limit 2",
    ):
        try:
            compile_query(schema, text)
        except DslSyntaxError as exc:
            assert exc.line is not None and exc.column is not None
        else:  # pragma: no cover - contract violation
            raise AssertionError(f"duplicate clause accepted: {text}")


def test_documented_index_declaration_contract():
    schema = compile_schema(
        """
        object class item is
          attributes weight : integer;
        end object;
        object class big_item subtype of item where weight > 5 is
          attributes big : boolean;
          rules big = true;
        end object;
        """,
        freeze=False,
    )
    schema.add_index("item", "weight")
    schema.drop_index("item", "weight")
    schema.add_index("big_item", "weight")  # documented as a freeze error
    try:
        schema.freeze()
    except SchemaError as exc:
        assert "predicate subtype" in str(exc)
    else:  # pragma: no cover - contract violation
        raise AssertionError("index on a predicate subtype was accepted")


def test_documented_query_error_contract():
    schema = compile_schema(
        """
        object class item is
          attributes
            seed : integer;
            val  : any;
          rules
            val = pick(seed);
        end object;
        """,
        functions={"pick": lambda s: None if s == 0 else s},
        freeze=False,
    )
    schema.freeze()
    db = Database(schema)
    db.create("item", seed=1)
    bad = db.create("item", seed=0)
    try:
        run_query(db, "select item order by val")
    except QueryError as exc:
        assert exc.iid == bad and exc.attr == "val"
    else:  # pragma: no cover - contract violation
        raise AssertionError("unorderable keys did not raise QueryError")


def test_documented_milestone_snippet_runs():
    mm = MilestoneManager()
    mm.add_milestone("a", scheduled=10, work=12)
    mm.add_milestone("b", scheduled=10, work=11)
    mm.add_milestone("c", scheduled=10, work=3)
    late = run_query(
        mm.db,
        "select milestone where late and local_work > 5 "
        "order by exp_compl desc limit 3",
    )
    assert [mm.db.get_attr(i, "local_work") for i in late] == [12, 11]
