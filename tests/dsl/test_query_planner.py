"""The index-backed query planner.

Every test asserts two things: the planner picked the expected access
path, and the result is identical to :meth:`Query.run_scan` -- the naive
reference the indexed paths must reproduce byte for byte.
"""

import pytest

from repro.core.database import Database
from repro.dsl import compile_schema
from repro.dsl.query import compile_query, run_query
from repro.errors import QueryError
from repro.index import INDEX_DISABLED_ENV
from repro.obs.events import IndexSweep, QueryPlanned

SOURCE = """
object class item is
  attributes
    bucket : integer;
    score  : integer;
    tag    : string;
    twice  : integer;
    oddly  : any;
  rules
    twice = bucket * 2;
    oddly = mixup(score);
end object;

object class heavy_item subtype of item where score > 50 is
  attributes
    heavy : boolean;
  rules
    heavy = true;
end object;
"""


def mixup(score):
    # Values of three incomparable kinds, keyed off the score.
    if score % 7 == 0:
        return None
    if score % 3 == 0:
        return f"s{score}"
    return score


@pytest.fixture
def db():
    schema = compile_schema(SOURCE, functions={"mixup": mixup}, freeze=False)
    for attr in ("bucket", "score", "twice", "oddly"):
        schema.add_index("item", attr)
    schema.freeze()
    db = Database(schema, pool_capacity=256)
    for i in range(120):
        db.create("item", bucket=i % 10, score=(i * 37) % 97, tag=f"t{i % 4}")
    return db


def check(db, text, path, **kwargs):
    """Plan, assert the access path, and A/B run() against run_scan()."""
    query = compile_query(db.schema, text, **kwargs)
    plan = query.plan(db)
    assert plan.access_path == path, (text, plan.access_path)
    assert query.run(db) == query.run_scan(db)
    return plan


class TestAccessPaths:
    def test_equality_uses_index(self, db):
        plan = check(db, "select item where bucket == 3", "index_eq")
        assert plan.cost < plan.scan_cost

    def test_range_uses_index(self, db):
        check(db, "select item where score >= 90", "index_range")
        check(db, "select item where score < 4", "index_range")
        check(db, "select item where 90 <= score", "index_range")

    def test_order_by_walks_index(self, db):
        plan = check(db, "select item order by score desc limit 5", "index_order")
        assert db.indexes.stats.short_circuits >= 1
        check(db, "select item order by score", "index_order")

    def test_unindexed_attribute_scans(self, db):
        check(db, "select item where tag == \"t1\"", "scan")

    def test_select_all_scans(self, db):
        check(db, "select item", "scan")

    def test_residual_conjuncts_filter_index_hits(self, db):
        check(
            db,
            "select item where bucket == 3 and score > 40 and tag <> \"t0\"",
            "index_eq",
        )

    def test_planner_prefers_cheaper_sarg(self, db):
        # score == 0 hits ~1 instance, bucket == 0 hits 12: the planner
        # must probe the more selective index.
        plan = check(db, "select item where bucket == 0 and score == 0", "index_eq")
        assert plan.sarg.attr == "score"

    def test_derived_attribute_index(self, db):
        plan = check(db, "select item where twice == 6", "index_eq")
        assert plan.index.derived

    def test_extent_answers_predicate_class(self, db):
        check(db, "select heavy_item", "extent")

    def test_supertype_index_serves_predicate_subtype(self, db):
        run_query(db, "select heavy_item")  # resolve the extent first
        plan = check(db, "select heavy_item where bucket == 4", "index_eq")
        assert plan.index.class_name == "item"


class TestSoundnessFallbacks:
    def test_mixed_type_keys_degrade_range_to_scan(self, db):
        # oddly holds ints, strings, and Nones: no ordered probe is sound.
        query = compile_query(db.schema, "select item where oddly > 10")
        run_query(db, "select item where oddly == 37")  # resolve the index
        plan = query.plan(db)
        assert plan.access_path == "scan"
        with pytest.raises(TypeError):
            query.run_scan(db)
        with pytest.raises(TypeError):
            query.run(db)

    def test_mixed_type_equality_still_indexed(self, db):
        # Equality never compares across keys, so it stays sound.
        check(db, "select item where oddly == 37", "index_eq")

    def test_order_by_mixed_attribute_raises_query_error_both_paths(self, db):
        query = compile_query(db.schema, "select item order by oddly")
        with pytest.raises(QueryError) as scan_err:
            query.run_scan(db)
        with pytest.raises(QueryError) as run_err:
            query.run(db)
        assert str(scan_err.value) == str(run_err.value)

    def test_disabled_indexes_fall_back_to_scan(self, db, monkeypatch):
        monkeypatch.setenv(INDEX_DISABLED_ENV, "1")
        schema = compile_schema(SOURCE, functions={"mixup": mixup}, freeze=False)
        schema.add_index("item", "bucket")
        schema.freeze()
        plain = Database(schema)
        for i in range(20):
            plain.create("item", bucket=i % 3, score=i)
        query = compile_query(schema, "select item where bucket == 1")
        assert query.plan(plain).access_path == "scan"
        assert query.run(plain) == query.run_scan(plain)


class TestFreshness:
    def test_index_sees_updates_between_runs(self, db):
        query = compile_query(db.schema, "select item where bucket == 3")
        before = query.run(db)
        moved = before[0]
        db.set_attr(moved, "bucket", 4)
        after = query.run(db)
        assert moved not in after
        assert after == query.run_scan(db)

    def test_derived_index_swept_lazily(self, db):
        query = compile_query(db.schema, "select item where twice == 8")
        baseline = query.run(db)
        target = db.instances_of("item")[0]
        db.set_attr(target, "bucket", 4)  # twice -> 8, lazily
        result = query.run(db)
        assert target in result
        assert result == query.run_scan(db)
        assert baseline != result

    def test_extent_tracks_flips_between_runs(self, db):
        query = compile_query(db.schema, "select heavy_item")
        before = set(query.run(db))
        light = next(
            i for i in db.instances_of("item") if db.get_attr(i, "score") <= 50
        )
        db.set_attr(light, "score", 99)
        after = set(query.run(db))
        assert light not in before and light in after
        assert sorted(after) == query.run_scan(db)


class TestObservability:
    def test_query_planned_and_sweep_events(self, db):
        events = []
        db.obs.hub.subscribe(events.append)
        run_query(db, "select item where twice == 6")
        planned = [e for e in events if isinstance(e, QueryPlanned)]
        assert planned and planned[0].access_path == "index_eq"
        assert planned[0].index_attr == "twice"
        assert planned[0].cost <= planned[0].scan_cost

    def test_stats_count_paths(self, db):
        stats = db.indexes.stats
        base = stats.queries
        run_query(db, "select item where bucket == 1")
        run_query(db, "select heavy_item")
        run_query(db, "select item where tag == \"t0\"")
        assert stats.queries == base + 3
        assert stats.indexed_queries >= 1
        assert stats.extent_queries >= 1
        assert stats.scan_queries >= 1


class TestNoCompileEngine:
    def test_planner_consistent_without_compiled_rules(self, monkeypatch):
        from repro.compile import COMPILE_DISABLED_ENV

        monkeypatch.setenv(COMPILE_DISABLED_ENV, "1")
        schema = compile_schema(SOURCE, functions={"mixup": mixup}, freeze=False)
        schema.add_index("item", "twice")
        schema.freeze()
        db = Database(schema)
        for i in range(30):
            db.create("item", bucket=i % 5, score=i)
        query = compile_query(schema, "select item where twice == 4")
        assert query.plan(db).access_path == "index_eq"
        assert query.run(db) == query.run_scan(db)
