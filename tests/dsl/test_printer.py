"""Pretty-printer round-trip tests."""

import pytest

from repro.core.database import Database
from repro.dsl import compile_schema
from repro.dsl.printer import UnprintableRule, format_schema
from repro.env.milestones import MILESTONE_SCHEMA
from repro.env.project import PROJECT_SCHEMA


def behaviour_fingerprint(schema) -> dict:
    """A structural fingerprint: classes, attrs, ports, rule targets."""
    result = {}
    for name in sorted(schema.classes):
        resolved = schema.resolved(name)
        result[name] = (
            sorted(resolved.attributes),
            sorted(resolved.ports),
            sorted(resolved.rule_for),
            sorted(c.name for c in resolved.constraints),
        )
    return result


class TestRoundTrip:
    @pytest.mark.parametrize("source", [MILESTONE_SCHEMA, PROJECT_SCHEMA])
    def test_structure_survives(self, source):
        original = compile_schema(source)
        printed = format_schema(original)
        reparsed = compile_schema(printed)
        assert behaviour_fingerprint(original) == behaviour_fingerprint(
            reparsed
        )

    def test_milestone_behaviour_survives(self):
        original = compile_schema(MILESTONE_SCHEMA)
        reparsed = compile_schema(format_schema(original))
        values = []
        for schema in (original, reparsed):
            db = Database(schema)
            a = db.create("milestone", local_work=5, sched_compl=4)
            b = db.create("milestone", local_work=2, sched_compl=10)
            db.connect(b, "depends_on", a, "consists_of")
            values.append(
                (db.get_attr(b, "exp_compl"), db.get_attr(b, "late"))
            )
        assert values[0] == values[1] == (7, False)

    def test_double_round_trip_stable(self):
        schema1 = compile_schema(MILESTONE_SCHEMA)
        text1 = format_schema(schema1)
        text2 = format_schema(compile_schema(text1))
        assert text1 == text2

    def test_subtype_where_printed(self):
        source = MILESTONE_SCHEMA + """
        object class very_late_milestone subtype of milestone
            where exp_compl > sched_compl + 10 is
          attributes
            note : string = "escalate";
        end object;
        """
        printed = format_schema(compile_schema(source))
        assert "subtype of milestone where" in printed
        reparsed = compile_schema(printed)
        db = Database(reparsed)
        m = db.create("milestone", local_work=50, sched_compl=5)
        assert db.is_member(m, "very_late_milestone")

    def test_constraint_printed(self):
        printed = format_schema(compile_schema(PROJECT_SCHEMA))
        assert "nonnegative_cost : local_cost >= 0;" in printed


class TestNativeRules:
    def test_strict_rejects_native_rules(self):
        from repro.workloads import sum_node_schema

        with pytest.raises(UnprintableRule):
            format_schema(sum_node_schema())

    def test_lenient_emits_markers(self):
        from repro.workloads import sum_node_schema

        printed = format_schema(sum_node_schema(), strict=False)
        assert "/* native rule */" in printed


class TestExpressions:
    def roundtrip_expr(self, expr_text):
        source = (
            "object class c is attributes x : integer; y : integer; "
            f"d : integer; rules d = {expr_text}; end;"
        )
        printed = format_schema(compile_schema(source))
        reparsed = compile_schema(printed)
        rule1 = compile_schema(source).resolved("c").rule_for["d"]
        rule2 = reparsed.resolved("c").rule_for["d"]
        for x, y in [(1, 2), (5, 3), (-4, 0)]:
            kwargs = {}
            if "l_x" in rule1.inputs:
                kwargs["l_x"] = x
            if "l_y" in rule1.inputs:
                kwargs["l_y"] = y
            assert rule1.body(**kwargs) == rule2.body(**kwargs)

    def test_precedence_preserved(self):
        self.roundtrip_expr("x + y * 2")
        self.roundtrip_expr("(x + y) * 2")
        self.roundtrip_expr("x - (y - 1)")

    def test_boolean_and_comparison(self):
        self.roundtrip_expr("x > 0 and not (y > 0)")

    def test_calls_and_constants(self):
        self.roundtrip_expr("later_of(x, y) + TIME0")
