"""Property test: tokenize -> parse -> print -> re-parse is the identity.

Hypothesis generates random (syntactically valid, not necessarily
semantically meaningful) schema declarations, prints them with
:func:`repro.dsl.printer.format_schema_decl`, re-parses the text, and
compares the two ASTs after normalising source spans away.  The parser
never resolves names, so identifiers can be arbitrary -- which lets the
generator cover far more shapes than the hand-written fixtures.

Literal values are compared with their types (``True == 1`` in Python, but
``true`` and ``1`` are different programs).
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import ast
from repro.dsl.lexer import KEYWORDS
from repro.dsl.parser import parse
from repro.dsl.printer import format_expr, format_schema_decl

# -- generators -------------------------------------------------------------

_ident = (
    st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True)
    .filter(lambda s: s.lower() not in KEYWORDS)
)

# Reals must print without an exponent for the lexer to read them back.
_real = st.integers(min_value=0, max_value=10**6).map(lambda n: n / 8 + 0.5)
_string = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters="\n", min_codepoint=32
    ),
    max_size=12,
)
_literal_value = st.one_of(
    st.booleans(),
    st.integers(min_value=0, max_value=10**9),
    _real,
    _string,
)

_leaf_expr = st.one_of(
    _literal_value.map(ast.Literal),
    _ident.map(ast.Name),
    st.builds(ast.FieldRef, _ident, _ident),
)

_COMPARE = ("==", "!=", "<", "<=", ">", ">=")
_ARITH = ("+", "-", "*", "/", "%")


def _compound(children: st.SearchStrategy) -> st.SearchStrategy:
    return st.one_of(
        st.builds(
            ast.Binary,
            st.sampled_from(_ARITH + _COMPARE + ("and", "or")),
            children,
            children,
        ),
        st.builds(ast.Unary, st.sampled_from(("-", "not")), children),
        st.builds(
            ast.Call, _ident, st.lists(children, max_size=3).map(tuple)
        ),
    )


_expr = st.recursive(_leaf_expr, _compound, max_leaves=12)

_var_decl = st.builds(ast.VarDecl, _ident, _ident)
_assign = st.builds(ast.Assign, _ident, _expr)
_return = st.builds(ast.Return, _expr)
_expr_stmt = st.builds(ast.ExprStmt, _expr)


def _stmt_block(children: st.SearchStrategy) -> st.SearchStrategy:
    stmts = st.lists(children, max_size=3).map(tuple)
    return st.one_of(
        st.builds(ast.ForEach, _ident, _ident, stmts),
        st.builds(ast.If, _expr, stmts, stmts),
    )


_stmt = st.recursive(
    st.one_of(_var_decl, _assign, _return, _expr_stmt),
    _stmt_block,
    max_leaves=8,
)

_rule_body = st.one_of(
    _expr,
    st.builds(ast.Block, st.lists(_stmt, max_size=4).map(tuple)),
)

_rule = st.one_of(
    st.builds(
        ast.RuleDecl,
        target_attr=_ident,
        target_port=st.none(),
        target_value=st.none(),
        body=_rule_body,
    ),
    st.builds(
        ast.RuleDecl,
        target_attr=st.none(),
        target_port=_ident,
        target_value=_ident,
        body=_rule_body,
    ),
)

_attr = st.builds(
    ast.AttrDecl,
    _ident,
    _ident,
    st.booleans(),
    st.one_of(st.none(), _literal_value),
)
_port = st.builds(
    ast.PortDecl,
    _ident,
    _ident,
    st.sampled_from(("plug", "socket")),
    st.booleans(),
)
_constraint = st.builds(
    ast.ConstraintDecl, _ident, _expr, st.one_of(st.none(), _ident)
)

_flow = st.builds(
    ast.FlowDeclNode,
    _ident,
    _ident,
    st.sampled_from(("plug", "socket")),
    st.one_of(st.none(), _literal_value),
)
_relationship = st.builds(
    ast.RelationshipDecl, _ident, st.lists(_flow, max_size=3).map(tuple)
)

_class = st.builds(
    ast.ClassDecl,
    name=_ident,
    supertype=st.one_of(st.none(), _ident),
    where=st.none(),
    ports=st.lists(_port, max_size=3).map(tuple),
    attrs=st.lists(_attr, max_size=3).map(tuple),
    rules=st.lists(_rule, max_size=3).map(tuple),
    constraints=st.lists(_constraint, max_size=2).map(tuple),
) | st.builds(
    # 'where' requires a supertype, so generate that shape separately.
    ast.ClassDecl,
    name=_ident,
    supertype=_ident,
    where=_expr,
    ports=st.lists(_port, max_size=2).map(tuple),
    attrs=st.lists(_attr, max_size=2).map(tuple),
    rules=st.lists(_rule, max_size=2).map(tuple),
    constraints=st.lists(_constraint, max_size=2).map(tuple),
)

_schema = st.builds(
    ast.SchemaDecl,
    st.lists(_relationship, max_size=2).map(tuple),
    st.lists(_class, max_size=2).map(tuple),
)


# -- normalisation ----------------------------------------------------------


def _normalise(node):
    """Strip spans; tag literal-ish values with their type so that the
    comparison distinguishes ``true`` from ``1`` and ``1`` from ``1.0``."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        fields = {}
        for f in dataclasses.fields(node):
            if f.name in ("line", "column"):
                continue
            fields[f.name] = _normalise(getattr(node, f.name))
        return (type(node).__name__, tuple(sorted(fields.items())))
    if isinstance(node, tuple):
        return tuple(_normalise(item) for item in node)
    if isinstance(node, (bool, int, float, str)) or node is None:
        return (type(node).__name__, node)
    raise AssertionError(f"unexpected AST payload: {node!r}")


# -- properties -------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(_schema)
def test_print_parse_roundtrip(decl: ast.SchemaDecl) -> None:
    source = format_schema_decl(decl)
    reparsed = parse(source)
    assert _normalise(reparsed) == _normalise(decl), source


@settings(max_examples=120, deadline=None)
@given(_expr)
def test_expr_roundtrip_via_constraint(expr: ast.Expr) -> None:
    # Wrap the expression in a minimal constraint so it is parseable at
    # the top level; the printer must parenthesise enough that the parse
    # tree survives.
    decl = ast.ClassDecl(
        name="c",
        supertype=None,
        where=None,
        ports=(),
        attrs=(),
        rules=(),
        constraints=(ast.ConstraintDecl("k", expr, None),),
    )
    source = format_schema_decl(ast.SchemaDecl((), (decl,)))
    reparsed = parse(source)
    got = reparsed.classes[0].constraints[0].predicate
    assert _normalise(got) == _normalise(expr), format_expr(expr)
