"""Milestone-manager tests (experiment E8, Figure 1)."""

import pytest

from repro.env.milestones import MilestoneError, MilestoneManager


@pytest.fixture
def project():
    mm = MilestoneManager()
    mm.add_milestone("design", scheduled=10, work=8)
    mm.add_milestone("build", scheduled=25, work=12)
    mm.add_milestone("test", scheduled=32, work=5)
    mm.depends("build", "design")
    mm.depends("test", "build")
    return mm


class TestFigure1Semantics:
    def test_expected_completion_sums_chain(self, project):
        assert project.expected("design") == 8
        assert project.expected("build") == 20
        assert project.expected("test") == 25

    def test_late_flag(self, project):
        assert not project.is_late("test")
        project.slip("design", 10)
        assert project.expected("test") == 35
        assert project.is_late("test")

    def test_ripple_through_diamond(self):
        mm = MilestoneManager()
        mm.add_milestone("root", scheduled=5, work=2)
        mm.add_milestone("left", scheduled=10, work=3)
        mm.add_milestone("right", scheduled=10, work=6)
        mm.add_milestone("join", scheduled=20, work=1)
        mm.depends("left", "root")
        mm.depends("right", "root")
        mm.depends("join", "left")
        mm.depends("join", "right")
        # join waits for the later of left (5) and right (8): 8 + 1 = 9.
        assert mm.expected("join") == 9
        mm.slip("left", 10)  # left now 15, becomes the critical input
        assert mm.expected("join") == 16

    def test_independent_milestone_untouched(self, project):
        project.add_milestone("docs", scheduled=50, work=1)
        project.slip("design", 100)
        assert project.expected("docs") == 1

    def test_drop_dependency(self, project):
        project.drop_dependency("test", "build")
        assert project.expected("test") == 5

    def test_reschedule_changes_lateness_only(self, project):
        project.slip("design", 10)
        assert project.is_late("test")
        project.reschedule("test", 40)
        assert not project.is_late("test")
        assert project.expected("test") == 35

    def test_report_rows(self, project):
        rows = project.report()
        assert [r[0] for r in rows] == ["build", "design", "test"]
        assert rows[1] == ("design", 10, 8, False)


class TestCriticalPath:
    def test_follows_latest_dependency(self, project):
        project.add_milestone("docs", scheduled=100, work=1)
        project.depends("test", "docs")
        assert project.critical_path("test") == ["design", "build", "test"]
        project.slip("docs", 30)  # docs (31) now dominates build (20)
        assert project.critical_path("test") == ["docs", "test"]

    def test_single_node_path(self, project):
        assert project.critical_path("design") == ["design"]


class TestVeryLateExtension:
    def test_requires_activation(self, project):
        with pytest.raises(MilestoneError, match="add_very_late_support"):
            project.very_late_milestones()

    def test_membership_tracks_threshold(self, project):
        project.add_very_late_support(limit=5)
        assert project.very_late_milestones() == []
        project.slip("design", 7)  # design exp 15 vs sched 10: 5 over, not > 5
        assert project.very_late_milestones() == []
        project.slip("design", 1)  # now 6 over
        assert "design" in project.very_late_milestones()

    def test_existing_tools_unaffected(self, project):
        """Section 4: the extension changes no tool code; the same slip()
        entry point now also drives very_late membership."""
        project.add_very_late_support(limit=3)
        project.slip("build", 20)
        assert project.is_late("build")  # old tool behaviour intact
        assert "build" in project.very_late_milestones()
        assert "test" in project.very_late_milestones()

    def test_recovery_removes_membership(self, project):
        project.add_very_late_support(limit=3)
        project.slip("design", 10)
        assert project.very_late_milestones() != []
        project.set_work("design", 8)  # back to plan
        assert project.very_late_milestones() == []


class TestErrors:
    def test_duplicate_name(self, project):
        with pytest.raises(MilestoneError):
            project.add_milestone("design", 1, 1)

    def test_unknown_name(self, project):
        with pytest.raises(MilestoneError):
            project.expected("ghost")

    def test_dependency_cycle_rejected(self, project):
        from repro.errors import CycleError

        with pytest.raises(CycleError):
            project.depends("design", "test")
