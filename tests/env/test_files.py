"""Simulated file system and command runner tests."""

import pytest

from repro.core.atoms import TIME_FUTURE
from repro.env.files import (
    FileError,
    SimulatedFileSystem,
    make_default_runner,
    toy_compiler,
)


class TestFileSystem:
    def test_write_and_read(self):
        fs = SimulatedFileSystem()
        fs.write("a.txt", "hello")
        assert fs.read("a.txt") == "hello"
        assert fs.exists("a.txt")

    def test_mtimes_monotonic(self):
        fs = SimulatedFileSystem()
        t1 = fs.write("a", "1")
        t2 = fs.write("b", "2")
        t3 = fs.write("a", "3")
        assert t1 < t2 < t3
        assert fs.mod_time("a") == t3

    def test_missing_file_mod_time_is_distant_future(self):
        fs = SimulatedFileSystem()
        assert fs.mod_time("ghost") == TIME_FUTURE

    def test_touch_bumps_mtime_keeps_content(self):
        fs = SimulatedFileSystem()
        fs.write("a", "body")
        old = fs.mod_time("a")
        fs.touch("a")
        assert fs.mod_time("a") > old
        assert fs.read("a") == "body"

    def test_touch_creates_empty_file(self):
        fs = SimulatedFileSystem()
        fs.touch("new")
        assert fs.exists("new") and fs.read("new") == ""

    def test_delete(self):
        fs = SimulatedFileSystem()
        fs.write("a", "x")
        fs.delete("a")
        assert not fs.exists("a")
        with pytest.raises(FileError):
            fs.delete("a")

    def test_read_missing_raises(self):
        fs = SimulatedFileSystem()
        with pytest.raises(FileError):
            fs.read("ghost")

    def test_names_sorted(self):
        fs = SimulatedFileSystem()
        fs.write("b", "")
        fs.write("a", "")
        assert fs.names() == ["a", "b"]


class TestCommandRunner:
    def test_journal_records_commands(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        fs.write("x.c", "src")
        runner.run("cc -o x.o x.c")
        assert runner.commands_run() == ["cc -o x.o x.c"]
        assert fs.exists("x.o")

    def test_unknown_command_rejected(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        with pytest.raises(FileError, match="no handler"):
            runner.run("rm -rf /")

    def test_empty_command_rejected(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        with pytest.raises(FileError, match="empty"):
            runner.run("   ")

    def test_duplicate_handler_rejected(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        with pytest.raises(FileError):
            runner.register("cc", toy_compiler)

    def test_clear_journal(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        runner.run("touch a")
        runner.clear_journal()
        assert runner.commands_run() == []


class TestToyCompiler:
    def test_output_embeds_inputs(self):
        fs = SimulatedFileSystem()
        fs.write("a.c", "A")
        fs.write("b.c", "B")
        toy_compiler(fs, "cc -o out a.c b.c")
        assert fs.read("out") == "compiled([a.c:A]+[b.c:B])"

    def test_missing_input_rejected(self):
        fs = SimulatedFileSystem()
        with pytest.raises(FileError, match="missing input"):
            toy_compiler(fs, "cc -o out ghost.c")

    def test_bad_shape_rejected(self):
        fs = SimulatedFileSystem()
        with pytest.raises(FileError, match="parse"):
            toy_compiler(fs, "cc out in")

    def test_linker(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        fs.write("a.o", "OA")
        fs.write("b.o", "OB")
        runner.run("ld -o app a.o b.o")
        assert fs.read("app") == "linked(OA+OB)"
