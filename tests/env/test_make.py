"""Make-facility tests (experiment E9): selective, ordered recompilation."""

import pytest

from repro.env.files import SimulatedFileSystem, make_default_runner
from repro.env.make import Figure4Make, MakeError, MakeFacility


@pytest.fixture
def world():
    fs = SimulatedFileSystem()
    runner = make_default_runner(fs)
    for src in ("a.c", "b.c", "lib.h"):
        fs.write(src, f"src:{src}")
    mk = MakeFacility(fs, runner)
    mk.add_rule("lib.h")
    mk.add_rule("a.c")
    mk.add_rule("b.c")
    mk.add_rule("a.o", "cc -o a.o a.c lib.h", depends_on=["a.c", "lib.h"])
    mk.add_rule("b.o", "cc -o b.o b.c lib.h", depends_on=["b.c", "lib.h"])
    mk.add_rule("app", "ld -o app a.o b.o", depends_on=["a.o", "b.o"])
    return fs, runner, mk


class TestInitialBuild:
    def test_builds_everything_in_dependency_order(self, world):
        fs, runner, mk = world
        commands = mk.build("app")
        assert commands[-1] == "ld -o app a.o b.o"
        assert set(commands[:-1]) == {
            "cc -o a.o a.c lib.h",
            "cc -o b.o b.c lib.h",
        }
        assert fs.exists("app")

    def test_second_build_is_noop(self, world):
        __, __, mk = world
        mk.build("app")
        assert mk.build("app") == []

    def test_partial_target(self, world):
        fs, __, mk = world
        commands = mk.build("a.o")
        assert commands == ["cc -o a.o a.c lib.h"]
        assert not fs.exists("app")


class TestSelectiveRebuild:
    def test_leaf_edit_rebuilds_only_affected(self, world):
        fs, __, mk = world
        mk.build("app")
        fs.write("b.c", "src:b.c v2")
        mk.note_file_changed("b.c")
        commands = mk.build("app")
        assert commands == ["cc -o b.o b.c lib.h", "ld -o app a.o b.o"]

    def test_shared_header_rebuilds_both_objects(self, world):
        fs, __, mk = world
        mk.build("app")
        fs.write("lib.h", "src:lib.h v2")
        mk.note_file_changed("lib.h")
        commands = mk.build("app")
        assert len(commands) == 3  # both .o files plus the link

    def test_out_of_date_report(self, world):
        fs, __, mk = world
        mk.build("app")
        assert mk.out_of_date_targets() == []
        fs.write("a.c", "v2")
        mk.note_file_changed("a.c")
        assert mk.out_of_date_targets() == ["a.o", "app"]

    def test_deleted_intermediate_rebuilt(self, world):
        fs, __, mk = world
        mk.build("app")
        fs.delete("a.o")
        mk.note_file_changed("a.o")
        commands = mk.build("app")
        assert "cc -o a.o a.c lib.h" in commands

    def test_needs_rebuild_is_derived(self, world):
        fs, __, mk = world
        mk.build("app")
        assert not mk.needs_rebuild("app")
        fs.write("a.c", "v3")
        mk.note_file_changed("a.c")
        # No explicit recomputation request anywhere in between: the
        # database's incremental engine supplies the fresh answer.
        assert mk.needs_rebuild("app")


class TestErrors:
    def test_unknown_target(self, world):
        __, __, mk = world
        with pytest.raises(MakeError, match="no rule"):
            mk.build("ghost")

    def test_duplicate_rule(self, world):
        __, __, mk = world
        with pytest.raises(MakeError, match="already exists"):
            mk.add_rule("a.c")

    def test_missing_source_without_command(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        mk = MakeFacility(fs, runner)
        mk.add_rule("ghost.c")
        mk.add_rule("x.o", "cc -o x.o ghost.c", depends_on=["ghost.c"])
        with pytest.raises(Exception):
            mk.build("x.o")

    def test_dependency_cycle_rejected(self, world):
        fs, runner, mk = world
        # make_rule cycles are data cycles: the connect is refused.
        from repro.errors import CycleError

        with pytest.raises((MakeError, CycleError)):
            mk.add_dependency("a.c", "app")
            mk.build("app")


class TestFigure4Literal:
    @pytest.fixture
    def f4_world(self):
        fs = SimulatedFileSystem()
        runner = make_default_runner(fs)
        fs.write("x.c", "x src")
        f4 = Figure4Make(fs, runner)
        f4.add_rule("x.c")
        f4.add_rule("x.o", "cc -o x.o x.c", depends_on=["x.c"])
        f4.add_rule("prog", "ld -o prog x.o", depends_on=["x.o"])
        return fs, runner, f4

    def test_initial_build(self, f4_world):
        fs, __, f4 = f4_world
        commands = f4.build("prog")
        assert commands == ["cc -o x.o x.c", "ld -o prog x.o"]
        assert fs.exists("prog")

    def test_noop_rebuild(self, f4_world):
        __, __, f4 = f4_world
        f4.build("prog")
        assert f4.build("prog") == []

    def test_selective_rebuild_after_edit(self, f4_world):
        fs, __, f4 = f4_world
        f4.build("prog")
        fs.write("x.c", "x v2")
        commands = f4.build("prog")
        assert commands == ["cc -o x.o x.c", "ld -o prog x.o"]

    def test_unknown_target(self, f4_world):
        __, __, f4 = f4_world
        with pytest.raises(MakeError):
            f4.build("ghost")
