"""Project master database tests."""

import pytest

from repro.env.project import ProjectDatabase, ProjectError
from repro.errors import TransactionAborted


@pytest.fixture
def project():
    p = ProjectDatabase()
    p.add_component("system", cost=10)
    p.add_component("backend", cost=20, parent="system")
    p.add_component("frontend", cost=15, parent="system")
    p.add_component("auth", cost=8, parent="backend")
    return p


class TestCostRollup:
    def test_total_cost_recursive(self, project):
        assert project.total_cost("auth") == 8
        assert project.total_cost("backend") == 28
        assert project.total_cost("system") == 53

    def test_cost_change_ripples_up(self, project):
        project.set_cost("auth", 30)
        assert project.total_cost("backend") == 50
        assert project.total_cost("system") == 75

    def test_move_component_adjusts_both_sides(self, project):
        project.move_component("auth", "frontend")
        assert project.total_cost("backend") == 20
        assert project.total_cost("frontend") == 23
        assert project.total_cost("system") == 53  # overall unchanged

    def test_move_to_root(self, project):
        project.move_component("auth", None)
        assert project.total_cost("system") == 45


class TestBugTracking:
    def test_open_bug_weight_aggregates(self, project):
        project.file_bug("auth", "leak", severity=7)
        project.file_bug("frontend", "typo", severity=1)
        assert project.open_bug_weight("auth") == 7
        assert project.open_bug_weight("backend") == 7
        assert project.open_bug_weight("system") == 8

    def test_health_thresholds(self, project):
        assert project.health("system") == "green"
        project.file_bug("auth", "minor", severity=2)
        assert project.health("system") == "amber"
        project.file_bug("auth", "major", severity=9)
        assert project.health("system") == "red"

    def test_closing_bug_restores_health(self, project):
        bug = project.file_bug("auth", "leak", severity=12)
        assert project.health("system") == "red"
        project.close_bug(bug)
        assert project.health("system") == "green"
        project.reopen_bug(bug)
        assert project.health("system") == "red"

    def test_status_report(self, project):
        project.file_bug("backend", "slow", severity=3)
        rows = {row[0]: row for row in project.status_report()}
        assert rows["backend"] == ("backend", 28, 3, "amber")
        assert rows["auth"] == ("auth", 8, 0, "green")


class TestConstraints:
    def test_negative_cost_vetoed(self, project):
        with pytest.raises(TransactionAborted):
            project.set_cost("auth", -1)
        assert project.total_cost("auth") == 8

    def test_zero_severity_bug_vetoed(self, project):
        with pytest.raises(TransactionAborted):
            project.file_bug("auth", "non-bug", severity=0)


class TestErrors:
    def test_duplicate_component(self, project):
        with pytest.raises(ProjectError):
            project.add_component("auth")

    def test_unknown_component(self, project):
        with pytest.raises(ProjectError):
            project.total_cost("ghost")

    def test_unknown_bug(self, project):
        with pytest.raises(ProjectError):
            project.close_bug(99)
