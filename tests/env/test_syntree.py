"""Syntax-directed editing tests (the paper's attribute-grammar lineage)."""

import pytest

from repro.env.syntree import ExpressionTree, SynTreeError


@pytest.fixture
def tree():
    return ExpressionTree()


class TestConstruction:
    def test_literal_value(self, tree):
        leaf = tree.literal(7)
        assert tree.value(leaf) == 7
        assert tree.text(leaf) == "7"

    def test_simple_operation(self, tree):
        node = tree.operation("+", tree.literal(2), tree.literal(3))
        assert tree.value(node) == 5
        assert tree.text(node) == "2 + 3"
        assert tree.depth(node) == 2

    def test_parse_infix(self, tree):
        root = tree.parse("1 + 2 * 3")
        assert tree.value(root) == 7
        assert tree.text(root) == "1 + 2 * 3"

    def test_parse_respects_parentheses(self, tree):
        root = tree.parse("(1 + 2) * 3")
        assert tree.value(root) == 9
        assert tree.text(root) == "(1 + 2) * 3"

    def test_unknown_operator_rejected(self, tree):
        with pytest.raises(SynTreeError):
            tree.operation("%", tree.literal(1), tree.literal(2))


class TestPrettyPrinting:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2 + 3", "1 + 2 + 3"),
            ("1 - (2 - 3)", "1 - (2 - 3)"),
            ("2 * (3 + 4)", "2 * (3 + 4)"),
            ("(2 + 3) * (4 - 1)", "(2 + 3) * (4 - 1)"),
            ("8 / 4 / 2", "8 / 4 / 2"),
        ],
    )
    def test_minimal_parentheses(self, tree, source, expected):
        root = tree.parse(source)
        assert tree.text(root) == expected

    def test_printed_text_reparses_to_same_value(self, tree):
        root = tree.parse("(1 + 2) * 3 - 10 / 2")
        printed = tree.text(root)
        reparsed = tree.parse(printed)
        assert tree.value(reparsed) == tree.value(root)


class TestIncrementalEditing:
    def test_leaf_edit_updates_root(self, tree):
        root = tree.parse("1 + 2 * 3")
        leaves = tree.db.instances_of("literal")
        one = next(l for l in leaves if tree.db.get_attr(l, "number") == 1)
        tree.set_literal(one, 100)
        assert tree.value(root) == 106
        assert tree.text(root) == "100 + 2 * 3"

    def test_leaf_edit_touches_only_the_spine(self, tree):
        # A wide tree: editing one leaf must not re-evaluate siblings.
        root = tree.parse("((1 + 2) + (3 + 4)) + ((5 + 6) + (7 + 8))")
        assert tree.value(root) == 36
        leaves = tree.db.instances_of("literal")
        one = next(l for l in leaves if tree.db.get_attr(l, "number") == 1)
        before = tree.db.engine.counters.snapshot()
        tree.set_literal(one, 9)
        tree.value(root)
        delta = tree.db.engine.counters.delta_since(before)
        # Spine: leaf transmit + 3 ops x (value + transmit) + root value...
        # comfortably below re-evaluating all 15 nodes x several slots.
        assert delta.rule_evaluations <= 14

    def test_operator_edit(self, tree):
        root = tree.parse("6 + 2")
        tree.set_operator(root, "*")
        assert tree.value(root) == 12
        assert tree.text(root) == "6 * 2"

    def test_subtree_replacement(self, tree):
        root = tree.parse("1 + 2")
        children = tree.db.view(root).connections("children")
        replacement = tree.parse("10 * 10")
        tree.replace_child(root, children[1], replacement)
        assert tree.value(root) == 101
        assert tree.text(root) == "1 + 10 * 10"

    def test_replacement_preserves_operand_order(self, tree):
        root = tree.parse("10 - 4")
        children = tree.db.view(root).connections("children")
        tree.replace_child(root, children[0], tree.literal(100))
        assert tree.value(root) == 96  # 100 - 4, not 4 - 100

    def test_edit_is_undoable(self, tree):
        root = tree.parse("2 * 3")
        leaves = tree.db.instances_of("literal")
        two = next(l for l in leaves if tree.db.get_attr(l, "number") == 2)
        tree.set_literal(two, 50)
        assert tree.value(root) == 150
        tree.db.undo()
        assert tree.value(root) == 6

    def test_division_by_zero_placeholder(self, tree):
        root = tree.parse("8 / 0")
        assert tree.value(root) == 0  # defined placeholder, no crash
