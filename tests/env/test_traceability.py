"""Requirements-traceability tests."""

import pytest

from repro.env.traceability import TraceabilityError, TraceabilityMatrix


@pytest.fixture
def matrix():
    m = TraceabilityMatrix()
    m.add_requirement("login")
    m.add_requirement("export")
    m.add_component("auth", implements=["login"])
    m.add_component("report-writer", implements=["export"])
    return m


class TestStatusDerivation:
    def test_unimplemented_initially(self, matrix):
        assert matrix.status("login") == "unimplemented"

    def test_requirement_with_no_component_unimplemented(self, matrix):
        matrix.add_requirement("audit")
        assert matrix.status("audit") == "unimplemented"

    def test_untested_once_done(self, matrix):
        matrix.mark_done("auth")
        assert matrix.status("login") == "untested"

    def test_failing_then_verified(self, matrix):
        matrix.mark_done("auth")
        matrix.record_test("t-login-1", "login", passed=False)
        assert matrix.status("login") == "failing"
        matrix.record_test("t-login-1", "login", passed=True)
        assert matrix.status("login") == "verified"

    def test_all_tests_must_pass(self, matrix):
        matrix.mark_done("auth")
        matrix.record_test("a", "login", passed=True)
        matrix.record_test("b", "login", passed=False)
        assert matrix.status("login") == "failing"
        matrix.record_test("b", "login", passed=True)
        assert matrix.status("login") == "verified"

    def test_multi_component_requirement(self, matrix):
        matrix.add_component("session-store", implements=["login"])
        matrix.mark_done("auth")
        assert matrix.status("login") == "unimplemented"  # one of two done
        matrix.mark_done("session-store")
        assert matrix.status("login") == "untested"

    def test_undone_component_regresses_status(self, matrix):
        matrix.mark_done("auth")
        matrix.record_test("t", "login", passed=True)
        assert matrix.status("login") == "verified"
        matrix.mark_done("auth", done=False)
        assert matrix.status("login") == "unimplemented"


class TestReporting:
    def test_report_and_summary(self, matrix):
        matrix.mark_done("auth")
        matrix.record_test("t", "login", passed=True)
        assert matrix.report() == [
            ("export", "unimplemented"),
            ("login", "verified"),
        ]
        assert matrix.summary() == {"unimplemented": 1, "verified": 1}
        assert matrix.verified_fraction() == 0.5

    def test_empty_matrix_fraction(self):
        assert TraceabilityMatrix().verified_fraction() == 1.0


class TestErrors:
    def test_duplicates_rejected(self, matrix):
        with pytest.raises(TraceabilityError):
            matrix.add_requirement("login")
        with pytest.raises(TraceabilityError):
            matrix.add_component("auth", implements=[])

    def test_unknown_names_rejected(self, matrix):
        with pytest.raises(TraceabilityError):
            matrix.status("ghost")
        with pytest.raises(TraceabilityError):
            matrix.mark_done("ghost")
        with pytest.raises(TraceabilityError):
            matrix.record_test("t", "ghost", passed=True)


class TestIncrementalBehaviour:
    def test_test_recording_touches_one_requirement(self, matrix):
        matrix.mark_done("auth")
        matrix.mark_done("report-writer")
        matrix.status("login")
        matrix.status("export")
        before = matrix.db.engine.counters.snapshot()
        matrix.record_test("t", "login", passed=True)
        matrix.status("login")
        matrix.status("export")
        delta = matrix.db.engine.counters.delta_since(before)
        # Only login's status (plus the new test's transmits) re-evaluated.
        assert delta.rule_evaluations <= 4
