"""Attribute-driven presentation tests."""

import pytest

from repro.env.presentation import ReportView
from repro.workloads import build_chain, link


@pytest.fixture
def panel(db):
    nodes = build_chain(db, 3)
    view = ReportView(db, title="totals")
    view.add_row("head", nodes[0], "total")
    view.add_row("tail", nodes[-1], "total", fmt="{:>4}")
    return db, nodes, view


class TestRendering:
    def test_initial_render(self, panel):
        db, nodes, view = panel
        text = view.render()
        assert "[totals]" in text
        assert "head : 1" in text
        assert "tail :    3" in text

    def test_render_reflects_any_mutation_path(self, panel):
        db, nodes, view = panel
        view.render()
        db.set_attr(nodes[0], "weight", 10)  # a "tool" modifies the data
        text = view.render()
        assert "tail :   12" in text

    def test_structural_change_reflected(self, panel):
        db, nodes, view = panel
        view.render()
        extra = db.create("node", weight=100)
        link(db, extra, nodes[-1])
        assert "tail :  103" in view.render()

    def test_refresh_log_only_on_change(self, panel):
        db, nodes, view = panel
        view.render()
        view.render()
        view.render()
        assert len(view.refresh_log) == 1
        db.set_attr(nodes[1], "weight", 5)
        view.render()
        assert len(view.refresh_log) == 2


class TestEagerMaintenance:
    def test_watched_rows_evaluated_during_waves(self, panel):
        db, nodes, view = panel
        view.render()
        db.set_attr(nodes[0], "weight", 42)
        # The panel's slots were important during the wave: already clean.
        assert not db.engine.is_out_of_date((nodes[-1], "total"))

    def test_staleness_signal(self, panel):
        db, nodes, view = panel
        view.render()
        assert not view.is_stale()
        db.set_attr(nodes[0], "weight", 9)
        assert view.is_stale()
        view.render()
        assert not view.is_stale()


class TestLifecycle:
    def test_close_unwatches(self, panel):
        db, nodes, view = panel
        view.close()
        db.set_attr(nodes[0], "weight", 9)
        # No standing demand left: the slot stays lazily out of date.
        assert db.engine.is_out_of_date((nodes[-1], "total"))

    def test_remove_rows_for_instance(self, panel):
        db, nodes, view = panel
        view.remove_rows_for(nodes[0])
        assert [r.iid for r in view.rows] == [nodes[-1]]
        text = view.render()
        assert "head" not in text
