"""Property test: compiled closures are observably equal to the interpreter.

Hypothesis generates random (but compilable) DSL rule bodies over a fixed
class shape -- two integer attributes, a multi port (``For Each`` coverage),
a single port (dangling-default coverage), a registered function, and a
named constant.  Each body is compiled twice by the normal pipeline: the
freeze-time pass swaps in a :class:`CompiledBody` whose ``__wrapped__``
keeps the original ``_RuleInterpreter``.  For random input assignments the
two must produce the same value or raise the same class of error.

A second property drives whole databases: the same update script against a
compiled and a ``REPRO_NO_COMPILE=1`` database (same schema text, with a
constraint) must produce identical attribute values, identical
``ConstraintViolation`` outcomes, and identical engine counters.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import COMPILE_DISABLED_ENV, CompiledBody
from repro.core.database import Database
from repro.dsl import compile_schema
from repro.errors import ConstraintViolation, DslRuntimeError, TransactionAborted

FUNCTIONS = {"dbl": lambda v: 2 * v + 1}
CONSTANTS = {"kk": 7}

SCHEMA_TEMPLATE = """
relationship dep is
    t : integer from plug;
    u : integer from plug default 3;
end;
object class c is
  relationships
    ins : dep multi socket;
    one : dep socket;
  attributes
    x : integer;
    y : integer;
    d : integer;
  rules
    d = {body};
end;
"""

# -- body generation --------------------------------------------------------

_num = st.integers(min_value=-9, max_value=9).map(str)
_atom = st.sampled_from(["x", "y", "kk", "one.t"]) | _num
_binop = st.sampled_from(["+", "-", "*", "/", "%", "<", "<=", "==", "!=", ">", ">=", "and", "or"])


def _exprs(loop_vars: tuple[str, ...]):
    """Expression strategy; loop variables contribute ``var.t``/``var.u``."""
    leaves = [_atom]
    if loop_vars:
        refs = [f"{v}.{f}" for v in loop_vars for f in ("t", "u")]
        leaves.append(st.sampled_from(refs))
    leaf = st.one_of(*leaves)

    def extend(children):
        return st.one_of(
            st.tuples(children, _binop, children).map(
                lambda t: f"({t[0]} {t[1]} {t[2]})"
            ),
            children.map(lambda e: f"(not {e})"),
            children.map(lambda e: f"(- {e})"),
            children.map(lambda e: f"dbl({e})"),
        )

    return st.recursive(leaf, extend, max_leaves=6)


@st.composite
def _stmts(draw, loop_vars: tuple[str, ...], depth: int):
    """A random statement list (no trailing return)."""
    out = []
    for __ in range(draw(st.integers(min_value=0, max_value=2))):
        kind = draw(st.sampled_from(["assign", "if", "for", "return"]))
        if kind == "assign":
            var = draw(st.sampled_from(["a", "b"]))
            out.append(f"{var} := {draw(_exprs(loop_vars))};")
        elif kind == "return":
            out.append(f"return {draw(_exprs(loop_vars))};")
        elif kind == "if" and depth > 0:
            cond = draw(_exprs(loop_vars))
            then = draw(_stmts(loop_vars, depth - 1))
            orelse = draw(_stmts(loop_vars, depth - 1))
            block = f"if {cond} then {' '.join(then)} "
            if orelse:
                block += f"else {' '.join(orelse)} "
            out.append(block + "end if;")
        elif kind == "for" and depth > 0:
            var = draw(st.sampled_from(["p", "q"]))
            if var in loop_vars:
                continue  # shadowing is declined by codegen; keep it compiled
            body = draw(_stmts(loop_vars + (var,), depth - 1))
            out.append(
                f"for each {var} related to ins do {' '.join(body)} end for;"
            )
    return out


@st.composite
def _bodies(draw):
    """Either a bare expression or a begin/end block body."""
    if draw(st.booleans()):
        return draw(_exprs(()))
    stmts = draw(_stmts((), depth=2))
    decls = "a : integer; b : integer;"
    # Half the time guarantee a return; otherwise exercise the
    # fell-off-the-end error path on both backends.
    if draw(st.booleans()):
        stmts.append(f"return {draw(_exprs(()))};")
    return f"begin {decls} {' '.join(stmts)} end"


def _outcome(fn, kwargs):
    try:
        return ("value", fn(**kwargs))
    except DslRuntimeError as exc:
        # Messages cite source names/lines on the interpreter and canonical
        # registers on the compiled path; the error *class* must agree.
        return ("dsl_error", None)
    except ZeroDivisionError:
        return ("zero_division", None)


@given(
    body=_bodies(),
    x=st.integers(min_value=-50, max_value=50),
    y=st.integers(min_value=-50, max_value=50),
    fan=st.lists(
        st.tuples(st.integers(-9, 9), st.integers(-9, 9)), max_size=3
    ),
    one=st.integers(min_value=-9, max_value=9),
    dangling=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_compiled_body_equals_interpreter(body, x, y, fan, one, dangling):
    schema = compile_schema(
        SCHEMA_TEMPLATE.format(body=body),
        functions=FUNCTIONS,
        constants=CONSTANTS,
    )
    rule = next(
        r
        for r in schema.resolved("c").rules
        if getattr(r.target, "attr", None) == "d"
    )
    compiled = rule.body
    assert isinstance(compiled, CompiledBody), f"declined: {body!r}"
    interpreter = compiled.__wrapped__

    kwargs = {}
    for kw in rule.inputs:
        if kw == "l_x":
            kwargs[kw] = x
        elif kw == "l_y":
            kwargs[kw] = y
        elif kw == "r_ins__t":
            kwargs[kw] = [t for t, __ in fan]
        elif kw == "r_ins__u":
            kwargs[kw] = [u for __, u in fan]
        elif kw == "r_one__t":
            # A single-valued port: the engine's DepBinding.assemble hands
            # the body a scalar -- the flow default when dangling.
            kwargs[kw] = 0 if dangling else one
        else:  # pragma: no cover - fixed schema shape
            raise AssertionError(f"unexpected input {kw}")

    assert _outcome(compiled, kwargs) == _outcome(interpreter, kwargs)


# -- end-to-end: databases must agree, including constraint outcomes --------

E2E_SRC = """
relationship dep is total : integer from plug; end;
object class node is
  relationships
    inputs  : dep multi socket;
    outputs : dep multi plug;
  attributes
    weight : integer;
    total  : integer;
  rules
    total = begin
        acc : integer;
        acc := weight;
        for each src related to inputs do
            acc := acc + src.total;
        end for;
        return acc;
    end;
    outputs total = total;
  constraints
    cap : total <= 100;
end;
"""


def _build(no_compile: bool):
    if no_compile:
        os.environ[COMPILE_DISABLED_ENV] = "1"
    try:
        db = Database(compile_schema(E2E_SRC))
    finally:
        os.environ.pop(COMPILE_DISABLED_ENV, None)
    nodes = [db.create("node", weight=1) for __ in range(5)]
    for up, dn in zip(nodes, nodes[1:]):
        db.connect(dn, "inputs", up, "outputs")
    return db, nodes


def _apply(db, nodes, script):
    log = []
    for idx, value in script:
        try:
            db.set_attr(nodes[idx], "weight", value)
            log.append(("ok", None))
        except (ConstraintViolation, TransactionAborted) as exc:
            # Auto-committed primitives surface the violation as an abort;
            # either way both backends must agree on class and message.
            log.append((type(exc).__name__, str(exc)))
    log.append(("finals", tuple(db.get_attr(i, "total") for i in nodes)))
    return log


@given(
    script=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=-10, max_value=60),
        ),
        max_size=12,
    )
)
@settings(max_examples=40, deadline=None)
def test_database_runs_identically_with_and_without_compilation(script):
    db_c, nodes_c = _build(no_compile=False)
    db_i, nodes_i = _build(no_compile=True)
    assert db_c.slot_plans is not None
    assert db_i.slot_plans is None

    assert _apply(db_c, nodes_c, script) == _apply(db_i, nodes_i, script)

    c, i = db_c.engine.counters, db_i.engine.counters
    assert c.waves == i.waves
    assert c.slots_marked == i.slots_marked
    assert c.mark_edge_visits == i.mark_edge_visits
    assert c.rule_evaluations == i.rule_evaluations
