"""Regression: no transmit-name re-parsing inside a wave (ISSUE 6 satellite).

The slot plan carries pre-split port/value names and precomputed
kind tags, so once a database is warm, neither
:func:`repro.core.slots.split_transmit_name` nor ``str.partition`` may run
during the mark or evaluation phase of a wave.  Enforced with a profile
hook that watches both the Python frames and the C-level ``partition``
calls while a full update -> mark -> demand -> evaluate cycle runs.
"""

from __future__ import annotations

import sys

from repro.core import slots
from repro.core.database import Database
from repro.dsl import compile_schema

SRC = """
relationship dep is total : integer from plug; end;
object class node is
  relationships
    inputs  : dep multi socket;
    outputs : dep multi plug;
  attributes
    weight : integer;
    total  : integer;
  rules
    total = begin
        acc : integer;
        acc := weight;
        for each src related to inputs do
            acc := acc + src.total;
        end for;
        return acc;
    end;
    outputs total = total;
end;
"""

_WATCHED_CODE = (
    slots.split_transmit_name.__code__,
    slots.is_transmit_name.__code__,
)


class _ParseWatcher:
    """Profile hook recording transmit-name parsing work."""

    def __init__(self) -> None:
        self.hits: list[str] = []

    def __call__(self, frame, event, arg):
        if event == "call" and frame.f_code in _WATCHED_CODE:
            self.hits.append(frame.f_code.co_name)
        elif event == "c_call" and getattr(arg, "__name__", "") == "partition":
            self.hits.append("str.partition")


def test_no_transmit_name_parsing_inside_a_wave():
    db = Database(compile_schema(SRC))
    nodes = [db.create("node", weight=n + 1) for n in range(8)]
    for up, dn in zip(nodes, nodes[1:]):
        db.connect(dn, "inputs", up, "outputs")
    # Warm up: plans built, every slot evaluated once.
    assert db.get_attr(nodes[-1], "total") == sum(range(1, 9))

    watcher = _ParseWatcher()
    sys.setprofile(watcher)
    try:
        # One full cycle: intrinsic update -> marking wave crossing seven
        # connections -> demand -> evaluation wave back up the chain.
        db.set_attr(nodes[0], "weight", 5)
        total = db.get_attr(nodes[-1], "total")
    finally:
        sys.setprofile(None)

    assert total == 4 + sum(range(1, 9))
    assert watcher.hits == [], (
        f"transmit-name parsing ran inside the wave: {watcher.hits}"
    )


def test_parsing_still_allowed_at_build_time():
    """The watcher itself works: plan *construction* does parse names."""
    db = Database(compile_schema(SRC))
    a = db.create("node", weight=1)
    watcher = _ParseWatcher()
    sys.setprofile(watcher)
    try:
        db.engine.demand((a, "total"))  # first demand builds the plan
    finally:
        sys.setprofile(None)
    assert "split_transmit_name" in watcher.hits
