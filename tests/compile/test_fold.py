"""Constraint folding: proven-constant predicates become no-op rules.

``Schema.freeze`` folds every constraint and subtype predicate the
interval analysis proved always-true: the synthetic rule keeps its slot
but loses its inputs and body, so it is evaluated exactly once at
instance creation and never re-marked.  ``REPRO_NO_FOLD=1`` keeps the
original predicate live; both arms must agree on every observable
outcome -- the property the A/B tests here and the hypothesis script in
``tests/integration`` pin down.
"""

from __future__ import annotations

import os

import pytest

from repro.compile import FOLD_DISABLED_ENV, fold_frozen_schema
from repro.core.database import Database
from repro.dsl import compile_schema
from repro.errors import ConstraintViolation, TransactionAborted

SRC = """
object class task is
  attributes
    effort : integer;
    budget : integer;
    level  : integer;
  rules
    level = begin
        if effort > budget then
            return 2;
        end if;
        return 1;
    end;
  constraints
    level_ok : level >= 1 and level <= 2;
    cap      : effort <= 100;
end object;
"""


def _schema(no_fold: bool = False):
    if no_fold:
        os.environ[FOLD_DISABLED_ENV] = "1"
    try:
        return compile_schema(SRC)
    finally:
        os.environ.pop(FOLD_DISABLED_ENV, None)


def test_freeze_folds_the_provable_constraint():
    schema = _schema()
    stats = schema.compile_stats
    assert stats["fold_enabled"] is True
    assert stats["constraints_folded"] == 1
    rule = schema.resolved("task").rule_for["__constraint__level_ok"]
    assert rule.inputs == {}
    assert rule.body() is True


def test_contingent_constraint_stays_live():
    schema = _schema()
    rule = schema.resolved("task").rule_for["__constraint__cap"]
    assert rule.inputs


def test_fold_env_hatch_keeps_predicates_live():
    schema = _schema(no_fold=True)
    assert schema.compile_stats["fold_enabled"] is False
    assert schema.compile_stats["constraints_folded"] == 0
    rule = schema.resolved("task").rule_for["__constraint__level_ok"]
    assert rule.inputs


def test_refolding_is_idempotent():
    schema = _schema()
    stats = fold_frozen_schema(schema)
    assert stats["constraints_folded"] == 0
    assert stats["predicates_folded"] == 0


def test_raw_constraint_predicate_is_untouched():
    """Folding rewrites the synthetic rule only: the declared constraint
    keeps its predicate for recovery paths and the next freeze."""
    schema = _schema()
    constraint = next(
        c for c in schema.classes["task"].constraints if c.name == "level_ok"
    )
    assert constraint.predicate is not None


def _run(no_fold: bool, script):
    db = Database(_schema(no_fold=no_fold))
    task = db.create("task", budget=10)
    log = []
    for value in script:
        try:
            db.set_attr(task, "effort", value)
            log.append(("ok", db.get_attr(task, "level")))
        except (ConstraintViolation, TransactionAborted) as exc:
            log.append((type(exc).__name__, str(exc)))
    return log, db.engine.counters


@pytest.mark.parametrize(
    "script",
    [[5, 20, 101, 7], [0, 100], [101], [50, 150, 50]],
)
def test_folded_database_is_observably_identical(script):
    folded_log, folded = _run(False, script)
    live_log, live = _run(True, script)
    assert folded_log == live_log
    # The folded constraint contributes no wave work: strictly fewer
    # evaluations whenever the script updates an input, never more.
    assert folded.rule_evaluations <= live.rule_evaluations
    if any(v <= 100 for v in script):
        assert folded.rule_evaluations < live.rule_evaluations
