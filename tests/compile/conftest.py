"""These tests pin the compiler itself, so an outer ``REPRO_NO_COMPILE=1``
(e.g. someone running the whole suite through the escape hatch) must not
leak in.  Tests that exercise the hatch set the variable explicitly.
"""

from __future__ import annotations

import pytest

from repro.compile import COMPILE_DISABLED_ENV


@pytest.fixture(autouse=True)
def _compilation_enabled(monkeypatch):
    monkeypatch.delenv(COMPILE_DISABLED_ENV, raising=False)
