"""Flattened slot plans: structure, sharing, and invalidation.

The engine's hot loops trust :class:`repro.compile.slotplan.SlotPlan` to be
an exact flattening of the string-keyed dependency structure, and trust the
:class:`SlotPlanCache` to drop a memoized plan the moment an instance's
effective shape changes.  These tests pin both down, plus the A/B contract:
a plan-driven engine produces byte-identical counters to the classic
dependency-graph walk.
"""

from __future__ import annotations

import os
import subprocess
import sys

from tests.conftest import give_cars, make_person_schema

from repro.compile import COMPILE_DISABLED_ENV
from repro.core.database import Database
from repro.workloads import sum_node_schema
from repro.workloads.generators import (
    build_random_dag,
    random_update_script,
    run_update_script,
)


class TestPlanStructure:
    def test_local_and_crossing_edges_flattened(self, db):
        a = db.create("node", weight=1)
        db.get_attr(a, "total")
        plan = db.slot_plans.plan_of(a)
        weight = plan.index["weight"]
        total = plan.index["total"]
        transmit = plan.index["outputs>total"]
        # weight -> total -> outputs>total, as index arrays.
        assert total in plan.local_dependents[weight]
        assert transmit in plan.local_dependents[total]
        # The transmit slot carries its pre-split port and value.
        assert plan.kind[transmit] == 1
        assert plan.port_of[transmit] == "outputs"
        assert plan.value_of[transmit] == "total"
        # Consumers joining from the peer side find `total` under the
        # receive port.
        assert plan.receivers[("inputs", "total")] == (total,)

    def test_plans_shared_across_instances_of_one_shape(self, db):
        a = db.create("node", weight=1)
        b = db.create("node", weight=2)
        assert db.slot_plans.plan_of(a) is db.slot_plans.plan_of(b)
        assert db.slot_plans.plans_built == 1
        assert db.slot_plans.instances_cached == 2

    def test_dangling_port_read_uses_flow_default(self, db):
        a = db.create("node", weight=1)
        plan = db.slot_plans.plan_of(a)
        # Every flow of every port is precomputed (integer default: 0).
        assert plan.flow_defaults["inputs>total"] == 0
        assert db.read_slot_value((a, "inputs>total")) == 0


class TestInvalidation:
    def test_subtype_flip_swaps_the_plan(self, person_db):
        alice = person_db.create("person", name="alice")
        person_db.is_member(alice, "car_buff")
        before = person_db.slot_plans.plan_of(alice)
        assert "club" not in before.index
        give_cars(person_db, alice, 4)
        assert person_db.is_member(alice, "car_buff")
        after = person_db.slot_plans.plan_of(alice)
        assert after is not before
        assert "club" in after.index

    def test_membership_lapse_restores_base_plan(self, person_db):
        alice = person_db.create("person", name="alice")
        cars = give_cars(person_db, alice, 4)
        assert person_db.is_member(alice, "car_buff")
        rich = person_db.slot_plans.plan_of(alice)
        person_db.disconnect(cars[0], "owner", alice, "cars")
        assert not person_db.is_member(alice, "car_buff")
        assert person_db.slot_plans.plan_of(alice) is not rich
        # Same shape key as the original base plan: served from cache.
        bob = person_db.create("person", name="bob")
        assert person_db.slot_plans.plan_of(alice) is person_db.slot_plans.plan_of(bob)

    def test_delete_drops_the_memo(self, db):
        a = db.create("node", weight=1)
        assert db.slot_plans.plan_of(a) is not None
        db.delete(a)
        assert db.slot_plans.plan_of(a) is None

    def test_schema_extension_clears_every_plan(self, db):
        a = db.create("node", weight=1)
        stale = db.slot_plans.plan_of(a)
        with db.extend_schema() as schema:
            from repro.core.schema import AttributeDef, ObjectClass

            schema.add_class(
                ObjectClass("memo", attributes=[AttributeDef("text", "string")])
            )
        fresh = db.slot_plans.plan_of(a)
        assert fresh is not stale  # shape keys embed the schema version


class TestABParity:
    """Same workload, plans on vs. REPRO_NO_COMPILE=1: identical counters."""

    SCRIPT = r"""
import json, sys
sys.path.insert(0, "src")
from repro.core.database import Database
from repro.workloads import sum_node_schema
from repro.workloads.generators import (
    build_random_dag, random_update_script, run_update_script,
)

db = Database(sum_node_schema(), pool_capacity=256, fast_path=True)
nodes = build_random_dag(db, 40, edge_prob=0.3, seed=5)
for iid in nodes:
    db.get_attr(iid, "total")
script = random_update_script(nodes, 120, seed=9, query_fraction=0.25)
run_update_script(db, script, batch=False)
finals = [db.get_attr(iid, "total") for iid in nodes]
c = db.engine.counters
print(json.dumps({
    "waves": c.waves,
    "slots_marked": c.slots_marked,
    "mark_edge_visits": c.mark_edge_visits,
    "rule_evaluations": c.rule_evaluations,
    "finals": finals,
}))
"""

    def _run(self, no_compile: bool) -> dict:
        env = dict(os.environ)
        env.pop(COMPILE_DISABLED_ENV, None)
        if no_compile:
            env[COMPILE_DISABLED_ENV] = "1"
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            check=True,
        )
        import json

        return json.loads(proc.stdout)

    def test_counters_and_values_identical(self):
        compiled = self._run(no_compile=False)
        interpreted = self._run(no_compile=True)
        assert compiled == interpreted


class TestInProcessParity:
    def test_mark_fanout_matches_legacy_engine(self):
        """Two in-process databases, one with plans disabled via its cache."""
        results = []
        for disable in (False, True):
            db = Database(sum_node_schema(), pool_capacity=256, fast_path=True)
            if disable:
                db.slot_plans = None
                db.engine._plans = None
            nodes = build_random_dag(db, 30, edge_prob=0.3, seed=3)
            for iid in nodes:
                db.get_attr(iid, "total")
            script = random_update_script(nodes, 80, seed=4, query_fraction=0.0)
            run_update_script(db, script, batch=False)
            finals = tuple(db.get_attr(iid, "total") for iid in nodes)
            c = db.engine.counters
            results.append(
                (c.waves, c.slots_marked, c.mark_edge_visits, c.rule_evaluations, finals)
            )
        assert results[0] == results[1]


class TestCostOrdering:
    def test_ruled_slots_sorted_by_descending_ops(self, db):
        """With freeze-time facts present, the plan assigns low sids to
        the expensive rules -- the For-Each accumulator must come before
        the one-op transmit rule -- stably on the legacy order."""
        facts = db.schema.analysis_facts
        assert facts is not None
        a = db.create("node", weight=1)
        plan = db.slot_plans.plan_of(a)
        ruled = [
            (sid, name)
            for sid, name in enumerate(plan.names)
            if plan.rules[sid] is not None
        ]
        ops = [facts.cost.ops_of("node", name) for __, name in ruled]
        assert ops == sorted(ops, reverse=True)
        assert plan.index["total"] < plan.index["outputs>total"]

    def test_ordering_never_changes_engine_counters(self, monkeypatch):
        """The cost permutation must be invisible to every counter: build
        one database with facts and one with analysis disabled and replay
        the same workload."""
        from repro.analysis.facts import ANALYSIS_DISABLED_ENV

        results = []
        for disable in (False, True):
            if disable:
                monkeypatch.setenv(ANALYSIS_DISABLED_ENV, "1")
            else:
                monkeypatch.delenv(ANALYSIS_DISABLED_ENV, raising=False)
            db = Database(sum_node_schema(), pool_capacity=256)
            assert (db.schema.analysis_facts is None) is disable
            nodes = build_random_dag(db, 25, edge_prob=0.3, seed=11)
            script = random_update_script(nodes, 60, seed=12, query_fraction=0.2)
            run_update_script(db, script, batch=False)
            finals = tuple(db.get_attr(iid, "total") for iid in nodes)
            c = db.engine.counters
            results.append(
                (c.waves, c.slots_marked, c.mark_edge_visits, c.rule_evaluations, finals)
            )
        assert results[0] == results[1]
