"""Unit tests for the freeze-time rule-body codegen.

Covers the public contract of :mod:`repro.compile`: which bodies compile,
which stay interpreted, how structurally identical bodies share one code
object, the kwargs adapter of :class:`CompiledBody`, and the
``REPRO_NO_COMPILE`` escape hatch.
"""

from __future__ import annotations

import pytest

from repro.compile import COMPILE_DISABLED_ENV, CompiledBody, compile_frozen_schema
from repro.compile.codegen import compile_interpreter
from repro.core.database import Database
from repro.core.rules import AttributeTarget
from repro.dsl import ast, compile_schema
from repro.dsl.compiler import _RuleInterpreter
from repro.errors import DslRuntimeError
from repro.workloads import sum_node_schema

CHAIN_SRC = """
relationship dep is total : integer from plug; end;
object class node is
  relationships
    inputs  : dep multi socket;
    outputs : dep multi plug;
  attributes
    weight : integer;
    total  : integer;
  rules
    total = begin
        acc : integer;
        acc := weight;
        for each src related to inputs do
            acc := acc + src.total;
        end for;
        return acc;
    end;
    outputs total = total;
end;
"""


def _target_key(target):
    if isinstance(target, AttributeTarget):
        return target.attr
    return f"{target.port}>{target.value}"


def _rule_bodies(schema, class_name):
    return {
        _target_key(rule.target): rule.body
        for rule in schema.resolved(class_name).rules
    }


class TestCompilePass:
    def test_dsl_rules_become_compiled_bodies(self):
        schema = compile_schema(CHAIN_SRC)
        bodies = _rule_bodies(schema, "node")
        assert all(isinstance(b, CompiledBody) for b in bodies.values())
        stats = schema.compile_stats
        assert stats["enabled"] is True
        assert stats["rules_compiled"] == 2
        assert stats["fallbacks"] == 0
        assert stats["native_bodies"] == 0
        assert stats["compile_seconds"] > 0

    def test_compiled_schema_computes_like_the_paper_example(self):
        db = Database(compile_schema(CHAIN_SRC))
        a = db.create("node", weight=3)
        b = db.create("node", weight=4)
        db.connect(b, "inputs", a, "outputs")
        assert db.get_attr(b, "total") == 7
        db.set_attr(a, "weight", 10)
        assert db.get_attr(b, "total") == 14

    def test_native_python_bodies_stay_native(self):
        schema = sum_node_schema()
        stats = schema.compile_stats
        assert stats["rules_compiled"] == 0
        assert stats["native_bodies"] == 2
        bodies = _rule_bodies(schema, "node")
        assert not any(isinstance(b, CompiledBody) for b in bodies.values())

    def test_refreeze_is_idempotent(self):
        schema = compile_schema(CHAIN_SRC)
        first = dict(schema.compile_stats)
        schema._frozen = False
        schema.freeze()
        # Already-compiled bodies are skipped, not re-counted.
        assert schema.compile_stats["rules_compiled"] == first["rules_compiled"]
        bodies = _rule_bodies(schema, "node")
        assert all(isinstance(b, CompiledBody) for b in bodies.values())


class TestCanonicalizationAndCache:
    def test_structurally_identical_rules_share_one_code_object(self):
        # Same body shape, different class/attribute/variable names: the
        # canonical source is identical, so the second compile is a cache
        # hit onto the same function object.
        src = """
        object class alpha is
          attributes x : integer; d : integer;
          rules d = begin
              t : integer;
              t := x + 1;
              return t * 2;
          end;
        end;
        object class beta is
          attributes other : integer; dd : integer;
          rules dd = begin
              acc : integer;
              acc := other + 1;
              return acc * 2;
          end;
        end;
        """
        schema = compile_schema(src)
        body_a = _rule_bodies(schema, "alpha")["d"]
        body_b = _rule_bodies(schema, "beta")["dd"]
        assert isinstance(body_a, CompiledBody)
        assert body_a.source == body_b.source
        assert body_a.fn is body_b.fn
        assert schema.compile_stats["cache_hits"] >= 1

    def test_different_environment_objects_do_not_alias(self):
        # Identical source but different registered functions must compile
        # to *different* closures.
        src = """
        object class c is
          attributes x : integer; d : integer;
          rules d = f(x);
        end;
        """
        s1 = compile_schema(src, functions={"f": lambda v: v + 1})
        s2 = compile_schema(src, functions={"f": lambda v: v - 1})
        b1 = _rule_bodies(s1, "c")["d"]
        b2 = _rule_bodies(s2, "c")["d"]
        assert b1.source == b2.source
        assert b1.fn is not b2.fn
        assert b1(l_x=10) == 11
        assert b2(l_x=10) == 9


class TestCompiledBodyAdapter:
    def test_kwargs_call_matches_positional_fast_path(self):
        schema = compile_schema(CHAIN_SRC)
        body = _rule_bodies(schema, "node")["total"]
        kwargs = {"l_weight": 5, "r_inputs__total": [1, 2, 3]}
        args = [kwargs[name] for name in body.kwnames]
        assert body(**kwargs) == body.fn(*args) == 11

    def test_missing_input_raises_dsl_runtime_error(self):
        schema = compile_schema(CHAIN_SRC)
        body = _rule_bodies(schema, "node")["total"]
        with pytest.raises(DslRuntimeError, match="missing rule input"):
            body(l_weight=5)

    def test_wrapped_interpreter_agrees(self):
        schema = compile_schema(CHAIN_SRC)
        body = _rule_bodies(schema, "node")["total"]
        assert isinstance(body.__wrapped__, _RuleInterpreter)
        kwargs = {"l_weight": 2, "r_inputs__total": [10, 20]}
        assert body(**kwargs) == body.__wrapped__(**kwargs) == 32


class TestFallbacks:
    def test_unknown_operator_declines_to_interpreter(self):
        # Valid DSL can never produce an unknown operator; simulate a
        # future AST extension by grafting one onto a real interpreter.
        schema = compile_schema(
            "object class c is attributes x : integer; d : integer;"
            " rules d = x + 1; end;"
        )
        interp = _rule_bodies(schema, "c")["d"].__wrapped__
        interp.body = ast.Binary(
            "**", ast.Name("x"), ast.Literal(2)
        )
        stats = {"fallbacks": 0, "cache_hits": 0, "code_objects": 0}
        rule = next(
            r for r in schema.resolved("c").rules if _target_key(r.target) == "d"
        )
        assert compile_interpreter(interp, rule.inputs, False, stats) is None
        assert stats["fallbacks"] == 1

    def test_fallback_body_still_evaluates_via_interpreter(self, monkeypatch):
        monkeypatch.setenv(COMPILE_DISABLED_ENV, "1")
        db = Database(compile_schema(CHAIN_SRC))
        a = db.create("node", weight=3)
        b = db.create("node", weight=4)
        db.connect(b, "inputs", a, "outputs")
        assert db.get_attr(b, "total") == 7


class TestEscapeHatch:
    def test_no_compile_env_keeps_interpreters(self, monkeypatch):
        monkeypatch.setenv(COMPILE_DISABLED_ENV, "1")
        schema = compile_schema(CHAIN_SRC)
        assert schema.compile_stats["enabled"] is False
        assert schema.compile_stats["rules_compiled"] == 0
        bodies = _rule_bodies(schema, "node")
        assert all(isinstance(b, _RuleInterpreter) for b in bodies.values())

    def test_no_compile_env_disables_slot_plans(self, monkeypatch):
        monkeypatch.setenv(COMPILE_DISABLED_ENV, "1")
        db = Database(sum_node_schema())
        assert db.slot_plans is None
        assert db.engine._plans is None

    def test_compile_metrics_reflect_pass(self):
        db = Database(compile_schema(CHAIN_SRC))
        a = db.create("node", weight=1)
        db.get_attr(a, "total")
        flat = db.metrics().flatten()
        assert flat["compile.enabled"] == 1
        assert flat["compile.rules_compiled"] == 2
        assert flat["compile.plans_built"] >= 1
        assert flat["compile.plan_instances"] >= 1


class TestCompileFrozenSchemaDirect:
    def test_disabled_pass_reports_only_flag(self, monkeypatch):
        monkeypatch.setenv(COMPILE_DISABLED_ENV, "1")
        schema = sum_node_schema()
        stats = compile_frozen_schema(schema)
        assert stats["enabled"] is False
        assert stats["rules_compiled"] == 0
