"""docs/COMPILER.md must stay truthful about the names it cites.

Follows the tests/storage/test_storage_docs.py pattern: COMPILER.md is
narrative, but every ``compile.*`` metric it mentions must exist, the
``compile`` namespace it owns must be covered completely, every cited
test/benchmark file must exist, the escape-hatch variable must match the
code, and the tutorial example must actually run.
"""

from __future__ import annotations

import io
import pathlib
import re
from contextlib import redirect_stdout

from repro.compile import COMPILE_DISABLED_ENV
from repro.core.database import Database
from repro.workloads import sum_node_schema

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "COMPILER.md"
METRIC_REF = re.compile(r"`(compile\.[a-z_]+)`")
ENV_REF = re.compile(r"\bREPRO_[A-Z_]+\b")
CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def live_metrics() -> set[str]:
    return set(Database(sum_node_schema()).metrics().flatten())


def test_every_cited_metric_is_live():
    live = live_metrics()
    cited = set(METRIC_REF.findall(DOC.read_text()))
    assert cited, "COMPILER.md cites no compile.* metrics"
    missing = cited - live
    assert not missing, f"COMPILER.md cites unknown metrics {sorted(missing)}"


def test_compile_namespace_fully_documented():
    compile_metrics = {m for m in live_metrics() if m.startswith("compile.")}
    cited = set(METRIC_REF.findall(DOC.read_text()))
    assert compile_metrics <= cited, (
        f"compile metrics missing from COMPILER.md: "
        f"{sorted(compile_metrics - cited)}"
    )


def test_cited_test_and_bench_files_exist():
    root = DOC.parent.parent
    cited = re.findall(r"`((?:tests|benchmarks)/[\w/]+\.(?:py|json))`", DOC.read_text())
    assert cited, "COMPILER.md cites no test or benchmark files"
    for rel in cited:
        assert (root / rel).exists(), f"COMPILER.md cites missing file {rel}"


def test_escape_hatch_variable_matches_code():
    names = set(ENV_REF.findall(DOC.read_text()))
    assert names == {COMPILE_DISABLED_ENV}, (
        f"COMPILER.md env vars {sorted(names)} != {{{COMPILE_DISABLED_ENV!r}}}"
    )


def test_tutorial_example_runs():
    blocks = CODE_BLOCK.findall(DOC.read_text())
    tutorial = next(b for b in blocks if "compile_schema(" in b and "Database" in b)
    out = io.StringIO()
    with redirect_stdout(out):
        exec(compile(tutorial, str(DOC), "exec"), {})  # noqa: S102
    lines = out.getvalue().strip().splitlines()
    assert lines[0] == "2"  # rules_compiled
    assert lines[-2] == "7"  # the computed total
    assert lines[-1] == "1"  # plans_built
