"""Baseline engines: correctness equivalence and the E1 work blow-up."""

import pytest

from repro.baselines import (
    TriggerBudgetExceeded,
    breadth_first_factory,
    depth_first_factory,
    full_recompute_factory,
)
from repro.core.database import Database
from repro.workloads import (
    build_chain,
    build_diamond_ladder,
    build_random_dag,
    random_update_script,
    run_update_script,
    sum_node_schema,
)

FACTORIES = {
    "dfs": depth_first_factory,
    "bfs": breadth_first_factory,
    "full": full_recompute_factory,
}


def make_db(kind=None, **kwargs):
    factory = FACTORIES[kind]() if kind else None
    return Database(sum_node_schema(), engine_factory=factory, pool_capacity=256, **kwargs)


class TestEquivalence:
    @pytest.mark.parametrize("kind", ["dfs", "bfs", "full"])
    def test_chain_values_match_incremental(self, kind):
        reference = make_db()
        candidate = make_db(kind)
        for db in (reference, candidate):
            nodes = build_chain(db, 20)
            db.set_attr(nodes[3], "weight", 10)
            db.set_attr(nodes[11], "weight", 4)
        assert [
            reference.get_attr(i, "total") for i in reference.instance_ids()
        ] == [candidate.get_attr(i, "total") for i in candidate.instance_ids()]

    @pytest.mark.parametrize("kind", ["dfs", "bfs", "full"])
    def test_random_script_equivalence(self, kind):
        reference = make_db()
        candidate = make_db(kind)
        observed = []
        for db in (reference, candidate):
            nodes = build_random_dag(db, 30, edge_prob=0.3, seed=7)
            script = random_update_script(nodes, 60, seed=8)
            observed.append(run_update_script(db, script))
        assert observed[0] == observed[1]

    @pytest.mark.parametrize("kind", ["dfs", "bfs"])
    def test_diamond_final_state_correct(self, kind):
        reference = make_db()
        candidate = make_db(kind)
        results = []
        for db in (reference, candidate):
            ladder = build_diamond_ladder(db, depth=4)
            db.set_attr(ladder["top"], "weight", 5)
            results.append(db.get_attr(ladder["bottom"], "total"))
        assert results[0] == results[1]


class TestWorkBlowUp:
    def test_eager_dfs_exponential_on_ladder(self):
        """E1's core shape: eager triggers recompute per-path."""
        incremental_evals = {}
        trigger_evals = {}
        for depth in (4, 6):
            db_inc = make_db()
            ladder = build_diamond_ladder(db_inc, depth=depth)
            db_inc.get_attr(ladder["bottom"], "total")
            before = db_inc.engine.counters.snapshot()
            db_inc.set_attr(ladder["top"], "weight", 5)
            db_inc.get_attr(ladder["bottom"], "total")
            incremental_evals[depth] = db_inc.engine.counters.delta_since(
                before
            ).rule_evaluations

            db_trig = make_db("dfs")
            ladder = build_diamond_ladder(db_trig, depth=depth)
            before = db_trig.engine.counters.snapshot()
            db_trig.set_attr(ladder["top"], "weight", 5)
            trigger_evals[depth] = db_trig.engine.counters.delta_since(
                before
            ).rule_evaluations
        # Incremental grows linearly with depth; triggers explode.
        assert incremental_evals[6] <= incremental_evals[4] * 2
        assert trigger_evals[6] >= trigger_evals[4] * 3
        assert trigger_evals[6] > incremental_evals[6] * 5

    def test_full_recompute_scales_with_database_size(self):
        evals = {}
        for extra in (0, 200):
            db = make_db("full")
            nodes = build_chain(db, 10)
            for __ in range(extra):
                db.create("node")  # unrelated instances
            # Connect the extras into a separate chain so they have rules
            # in the dependency graph.
            before = db.engine.counters.snapshot()
            db.set_attr(nodes[0], "weight", 3)
            evals[extra] = db.engine.counters.delta_since(before).rule_evaluations
        assert evals[200] > evals[0]

    def test_budget_enforced(self):
        db = make_db()  # build with incremental first, then swap? no:
        db = Database(
            sum_node_schema(),
            engine_factory=depth_first_factory(budget=100),
            pool_capacity=256,
        )
        ladder = build_diamond_ladder(db, depth=10)
        with pytest.raises(TriggerBudgetExceeded):
            db.set_attr(ladder["top"], "weight", 5)


class TestEagerSemantics:
    def test_values_always_current_without_demand(self):
        db = make_db("dfs")
        nodes = build_chain(db, 5)
        db.set_attr(nodes[0], "weight", 10)
        # Eager engines have no out-of-date values; the cache is current.
        assert not db.engine.is_out_of_date((nodes[-1], "total"))
        assert db.instance(nodes[-1]).attrs["total"] == 14

    def test_demand_counts(self):
        db = make_db("bfs")
        iid = db.create("node", weight=2)
        db.get_attr(iid, "total")
        assert db.engine.counters.demands == 1

    def test_constraints_enforced_by_baselines(self):
        from repro.core.rules import Constraint, Local
        from repro.core.schema import Schema
        from repro.errors import TransactionAborted
        from repro.workloads.topologies import sum_node_schema as base_schema

        schema = base_schema()
        schema.unfreeze()
        schema.extend_class("node").add_constraint(
            Constraint("small", {"t": Local("total")}, lambda t: t < 100)
        )
        schema.freeze()
        db = Database(schema, engine_factory=depth_first_factory())
        iid = db.create("node", weight=1)
        with pytest.raises(TransactionAborted):
            db.set_attr(iid, "weight", 500)
        assert db.get_attr(iid, "weight") == 1
