"""Workload generator tests: determinism and structural properties."""

from repro.core.database import Database
from repro.workloads import (
    build_chain,
    build_diamond_ladder,
    build_fan,
    build_grid,
    build_random_dag,
    build_software_project,
    build_tree,
    random_update_script,
    skewed_access_pattern,
    sum_node_schema,
)


def fresh_db():
    return Database(sum_node_schema(), pool_capacity=256)


class TestTopologies:
    def test_chain_totals(self):
        db = fresh_db()
        nodes = build_chain(db, 7, weight=2)
        assert db.get_attr(nodes[-1], "total") == 14

    def test_ladder_structure(self):
        db = fresh_db()
        ladder = build_diamond_ladder(db, depth=3)
        assert len(ladder["all"]) == 1 + 3 * 3
        # bottom total: top contributes along both arms of each diamond.
        assert db.get_attr(ladder["bottom"], "total") > 0

    def test_tree_root_sums_leaves(self):
        db = fresh_db()
        tree = build_tree(db, depth=2, fanout=2)
        # 1 root + 2 + 4 nodes, every weight 1, values flow to the root.
        assert db.get_attr(tree["root"], "total") == 7

    def test_fan_consumers_independent(self):
        db = fresh_db()
        fan = build_fan(db, width=5)
        for consumer in fan["consumers"]:
            assert db.get_attr(consumer, "total") == 2

    def test_grid_shape(self):
        db = fresh_db()
        grid = build_grid(db, 3, 4)
        assert len(grid["grid"]) == 3 and len(grid["grid"][0]) == 4
        assert db.get_attr(grid["sink"], "total") > 0


class TestRandomDag:
    def test_deterministic_per_seed(self):
        values = []
        for __ in range(2):
            db = fresh_db()
            nodes = build_random_dag(db, 25, edge_prob=0.3, seed=5)
            values.append([db.get_attr(n, "total") for n in nodes])
        assert values[0] == values[1]

    def test_different_seeds_differ(self):
        totals = []
        for seed in (1, 2):
            db = fresh_db()
            nodes = build_random_dag(db, 25, edge_prob=0.3, seed=seed)
            totals.append([db.get_attr(n, "total") for n in nodes])
        assert totals[0] != totals[1]

    def test_acyclic_by_construction(self):
        db = fresh_db()
        nodes = build_random_dag(db, 40, edge_prob=0.5, seed=3)
        # All totals computable implies no cycles anywhere.
        for node in nodes:
            db.get_attr(node, "total")

    def test_max_parents_respected(self):
        db = fresh_db()
        nodes = build_random_dag(db, 40, edge_prob=1.0, seed=3, max_parents=2)
        for node in nodes:
            assert len(db.view(node).connections("inputs")) <= 2


class TestSoftwareProject:
    def test_component_structure(self):
        db = fresh_db()
        project = build_software_project(db, n_components=4, modules_per_component=6)
        assert len(project.components) == 4
        assert len(project.all_nodes) == 24
        assert project.component_of(project.components[2][0]) == 2

    def test_skewed_access_concentrates(self):
        db = fresh_db()
        project = build_software_project(db, n_components=6, modules_per_component=8)
        accesses = skewed_access_pattern(
            project, 1000, hot_components=2, hot_fraction=0.9, seed=4
        )
        hot = set(project.components[0]) | set(project.components[1])
        hot_hits = sum(1 for a in accesses if a in hot)
        assert hot_hits > 800

    def test_access_pattern_deterministic(self):
        db = fresh_db()
        project = build_software_project(db)
        a = skewed_access_pattern(project, 100, seed=9)
        b = skewed_access_pattern(project, 100, seed=9)
        assert a == b


class TestUpdateScripts:
    def test_script_deterministic(self):
        assert random_update_script([1, 2, 3], 20, seed=1) == random_update_script(
            [1, 2, 3], 20, seed=1
        )

    def test_script_shape(self):
        script = random_update_script([1, 2], 50, seed=2, query_fraction=0.0)
        assert all(op == "set" for op, __, __ in script)
