"""docs/SERVER.md is a reference, so it is held to the live registries:
frame types and their fields, the op table, every ``ServerConfig`` knob
(including its default), and the ``server.*`` metrics section."""

from __future__ import annotations

import pathlib
import re
from dataclasses import fields

from repro.core.database import Database
from repro.server.mux import ServerConfig, SessionMultiplexer
from repro.server.protocol import OPS, REQUEST_TYPES, RESPONSE_TYPES, TXN_STATUSES
from repro.workloads import sum_node_schema

DOC = pathlib.Path(__file__).parent.parent.parent / "docs" / "SERVER.md"
TYPE_HEADING = re.compile(r"^### `(\w+)`$", re.MULTILINE)
OP_ROW = re.compile(r"^\| `(\w+)` \| `([^`]*)` \|", re.MULTILINE)
KNOB_BULLET = re.compile(r"^- `(\w+)` \(default `([^`]*)`\)", re.MULTILINE)
METRIC_BULLET = re.compile(r"^- `(server\.\w+)`", re.MULTILINE)


def _sections(text: str) -> dict[str, str]:
    """Map each ### heading to its body (up to the next heading)."""
    out = {}
    for match in TYPE_HEADING.finditer(text):
        rest = text[match.end() :]
        nxt = re.search(r"^#{2,3} ", rest, re.MULTILINE)
        out.setdefault(match.group(1), []).append(
            rest[: nxt.start()] if nxt else rest
        )
    return {name: "\n".join(bodies) for name, bodies in out.items()}


def test_every_frame_type_documented_with_its_fields():
    sections = _sections(DOC.read_text())
    live = {**REQUEST_TYPES, **RESPONSE_TYPES}
    assert set(sections) == set(live), (
        "docs/SERVER.md frame-type headings disagree with the protocol "
        f"registries: missing={sorted(set(live) - set(sections))} "
        f"stale={sorted(set(sections) - set(live))}"
    )
    for name in REQUEST_TYPES:
        for field in REQUEST_TYPES[name]:
            assert f"`{field}`" in sections[name], (
                f"request {name!r}: field {field!r} undocumented"
            )
    for name in RESPONSE_TYPES:
        for field in RESPONSE_TYPES[name]:
            assert f"`{field}`" in sections[name], (
                f"response {name!r}: field {field!r} undocumented"
            )


def test_every_txn_status_documented():
    text = DOC.read_text()
    for status in TXN_STATUSES:
        assert f"`{status}`" in text


def test_op_table_matches_registry():
    rows = dict(OP_ROW.findall(DOC.read_text()))
    assert set(rows) == set(OPS), (
        f"op table disagrees with OPS registry: "
        f"missing={sorted(set(OPS) - set(rows))} "
        f"stale={sorted(set(rows) - set(OPS))}"
    )
    for name, args in rows.items():
        # The documented argument list must match the registered arity.
        assert len(args.split(", ")) == OPS[name], (
            f"op {name!r}: documented arguments {args!r} do not match "
            f"arity {OPS[name]}"
        )


def test_every_config_knob_documented_with_true_default():
    documented = dict(KNOB_BULLET.findall(DOC.read_text()))
    config = ServerConfig()
    live = {f.name: getattr(config, f.name) for f in fields(ServerConfig)}
    assert set(documented) == set(live), (
        "docs/SERVER.md knob list disagrees with ServerConfig: "
        f"missing={sorted(set(live) - set(documented))} "
        f"stale={sorted(set(documented) - set(live))}"
    )
    for name, doc_default in documented.items():
        assert doc_default == str(live[name]), (
            f"knob {name!r}: documented default {doc_default!r} != "
            f"real default {live[name]!r}"
        )


def test_every_server_metric_documented_and_vice_versa():
    db = Database(sum_node_schema())
    mux = SessionMultiplexer(db)
    live = {f"server.{key}" for key in db.metrics().as_dict()["server"]}
    documented = set(METRIC_BULLET.findall(DOC.read_text()))
    assert documented == live, (
        "docs/SERVER.md and the server metrics section disagree: "
        f"undocumented={sorted(live - documented)} "
        f"stale={sorted(documented - live)}"
    )
    latency = db.metrics().as_dict()["latency"]
    assert "request" in latency
    text = DOC.read_text()
    assert "`latency.request`" in text
    for key in latency["request"]:  # the documented timer fields are real
        assert f"`{key}`" in text, f"timer field {key!r} undocumented"
    assert mux.in_flight == 0
