"""The session multiplexer: admission control, accounting, and the
disconnect-teardown regression (a dropped client must leave no trace).
"""

from __future__ import annotations

import pytest

from repro.server.mux import ServerConfig, SessionMultiplexer
from repro.server.protocol import ProtocolError


def submit(mux, name, ops, outcomes=None):
    outcomes = outcomes if outcomes is not None else []

    def done(handle, outcome, detail):
        outcomes.append((handle.name, outcome, detail))

    return mux.submit(name, ops, on_done=done)


class TestSubmission:
    def test_commit_roundtrip_with_result_refs(self, db):
        mux = SessionMultiplexer(db)
        handle = submit(
            mux,
            "t1",
            [
                ["create", "node", {"weight": 3}],
                ["create", "node", {"weight": 4}],
                ["connect", {"$": 0}, "outputs", {"$": 1}, "inputs"],
                ["get_attr", {"$": 1}, "total"],
            ],
        )
        mux.step_batch(100)
        assert handle.outcome == "committed"
        # create -> iid, connect -> None, get_attr -> the derived total.
        assert handle.results[3] == 3 + 4
        assert mux.txns_committed == 1 and mux.in_flight == 0

    def test_create_intrinsics_may_use_refs_in_values_and_dollar_keys(self, db):
        """REVIEW regression: only a dict that is exactly ``{"$": k}`` is a
        result reference.  A create's intrinsics object is never itself a
        reference, but its values resolve."""
        mux = SessionMultiplexer(db)
        handle = submit(
            mux,
            "t1",
            [
                ["create", "node", {"weight": 3}],
                ["get_attr", {"$": 0}, "weight"],
                ["create", "node", {"weight": {"$": 1}}],
                ["get_attr", {"$": 2}, "weight"],
            ],
        )
        mux.step_batch(100)
        assert handle.outcome == "committed"
        assert handle.results[3] == 3

    def test_malformed_ops_raise_before_admission(self, db):
        mux = SessionMultiplexer(db)
        with pytest.raises(ProtocolError):
            submit(mux, "bad", [["frobnicate"]])
        assert mux.txns_submitted == 0 and mux.in_flight == 0

    def test_bad_input_fails_one_txn_not_the_mux(self, db):
        mux = SessionMultiplexer(db)
        outcomes = []
        submit(mux, "bad", [["create", "no_such_class", {}]], outcomes)
        submit(mux, "good", [["create", "node", {"weight": 1}]], outcomes)
        mux.step_batch(100)
        assert dict((n, o) for n, o, _ in outcomes) == {
            "bad": "failed",
            "good": "committed",
        }
        assert mux.txns_failed == 1 and mux.txns_committed == 1

    def test_admission_control_rejects_beyond_max_inflight(self, db):
        mux = SessionMultiplexer(db, ServerConfig(max_inflight=2))
        ops = [["create", "node", {"weight": 1}]]
        assert submit(mux, "a", ops) is not None
        assert submit(mux, "b", ops) is not None
        assert submit(mux, "c", ops) is None  # over the limit
        assert mux.txns_rejected == 1
        mux.step_batch(100)
        assert submit(mux, "d", ops) is not None  # capacity freed
        mux.step_batch(100)
        assert mux.txns_committed == 3

    def test_server_metrics_section_registered(self, db):
        mux = SessionMultiplexer(db)
        submit(mux, "t", [["create", "node", {"weight": 1}]])
        mux.step_batch(100)
        snapshot = db.metrics().as_dict()
        assert snapshot["server"]["txns_committed"] == 1
        assert snapshot["server"]["txns_in_flight"] == 0
        assert snapshot["latency"]["request"]["count"] == 1


class TestDisconnectTeardown:
    """Satellite regression: cancelling a mid-flight transaction must
    release hub.session attribution and timestamp marks, and roll back."""

    def _mid_flight(self, db):
        """A committed instance, plus a txn cancelled halfway through."""
        mux = SessionMultiplexer(db)
        outcomes = []
        seed = submit(mux, "seed", [["create", "node", {"weight": 1}]], outcomes)
        mux.step_batch(100)
        iid = seed.results[0]
        victim = submit(
            mux,
            "victim",
            [
                ["set_attr", iid, "weight", 99],
                ["create", "node", {"weight": 2}],
                ["get_attr", iid, "weight"],
            ],
            outcomes,
        )
        mux.step_batch(1)  # run only the first op; txn is mid-flight
        return mux, outcomes, iid, victim

    def test_cancel_rolls_back_and_reports(self, db):
        mux, outcomes, iid, victim = self._mid_flight(db)
        assert mux.cancel(victim, "disconnected") is True
        assert ("victim", "cancelled", "disconnected") in outcomes
        assert victim.outcome == "cancelled"
        assert mux.txns_cancelled == 1 and mux.in_flight == 0
        # The half-done write was undone: weight is back to 1.
        check = submit(mux, "check", [["get_attr", iid, "weight"]])
        mux.step_batch(100)
        assert check.results == [1]

    def test_cancel_releases_hub_session_attribution(self, db):
        mux, _, _, victim = self._mid_flight(db)
        hub = db.obs.hub
        assert hub.session is None  # scheduler never leaks between steps
        mux.cancel(victim)
        assert hub.session is None  # ...nor across a teardown

    def test_cancel_retracts_timestamp_marks(self, db):
        mux, _, iid, victim = self._mid_flight(db)
        tsm = mux.scheduler.tsm
        ts = victim.state.session.ts
        assert tsm._marks[iid].write_ts == ts  # mark held mid-flight
        mux.cancel(victim)
        assert tsm._marks[iid].write_ts != ts  # retracted on teardown
        assert tsm._marks[iid].write_ts > 0  # ...back to the seed's mark

    def test_cancel_does_not_block_older_writers(self, db):
        """The observable symptom of leaked marks: a ghost read/write mark
        from a dead young transaction keeps aborting older live ones."""
        mux, _, iid, victim = self._mid_flight(db)
        # An older transaction admitted before the cancel (so its ts is
        # only one ahead of the victim's) must be able to write the
        # instance the victim touched without a single CC restart.
        writer = submit(mux, "older", [["set_attr", iid, "weight", 5]])
        mux.cancel(victim)
        mux.step_batch(100)
        assert writer.outcome == "committed"
        assert mux.scheduler.total_restarts == 0

    def test_cancel_after_restart_leaves_no_ghost_marks(self, db):
        """REVIEW regression: a transaction that restarts at least once and
        is then cancelled must retract the marks of *every* attempt, not
        just the latest one."""
        mux = SessionMultiplexer(db)
        seed = submit(mux, "seed", [["create", "node", {"weight": 1}]])
        mux.step_batch(100)
        iid = seed.results[0]
        victim = submit(
            mux,
            "victim",
            [
                ["get_attr", iid, "weight"],
                ["set_attr", iid, "weight", 99],
                ["create", "node", {"weight": 2}],
            ],
        )
        blocker = submit(mux, "blocker", [["set_attr", iid, "weight", 7]])
        # Round-robin: victim reads, blocker writes and commits, victim's
        # write then violates TO and restarts with a fresh timestamp, and
        # the restarted attempt reads again.
        mux.step_batch(4)
        assert blocker.outcome == "committed"
        assert victim.state.restart_count == 1
        assert mux.cancel(victim, "disconnected") is True
        marks = mux.scheduler.tsm._marks[iid]
        # Both attempts' read marks are gone; blocker's write stands.
        assert marks.read_ts == 0
        assert marks.write_ts == blocker.state.session.ts

    def test_cancel_all_on_shutdown(self, db):
        mux, outcomes, _, _ = self._mid_flight(db)
        assert mux.cancel_all("shutdown") == 1
        assert mux.in_flight == 0
        assert ("victim", "cancelled", "shutdown") in outcomes

    def test_cancel_after_completion_is_a_noop(self, db):
        mux = SessionMultiplexer(db)
        handle = submit(mux, "t", [["create", "node", {"weight": 1}]])
        mux.step_batch(100)
        assert handle.outcome == "committed"
        assert mux.cancel(handle) is False
        assert mux.txns_cancelled == 0
