"""Property: serving a workload live produces exactly the batch outcomes.

The server path (admit transactions one by one into the
:class:`SessionMultiplexer`, then step the live scheduler to drain) and
the classic batch path (:meth:`MultiUserScheduler.run` over the same op
lists) must agree on *everything*: which transactions committed and which
failed (with the same reasons), how many CC restarts happened, every
per-op result, and the final durable state of the database.  Hypothesis
generates adversarial workloads -- overlapping writers and readers over a
shared pool of instances plus per-transaction creates -- and the property
runs in both compiled and ``REPRO_NO_COMPILE=1`` engines.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import COMPILE_DISABLED_ENV
from repro.core.database import Database
from repro.persistence.faults import database_fingerprint
from repro.server.mux import SessionMultiplexer
from repro.server.txnscript import scripts_for_workload
from repro.txn.manager import MultiUserScheduler
from repro.workloads import sum_node_schema


def build_db(no_compile: bool) -> tuple[Database, list[int]]:
    """A fresh database (compiled or interpreted) with 4 shared nodes."""
    if no_compile:
        os.environ[COMPILE_DISABLED_ENV] = "1"
    try:
        db = Database(sum_node_schema(), pool_capacity=128)
    finally:
        os.environ.pop(COMPILE_DISABLED_ENV, None)
    shared = [db.create("node", weight=w) for w in (1, 2, 3, 4)]
    db.connect(shared[0], "outputs", shared[1], "inputs")
    db.connect(shared[1], "outputs", shared[2], "inputs")
    return db, shared


# -- workload generation ----------------------------------------------------

_slot = st.integers(min_value=0, max_value=3)  # index into the shared pool
_value = st.integers(min_value=-5, max_value=50)

_op = st.one_of(
    st.tuples(st.just("set_attr"), _slot, _value),
    st.tuples(st.just("get_attr"), _slot, st.sampled_from(["weight", "total"])),
    st.tuples(st.just("create"), _value),
)

_txn = st.lists(_op, min_size=1, max_size=5)
_workload = st.lists(_txn, min_size=2, max_size=5)


def materialize(txns, shared) -> list[tuple[str, list]]:
    """Turn generated op tuples into concrete wire op lists."""
    workload = []
    for t, txn in enumerate(txns):
        ops = []
        for op in txn:
            if op[0] == "set_attr":
                ops.append(["set_attr", shared[op[1]], "weight", op[2]])
            elif op[0] == "get_attr":
                ops.append(["get_attr", shared[op[1]], op[2]])
            else:
                ops.append(["create", "node", {"weight": op[1]}])
        workload.append((f"t{t}", ops))
    return workload


def run_batch(db, workload):
    scheduler = MultiUserScheduler(db)
    triples = scripts_for_workload(workload)
    result = scheduler.run((name, script) for name, script, _ in triples)
    return result, {name: results for name, _, results in triples}


def run_live(db, workload):
    """The server path: submit everything, then drain the live scheduler."""
    mux = SessionMultiplexer(db)
    outcomes: dict[str, tuple[str, str | None]] = {}
    handles = []
    for name, ops in workload:
        handle = mux.submit(
            name,
            ops,
            on_done=lambda h, outcome, detail: outcomes.__setitem__(
                h.name, (outcome, detail)
            ),
        )
        assert handle is not None
        handles.append(handle)
    while mux.step_batch(64):
        pass
    return mux, outcomes, {h.name: h.results for h in handles}


@pytest.mark.parametrize("no_compile", [False, True], ids=["compiled", "interp"])
@settings(max_examples=40, deadline=None)
@given(txns=_workload)
def test_live_serving_equals_batch_run(no_compile, txns):
    db_a, shared_a = build_db(no_compile)
    db_b, shared_b = build_db(no_compile)
    assert shared_a == shared_b

    workload_a = materialize(txns, shared_a)
    workload_b = materialize(txns, shared_b)
    batch, batch_results = run_batch(db_a, workload_a)
    mux, live_outcomes, live_results = run_live(db_b, workload_b)

    # Identical commit/fail verdicts, in the same commit order...
    live_committed = [n for n, _ in workload_b if live_outcomes[n][0] == "committed"]
    assert set(batch.committed) == set(live_committed)
    assert batch.failed == {
        name: detail
        for name, (outcome, detail) in live_outcomes.items()
        if outcome == "failed"
    }
    assert not batch.cancelled and mux.txns_cancelled == 0
    # ... the same restart count (same interleaving, same conflicts) ...
    assert batch.restarts == mux.scheduler.total_restarts
    # ... the same per-op results for every committed transaction ...
    for name in batch.committed:
        assert batch_results[name] == live_results[name]
    # ... and bit-identical durable state.
    assert database_fingerprint(db_a) == database_fingerprint(db_b)
