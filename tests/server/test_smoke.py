"""End-to-end server tests over real sockets.

The headline test drives 16 concurrent client connections through a full
workload in both compiled and ``REPRO_NO_COMPILE=1`` engines and asserts
*exact* accounting: every submitted transaction is answered exactly once,
nothing is lost or duplicated, and the server's own counters agree with
the clients' tallies.  The rest covers the serving edges: abrupt
disconnect mid-transaction, admission rejection, per-connection
pipelining, the connection cap, and protocol errors.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
import time

import pytest

from repro.client import AsyncReproClient, ReproClient, ServerError, TxnBuilder
from repro.compile import COMPILE_DISABLED_ENV
from repro.core.database import Database
from repro.server.mux import ServerConfig
from repro.server.protocol import ProtocolError, encode_frame, recv_frame
from repro.server.server import ReproServer, ServerThread, _Connection
from repro.workloads import sum_node_schema


def build_db(no_compile: bool = False) -> Database:
    if no_compile:
        os.environ[COMPILE_DISABLED_ENV] = "1"
    try:
        return Database(sum_node_schema(), pool_capacity=256)
    finally:
        os.environ.pop(COMPILE_DISABLED_ENV, None)


def wait_until(predicate, timeout: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.mark.parametrize("no_compile", [False, True], ids=["compiled", "interp"])
def test_sixteen_concurrent_clients_exact_accounting(no_compile):
    clients, txns_each = 16, 3
    db = build_db(no_compile)
    results: list = []

    def worker(worker_id: int) -> None:
        with ReproClient(*address) as client:
            for t in range(txns_each):
                txn = TxnBuilder()
                a = txn.create("node", weight=worker_id + 1)
                b = txn.create("node", weight=t + 1)
                txn.connect(a, "outputs", b, "inputs")
                txn.get_attr(b, "total")
                results.append((worker_id, t, client.run(txn)))

    with ServerThread(db) as thread:
        address = thread.address
        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)

        with ReproClient(*address) as probe:
            server = probe.metrics()["server"]

    submitted = clients * txns_each
    # Every transaction answered exactly once, and every one committed.
    assert len(results) == submitted
    assert all(r.committed for _, _, r in results)
    # No lost or duplicated work: every create produced a distinct iid,
    # and each derived total reflects exactly its own two-node chain.
    iids = [iid for _, _, r in results for iid in r.results[:2]]
    assert len(iids) == len(set(iids)) == 2 * submitted
    for worker_id, t, r in results:
        assert r.results[3] == (worker_id + 1) + (t + 1)
    # The server's books match the clients' tally exactly.
    assert server["txns_submitted"] == submitted
    assert server["txns_committed"] == submitted
    assert server["txns_failed"] == 0
    assert server["txns_rejected"] == 0
    assert server["txns_cancelled"] == 0
    assert server["txns_in_flight"] == 0
    assert server["connections_accepted"] == clients + 1  # + the probe


def test_abrupt_disconnect_mid_transaction_rolls_back_and_releases():
    db = build_db()
    with ServerThread(db) as thread:
        thread.pause()  # hold the scheduler so the txn stays mid-flight
        raw = socket.create_connection(thread.address)
        raw.sendall(
            encode_frame(
                {
                    "t": "txn",
                    "id": 1,
                    "ops": [["create", "node", {"weight": 7}]] * 10,
                }
            )
        )
        with ReproClient(*thread.address) as probe:
            wait_until(
                lambda: probe.metrics()["server"]["txns_in_flight"] == 1,
                what="transaction admission",
            )
            raw.close()  # abrupt disconnect: no goodbye frame
            wait_until(
                lambda: probe.metrics()["server"]["txns_cancelled"] == 1,
                what="disconnect teardown",
            )
            thread.resume()
            # The engine is clean: nothing in flight, and new work commits.
            server = probe.metrics()["server"]
            assert server["txns_in_flight"] == 0
            txn = TxnBuilder()
            txn.create("node", weight=1)
            assert probe.run(txn).committed


def test_admission_rejection_answers_rejected():
    db = build_db()
    config = ServerConfig(max_inflight=1)

    async def go(address):
        async with AsyncReproClient() as client:
            await client.connect(*address)
            futures = [
                await client.submit(
                    [["create", "node", {"weight": i + 1}]]
                )
                for i in range(3)
            ]
            # Frames on one connection dispatch in order, so a metrics
            # round-trip proves all three txns hit admission control
            # before the scheduler is allowed to retire the first one.
            assert (await client.metrics())["server"]["txns_in_flight"] == 1
            thread.resume()
            frames = await asyncio.gather(*futures)
            return [f["status"] for f in frames]

    with ServerThread(db, config) as thread:
        thread.pause()  # first txn is admitted but cannot finish...
        statuses = asyncio.run(go(thread.address))
    # ...so the other two bounce off admission control immediately.
    assert sorted(statuses) == ["committed", "rejected", "rejected"]


def test_async_client_pipelines_many_txns_on_one_connection():
    db = build_db()

    async def go(address):
        async with AsyncReproClient() as client:
            await client.connect(*address)
            await client.ping()
            futures = []
            for i in range(20):
                txn = TxnBuilder()
                iid = txn.create("node", weight=i)
                txn.get_attr(iid, "weight")
                futures.append(await client.submit(txn))
            frames = await asyncio.gather(*futures)
            return frames

    with ServerThread(db) as thread:
        frames = asyncio.run(go(thread.address))
    assert [f["status"] for f in frames] == ["committed"] * 20
    assert [f["results"][1] for f in frames] == list(range(20))
    # Responses matched to requests by id even if completion reordered.
    assert len({f["id"] for f in frames}) == 20


def test_connection_cap_rejects_with_error_frame():
    db = build_db()
    with ServerThread(db, ServerConfig(max_connections=1)) as thread:
        first = ReproClient(*thread.address)
        first.ping()  # occupy the one slot
        second = socket.create_connection(thread.address)
        frame = recv_frame(second)
        assert frame["t"] == "error" and "capacity" in frame["error"]
        assert second.recv(1) == b""  # server hung up
        second.close()
        first.close()

        def slot_free() -> bool:  # the FIN races the next connect
            try:
                with ReproClient(*thread.address) as third:
                    third.ping()
                return True
            except (ServerError, ProtocolError):
                return False

        wait_until(slot_free, what="connection slot release")


def test_unknown_request_type_answers_error_frame():
    db = build_db()
    with ServerThread(db) as thread:
        sock = socket.create_connection(thread.address)
        sock.sendall(encode_frame({"t": "bogus", "id": 9}))
        frame = recv_frame(sock)
        assert frame == {"t": "error", "id": 9, "error": "unknown request type 'bogus'"}
        # The connection survives a bad request type...
        sock.sendall(encode_frame({"t": "ping", "id": 10}))
        assert recv_frame(sock) == {"t": "pong", "id": 10}
        # ...but not a malformed op list answered by validation.
        sock.sendall(encode_frame({"t": "txn", "id": 11, "ops": []}))
        frame = recv_frame(sock)
        assert frame["t"] == "error" and "non-empty" in frame["error"]
        sock.close()


def test_oversized_response_degrades_to_error_and_serving_continues():
    """REVIEW regression: requests are capped, responses are not -- a txn
    of small get_attr ops over a large stored value builds a result frame
    over the limit.  That must answer an in-band error frame, never kill
    the driver task (which would silently halt serving for every client).
    """
    db = build_db()
    big = int("9" * 3000)  # a ~3 KB integer: one copy fits a request...
    with ServerThread(db, ServerConfig(max_frame_bytes=4096)) as thread:
        with ReproClient(*thread.address, timeout=10) as client:
            setup = TxnBuilder()
            setup.create("node", weight=big)
            stored = client.run(setup)
            assert stored.committed
            iid = stored.results[0]
            # ...but two copies in one response exceed the frame limit.
            with pytest.raises(ServerError, match="response dropped"):
                client.run([["get_attr", iid, "weight"]] * 2)
            # The driver survived: the same connection keeps being served.
            client.ping()
            follow_up = TxnBuilder()
            follow_up.create("node", weight=1)
            assert client.run(follow_up).committed
            server = client.metrics()["server"]
    # The oversized transaction itself committed; only its answer dropped.
    assert server["txns_committed"] == 3
    assert server["txns_in_flight"] == 0


def test_teardown_reclaims_capacity_when_sender_is_stuck():
    """REVIEW regression: a sender wedged in drain() against a stalled
    peer used to make teardown skip its accounting, leaking the
    connection-capacity budget until the server rejected everyone."""
    db = build_db()

    class _InertWriter:
        def close(self):
            pass

        async def wait_closed(self):
            pass

    async def go():
        server = ReproServer(db, ServerConfig(drain_timeout=0.05))
        conn = _Connection(1, _InertWriter())
        server._conns[1] = conn
        server.mux.connections_open += 1
        # A sender that never drains, standing in for a stalled peer.
        sender = asyncio.ensure_future(asyncio.sleep(60))
        await server._teardown(conn, sender)
        assert sender.done()
        assert server.mux.connections_open == 0
        assert server.mux.connections_closed == 1
        assert 1 not in server._conns

    asyncio.run(go())


def test_failed_transaction_reports_reason_and_restarts_field():
    db = build_db()
    with ServerThread(db) as thread:
        with ReproClient(*thread.address) as client:
            result = client.run([["create", "nope", {}]])
    assert result.status == "failed"
    assert not result.committed
    assert "nope" in result.error
    assert result.restarts == 0
    assert result.results == []
