"""Wire framing and op-list validation."""

from __future__ import annotations

import asyncio
import io
import socket
import struct
import threading

import pytest

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    ProtocolError,
    encode_frame,
    read_frame,
    recv_frame,
)
from repro.server.txnscript import validate_ops


def roundtrip_async(data: bytes):
    """Feed raw bytes to read_frame via an asyncio StreamReader."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(go())


class TestFraming:
    def test_encode_decode_roundtrip(self):
        payload = {"t": "txn", "id": 7, "ops": [["create", "node", {"weight": 3}]]}
        assert roundtrip_async(encode_frame(payload)) == [payload]

    def test_multiple_frames_in_one_buffer(self):
        frames = [{"t": "ping", "id": i} for i in range(5)]
        data = b"".join(encode_frame(f) for f in frames)
        assert roundtrip_async(data) == frames

    def test_clean_eof_returns_none(self):
        assert roundtrip_async(b"") == []

    def test_eof_inside_body_raises(self):
        data = encode_frame({"t": "ping", "id": 1})[:-2]
        with pytest.raises(asyncio.IncompleteReadError):
            roundtrip_async(data)

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})

    def test_oversized_frame_rejected_on_read(self):
        data = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            roundtrip_async(data + b"x")

    def test_non_object_body_rejected(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="JSON object"):
            roundtrip_async(struct.pack(">I", len(body)) + body)

    def test_undecodable_body_rejected(self):
        body = b"\xff\xfe not json"
        with pytest.raises(ProtocolError, match="undecodable"):
            roundtrip_async(struct.pack(">I", len(body)) + body)

    def test_unjsonable_values_degrade_to_repr(self):
        frame = roundtrip_async(encode_frame({"t": "result", "value": {1, 2}}))[0]
        assert "1" in frame["value"]  # repr of the set, not a crash


class TestRecvFrame:
    """The blocking counterpart, over a real socket pair."""

    def _over_socket(self, data: bytes):
        a, b = socket.socketpair()
        try:
            a.sendall(data)
            a.close()
            frames = []
            while True:
                frame = recv_frame(b)
                if frame is None:
                    return frames
                frames.append(frame)
        finally:
            b.close()

    def test_roundtrip_and_clean_eof(self):
        payload = {"t": "pong", "id": 3}
        assert self._over_socket(encode_frame(payload) * 2) == [payload, payload]

    def test_eof_mid_frame_raises(self):
        with pytest.raises(ProtocolError, match="inside a frame"):
            self._over_socket(encode_frame({"t": "ping", "id": 1})[:-1])

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="inside a frame"):
            self._over_socket(b"\x00\x00")


class TestValidateOps:
    def test_valid_ops_pass(self):
        ops = [
            ["create", "node", {"weight": 1}],
            ["create", "node", {"weight": 2}],
            ["connect", {"$": 0}, "outputs", {"$": 1}, "inputs"],
            ["set_attr", {"$": 0}, "weight", 9],
            ["get_attr", {"$": 1}, "total"],
            ["disconnect", {"$": 0}, "outputs", {"$": 1}, "inputs"],
            ["delete", {"$": 1}],
        ]
        assert validate_ops(ops) is ops

    @pytest.mark.parametrize(
        "bad, match",
        [
            (None, "non-empty list"),
            ([], "non-empty list"),
            ([[]], "non-empty list"),
            ([["frobnicate", 1]], "unknown operation"),
            ([["create", "node"]], "takes 2 arguments"),
            ([["get_attr", 1, "total", "extra"]], "takes 2 arguments"),
            ([["delete", {"$": 0}]], "earlier op"),
            ([["create", "node", {}], ["delete", {"$": 1}]], "earlier op"),
            ([["create", "node", {}], ["delete", {"$": -1}]], "earlier op"),
            ([["create", "node", "weight"]], "intrinsics"),
        ],
    )
    def test_malformed_ops_rejected(self, bad, match):
        with pytest.raises(ProtocolError, match=match):
            validate_ops(bad)

    def test_only_exact_dollar_dict_is_a_reference(self):
        """REVIEW regression: a dict merely *containing* a ``"$"`` key is a
        literal value, and a create's intrinsics object is never itself a
        reference -- only its values are checked."""
        ops = [
            ["create", "node", {"$": 0}],  # literal attribute named "$"
            ["set_attr", {"$": 0}, "weight", {"$": 99, "note": "literal"}],
            ["create", "node", {"weight": {"$": 1}}],  # value reference
        ]
        assert validate_ops(ops) is ops

    def test_bad_reference_in_create_intrinsics_value_rejected(self):
        with pytest.raises(ProtocolError, match="earlier op"):
            validate_ops([["create", "node", {"weight": {"$": 5}}]])

    def test_registry_covers_session_surface(self):
        # Every wire op maps to a Session method with matching arity.
        from repro.txn.manager import Session

        for name, arity in OPS.items():
            assert hasattr(Session, name)
