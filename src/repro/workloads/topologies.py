"""Standard attributed-graph topologies.

A single reusable schema -- ``node`` objects whose derived ``total`` sums
the node's intrinsic ``weight`` with the totals received from upstream
nodes -- instantiated over the shapes the experiments need:

* **chain** -- a line of n nodes; the long-thin case for E2/E6.
* **diamond ladder** -- depth d of 2-wide diamonds; the number of paths from
  the top to the bottom is 2^d, so per-path eager triggers are exponential
  while Could_Change is linear (E1's crossover shape).
* **tree** -- complete k-ary tree with values flowing leaf-to-root.
* **fan** -- one hub feeding w independent consumers (laziness, E3).
* **grid** -- an n×m DAG grid (moderately path-rich, used in E4).

Every builder returns the created instance ids in a structured form so
tests can address specific nodes.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.core.rules import AttributeTarget, Local, Received, Rule, TransmitTarget
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)


def sum_node_schema() -> Schema:
    """The workhorse schema: weighted nodes summing upstream totals."""
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType("dep", [FlowDecl("total", "integer", End.PLUG)])
    )
    schema.add_class(
        ObjectClass(
            "node",
            attributes=[
                AttributeDef("weight", "integer"),
                AttributeDef("total", "integer", AttrKind.DERIVED),
            ],
            ports=[
                PortDef("inputs", "dep", End.SOCKET, multi=True),
                PortDef("outputs", "dep", End.PLUG, multi=True),
            ],
            rules=[
                Rule(
                    AttributeTarget("total"),
                    {"w": Local("weight"), "ins": Received("inputs", "total")},
                    lambda w, ins: w + sum(ins),
                ),
                Rule(
                    TransmitTarget("outputs", "total"),
                    {"t": Local("total")},
                    lambda t: t,
                ),
            ],
        )
    )
    return schema.freeze()


def link(db: Database, upstream: int, downstream: int) -> None:
    """Make ``downstream``'s total include ``upstream``'s."""
    db.connect(downstream, "inputs", upstream, "outputs")


def build_chain(db: Database, length: int, weight: int = 1) -> list[int]:
    """``n0 -> n1 -> ... -> n_{length-1}``; returns ids head-first."""
    nodes = [db.create("node", weight=weight) for __ in range(length)]
    for upstream, downstream in zip(nodes, nodes[1:]):
        link(db, upstream, downstream)
    return nodes


def build_diamond_ladder(db: Database, depth: int, weight: int = 1) -> dict:
    """A ladder of ``depth`` stacked diamonds.

    Layout (values flow downward)::

            top
           /    \\
          l0    r0
           \\   /
           m1          <- joins, then splits again
           /  \\
          l1   r1
           \\  /
            ...
          bottom

    Returns ``{"top": id, "bottom": id, "all": [ids]}``.  Paths from top to
    bottom: ``2 ** depth``.
    """
    top = db.create("node", weight=weight)
    all_nodes = [top]
    current = top
    for __ in range(depth):
        left = db.create("node", weight=weight)
        right = db.create("node", weight=weight)
        join = db.create("node", weight=weight)
        for mid in (left, right):
            link(db, current, mid)
            link(db, mid, join)
        all_nodes.extend([left, right, join])
        current = join
    return {"top": top, "bottom": current, "all": all_nodes}


def build_tree(db: Database, depth: int, fanout: int = 2, weight: int = 1) -> dict:
    """A complete tree; leaf values flow up to the root.

    Returns ``{"root": id, "leaves": [ids], "all": [ids]}``.
    """
    root = db.create("node", weight=weight)
    levels = [[root]]
    all_nodes = [root]
    for __ in range(depth):
        next_level = []
        for parent in levels[-1]:
            for __ in range(fanout):
                child = db.create("node", weight=weight)
                link(db, child, parent)  # child's total feeds the parent
                next_level.append(child)
                all_nodes.append(child)
        levels.append(next_level)
    return {"root": root, "leaves": levels[-1], "all": all_nodes}


def build_fan(db: Database, width: int, weight: int = 1) -> dict:
    """One hub feeding ``width`` independent consumers.

    Returns ``{"hub": id, "consumers": [ids]}``.
    """
    hub = db.create("node", weight=weight)
    consumers = []
    for __ in range(width):
        consumer = db.create("node", weight=weight)
        link(db, hub, consumer)
        consumers.append(consumer)
    return {"hub": hub, "consumers": consumers}


def build_grid(db: Database, rows: int, cols: int, weight: int = 1) -> dict:
    """An ``rows x cols`` DAG grid; each cell feeds its right and down
    neighbours.  Returns ``{"origin": id, "sink": id, "grid": [[ids]]}``.
    """
    grid = [
        [db.create("node", weight=weight) for __ in range(cols)]
        for __ in range(rows)
    ]
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                link(db, grid[r][c], grid[r][c + 1])
            if r + 1 < rows:
                link(db, grid[r][c], grid[r + 1][c])
    return {"origin": grid[0][0], "sink": grid[-1][-1], "grid": grid}
