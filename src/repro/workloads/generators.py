"""Randomised (but seeded, reproducible) workload generators.

* :func:`build_random_dag` -- a layered random DAG over the sum-node
  schema, for property tests and coverage of irregular shapes.
* :func:`build_software_project` -- a synthetic software-project object
  graph (modules grouped into components) with a skewed access pattern
  generator; this is the clustering/scheduling workload (E4/E5): accesses
  concentrate inside components, so usage-based clustering has locality to
  discover.
* :func:`random_update_script` -- a reproducible stream of primitive
  updates and queries for soak/property testing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.database import Database
from repro.workloads.topologies import link


def build_random_dag(
    db: Database,
    n_nodes: int,
    edge_prob: float = 0.2,
    seed: int = 0,
    max_parents: int = 4,
) -> list[int]:
    """A layered random DAG: node i may depend on nodes j < i.

    Edges are sampled with probability ``edge_prob`` per candidate pair,
    capped at ``max_parents`` parents per node.  Deterministic for a given
    seed.  Returns ids in topological order (upstream first).
    """
    rng = random.Random(seed)
    nodes = [db.create("node", weight=rng.randrange(1, 10)) for __ in range(n_nodes)]
    for i, node in enumerate(nodes):
        if i == 0:
            continue
        candidates = list(range(i))
        rng.shuffle(candidates)
        parents = 0
        for j in candidates:
            if parents >= max_parents:
                break
            if rng.random() < edge_prob:
                link(db, nodes[j], node)
                parents += 1
    return nodes


@dataclass
class SoftwareProject:
    """Handle to a generated project graph."""

    components: list[list[int]]
    all_nodes: list[int]

    def component_of(self, iid: int) -> int:
        for index, members in enumerate(self.components):
            if iid in members:
                return index
        raise KeyError(iid)


def build_software_project(
    db: Database,
    n_components: int = 8,
    modules_per_component: int = 12,
    cross_links: int = 6,
    seed: int = 0,
) -> SoftwareProject:
    """A component-structured module graph over the sum-node schema.

    Modules inside a component form a dependency chain plus a few intra-
    component shortcuts; ``cross_links`` edges connect consecutive
    components.  The structure mimics a layered software project: most
    value flow stays inside a component, which is exactly the locality the
    paper's clustering algorithm is designed to exploit.
    """
    rng = random.Random(seed)
    components: list[list[int]] = []
    for __ in range(n_components):
        members = [
            db.create("node", weight=rng.randrange(1, 5))
            for __ in range(modules_per_component)
        ]
        for upstream, downstream in zip(members, members[1:]):
            link(db, upstream, downstream)
        # A few intra-component shortcuts.
        for __ in range(modules_per_component // 4):
            i, j = sorted(rng.sample(range(modules_per_component), 2))
            if j - i > 1:
                try:
                    link(db, members[i], members[j])
                except Exception:
                    pass  # duplicate edge; skip
        components.append(members)
    for a, b in zip(components, components[1:]):
        for __ in range(cross_links):
            src = rng.choice(a)
            dst = rng.choice(b)
            try:
                link(db, src, dst)
            except Exception:
                pass  # duplicate edge; skip
    return SoftwareProject(
        components=components,
        all_nodes=[iid for members in components for iid in members],
    )


def skewed_access_pattern(
    project: SoftwareProject,
    n_accesses: int,
    hot_components: int = 2,
    hot_fraction: float = 0.8,
    seed: int = 1,
) -> list[int]:
    """Instance ids to query, concentrated on a few hot components.

    ``hot_fraction`` of accesses land in the first ``hot_components``
    components; the rest spread uniformly.  Deterministic per seed.
    """
    rng = random.Random(seed)
    hot = [iid for members in project.components[:hot_components] for iid in members]
    accesses = []
    for __ in range(n_accesses):
        if rng.random() < hot_fraction:
            accesses.append(rng.choice(hot))
        else:
            accesses.append(rng.choice(project.all_nodes))
    return accesses


def random_update_script(
    nodes: list[int], n_ops: int, seed: int = 0, query_fraction: float = 0.5
) -> list[tuple[str, int, int]]:
    """A reproducible stream of ``("set", iid, value)`` / ``("get", iid, 0)``.

    Property tests replay the same script against the incremental engine
    and a baseline and assert identical observable values.
    """
    rng = random.Random(seed)
    script: list[tuple[str, int, int]] = []
    for __ in range(n_ops):
        iid = rng.choice(nodes)
        if rng.random() < query_fraction:
            script.append(("get", iid, 0))
        else:
            script.append(("set", iid, rng.randrange(0, 100)))
    return script


def run_update_script(
    db: Database, script: list[tuple[str, int, int]], batch: bool = False
) -> list[int]:
    """Execute a script; returns the values observed by the gets.

    With ``batch=True`` the whole script runs inside one ``db.batch()``
    block: sets coalesce into a single propagation wave while gets still
    observe exact values (a mid-batch read flushes deferred marking).
    Property tests replay the same script both ways and assert identical
    observations.
    """
    observed: list[int] = []

    def run() -> None:
        for op, iid, value in script:
            if op == "set":
                db.set_attr(iid, "weight", value)
            else:
                observed.append(db.get_attr(iid, "total"))

    if batch:
        with db.batch():
            run()
    else:
        run()
    return observed
