"""Deterministic workload generators for tests and benchmarks.

:mod:`repro.workloads.topologies` builds the canonical shapes (chain,
diamond ladder, tree, fan, grid) over a reusable sum-node schema;
:mod:`repro.workloads.generators` adds seeded random DAGs, the synthetic
software-project graph with skewed access patterns, and replayable update
scripts.
"""

from repro.workloads.generators import (
    SoftwareProject,
    build_random_dag,
    build_software_project,
    random_update_script,
    run_update_script,
    skewed_access_pattern,
)
from repro.workloads.topologies import (
    build_chain,
    build_diamond_ladder,
    build_fan,
    build_grid,
    build_tree,
    link,
    sum_node_schema,
)

__all__ = [
    "SoftwareProject",
    "build_chain",
    "build_diamond_ladder",
    "build_fan",
    "build_grid",
    "build_random_dag",
    "build_software_project",
    "build_tree",
    "link",
    "random_update_script",
    "run_update_script",
    "skewed_access_pattern",
    "sum_node_schema",
]
