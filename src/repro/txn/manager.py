"""Multi-user operation: sessions and the interleaving scheduler.

Cactis is "a multi-user DBMS ... using a timestamping concurrency control
technique".  This module reproduces multi-user behaviour deterministically:

* a :class:`Session` is one user's transaction stream.  Its primitives
  mirror the database's, but every operation first passes the
  timestamp-ordering checks of
  :class:`~repro.txn.timestamps.TimestampManager`.
* a *script* is a generator function taking a session and yielding between
  operations; the yield points are where the scheduler may switch users.
* :class:`MultiUserScheduler` interleaves scripts (round-robin or seeded
  random).  When an operation violates timestamp ordering the session's
  transaction is rolled back and the whole script restarts with a fresh,
  younger timestamp -- the classic basic-TO restart discipline.

The scheduler's core is *live*: scripts are admitted with :meth:`admit`
and executed one yield-to-yield slice at a time by :meth:`step`, so new
scripts may arrive (and finished ones retire) while others are mid-flight.
:meth:`run` is the batch convenience the tests and benchmarks use -- admit
everything, then step until drained -- and ``repro.server`` drives the same
loop from asyncio, admitting transactions as client frames arrive and
cancelling them (:meth:`cancel`) when a connection drops mid-transaction.

Each session accumulates its own undo delta; the scheduler *adopts* the
delta into the database's transaction manager around every step, so
single-stream code paths (logging, rollback, commit audit) are reused
unchanged.  Writes are visible immediately; see
:mod:`repro.txn.timestamps` for the documented simplifications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from repro.errors import (
    ConcurrencyAbort,
    ConstraintViolation,
    TransactionAborted,
    TransactionError,
)
from repro.txn.log import Delta
from repro.txn.timestamps import TimestampManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database

Script = Callable[["Session"], Generator[None, None, None]]


class Session:
    """One user's view of the database under timestamp CC.

    With ``track_marks=True`` the session journals every timestamp mark it
    places (and the mark it displaced), so :meth:`release_marks` can undo
    them if the transaction is torn down without committing -- the server
    uses this for client disconnects, where leaving ghost marks behind
    would keep aborting older transactions against work that never
    happened.  The journal spans restart attempts (each entry records the
    timestamp it was placed with), so a cancel after one or more CC
    restarts retracts *every* attempt's marks, and a terminal outcome
    (commit, final failure) seals them via :meth:`confirm_marks` instead.
    """

    def __init__(
        self,
        db: "Database",
        tsm: TimestampManager,
        name: str = "",
        track_marks: bool = False,
    ) -> None:
        self.db = db
        self.tsm = tsm
        self.name = name
        self.ts = 0
        self._delta: Delta | None = None
        #: values returned by get_attr, for post-run assertions in tests.
        self.observations: list[Any] = []
        #: journal of (kind, iid, ts, displaced_mark) entries spanning every
        #: restart attempt, or None when mark tracking is off (the default
        #: for batch scheduling).
        self._mark_log: list[tuple[str, int, int, int]] | None = (
            [] if track_marks else None
        )

    # -- lifecycle (driven by the scheduler) -------------------------------

    def start(self) -> None:
        # Deliberately does NOT clear the mark journal: a restarted
        # attempt's marks carry the old timestamp and stay journalled so a
        # later cancel can retract them too (release_marks) -- clearing
        # here would orphan them as permanent ghosts.
        self.ts = self.tsm.new_timestamp()
        self._delta = Delta(txn_id=self.ts, label=self.name)

    def _adopted(self):
        """Context manager routing the db's logging to this session's delta."""
        return _Adoption(self)

    def _check_read(self, iid: int) -> int:
        tracked = self._mark_log is not None
        previous = self.tsm.check_read(self.ts, iid, track=tracked)
        if tracked:
            self._mark_log.append(("r", iid, self.ts, previous))
        return previous

    def _check_write(self, iid: int) -> int:
        previous = self.tsm.check_write(self.ts, iid)
        if self._mark_log is not None:
            self._mark_log.append(("w", iid, self.ts, previous))
        return previous

    def release_marks(self) -> None:
        """Retract every journalled timestamp mark, across all attempts.

        Only meaningful on the teardown path of a ``track_marks`` session:
        the work was rolled back, so the marks describe reads and writes
        that no longer exist.  Each entry is retracted under the timestamp
        it was placed with, so marks from restarted attempts go too.  Marks
        a younger transaction has since overwritten are left alone (see
        ``retract_read``/``retract_write``).
        """
        if not self._mark_log:
            return
        for kind, iid, ts, previous in reversed(self._mark_log):
            if kind == "w":
                self.tsm.retract_write(ts, iid, previous)
            else:
                self.tsm.retract_read(ts, iid, previous)
        self._mark_log.clear()

    def confirm_marks(self) -> None:
        """Seal the journalled marks after a terminal outcome.

        On commit (and terminal failure) the marks must *stand* -- exactly
        as an untracked batch session's would -- so instead of retracting,
        each journalled read moves from the record's in-doubt reader
        bookkeeping to its stable floor (write marks already stand on
        their own).  Clearing the journal here is what guarantees a later
        teardown can never retract a terminated transaction's marks.
        """
        if not self._mark_log:
            return
        for kind, iid, ts, _previous in self._mark_log:
            if kind == "r":
                self.tsm.confirm_read(ts, iid)
        self._mark_log.clear()

    def commit(self) -> Delta:
        if self._delta is None:
            raise TransactionError(f"session {self.name!r} has no open transaction")
        delta, self._delta = self._delta, None
        self.db.txn.adopt(delta)
        try:
            committed = self.db.txn.commit()
        except BaseException:
            # A commit-time rejection (e.g. a ConcurrencyAbort out of a
            # commit-time check) leaves the delta adopted but uncommitted.
            # Reclaim it so a subsequent rollback() can undo the work;
            # without this the manager stays "in transaction" and the next
            # adopted step blows up with a TransactionError.  When the
            # manager itself already aborted (TransactionAborted from the
            # constraint audit) there is nothing left to reclaim.
            if self.db.txn.in_transaction:
                self._delta = self.db.txn.release()
            raise
        self.tsm.note_commit()
        self.confirm_marks()
        return committed

    def rollback(self) -> None:
        if self._delta is None:
            return
        delta, self._delta = self._delta, None
        self.db.txn.adopt(delta)
        self.db.txn.abort()

    # -- primitives ------------------------------------------------------------

    def create(self, class_name: str, **intrinsics: Any) -> int:
        # Check-then-act, like every other write primitive: validate the
        # timestamp against the id the create is about to allocate *before*
        # touching the database.  A doomed create must not allocate an
        # instance id or mutate anything and then lean on rollback.
        #
        # The write mark recorded here is provisional: if the create itself
        # fails validation (unknown class, bad atom type) the id was never
        # consumed, and leaving our timestamp on it would spuriously abort
        # whichever older transaction later allocates that id.
        target = self.db.next_instance_id
        previous = self._check_write(target)
        try:
            with self._adopted():
                return self.db.create(class_name, **intrinsics)
        except ConcurrencyAbort:
            raise
        except Exception:
            self.tsm.retract_write(self.ts, target, previous)
            raise

    def delete(self, iid: int) -> None:
        self._check_write(iid)
        with self._adopted():
            self.db.delete(iid)

    def connect(self, iid_a: int, port_a: str, iid_b: int, port_b: str) -> None:
        self._check_write(iid_a)
        self._check_write(iid_b)
        with self._adopted():
            self.db.connect(iid_a, port_a, iid_b, port_b)

    def disconnect(self, iid_a: int, port_a: str, iid_b: int, port_b: str) -> None:
        self._check_write(iid_a)
        self._check_write(iid_b)
        with self._adopted():
            self.db.disconnect(iid_a, port_a, iid_b, port_b)

    def set_attr(self, iid: int, attr: str, value: Any) -> None:
        self._check_write(iid)
        with self._adopted():
            self.db.set_attr(iid, attr, value)

    def get_attr(self, iid: int, attr: str) -> Any:
        self._check_read(iid)
        with self._adopted():
            value = self.db.get_attr(iid, attr)
        self.observations.append(value)
        return value


class _Adoption:
    """Temporarily installs a session's delta as the db's active transaction."""

    def __init__(self, session: Session) -> None:
        self.session = session

    def __enter__(self) -> None:
        if self.session._delta is None:
            raise TransactionError(
                f"session {self.session.name!r} used outside the scheduler"
            )
        self.session.db.txn.adopt(self.session._delta)

    def __exit__(self, exc_type, exc, tb) -> None:
        txn = self.session.db.txn
        if txn.in_transaction:
            txn.release()
        else:
            # The primitive aborted the whole adopted transaction (e.g. a
            # constraint violation): its work is already rolled back.  Give
            # the session a fresh, empty delta so a script that handles the
            # exception continues on a clean slate.
            self.session._delta = Delta(
                txn_id=self.session.ts, label=self.session.name
            )


@dataclass
class ScheduleResult:
    """Outcome of one :meth:`MultiUserScheduler.run`."""

    committed: list[str]
    restarts: int
    steps: int
    #: scripts that failed for reasons restarting cannot cure (constraint
    #: violations, other final aborts, a blown restart budget), name -> reason.
    failed: dict[str, str] = dataclass_field(default_factory=dict)
    #: scripts torn down externally (client disconnects); never populated
    #: by :meth:`MultiUserScheduler.run`, only by live :meth:`cancel` calls.
    cancelled: list[str] = dataclass_field(default_factory=list)


#: outcome strings passed to an ``on_done`` callback.
OUTCOME_COMMITTED = "committed"
OUTCOME_FAILED = "failed"
OUTCOME_CANCELLED = "cancelled"


class MultiUserScheduler:
    """Deterministically interleaves session scripts under timestamp CC.

    The scheduler is a *live* multiplexer: :meth:`admit` registers a script
    at any time, :meth:`step` advances exactly one runnable script by one
    yield-to-yield slice (handling the whole restart/failure discipline),
    and :meth:`cancel` tears a script down mid-flight.  :meth:`run` wraps
    this into the classic batch driver.  ``max_restarts`` is the per-script
    restart budget; exceeding it retires the script into ``failed`` rather
    than aborting the whole schedule.
    """

    def __init__(
        self,
        db: "Database",
        tsm: TimestampManager | None = None,
        seed: int | None = None,
        max_restarts: int = 100,
    ) -> None:
        self.db = db
        self.tsm = tsm if tsm is not None else TimestampManager()
        self.max_restarts = max_restarts
        self._rng = random.Random(seed) if seed is not None else None
        self._states: list[_ScriptState] = []
        self._cursor = 0
        self._live = 0
        # Cumulative accounting across the scheduler's lifetime; run()
        # reports per-batch slices of these.
        self._committed: list[str] = []
        self._failed: dict[str, str] = {}
        self._cancelled: list[str] = []
        self._restarts = 0
        self._steps = 0
        # Take over the database's concurrency-control metrics section and
        # route TO-rejection events through its hub.
        obs = getattr(db, "obs", None)
        self._hub = obs.hub if obs is not None else None
        if obs is not None:
            self.tsm.hub = obs.hub
            obs.register("cc", self._cc_metrics)

    def _cc_metrics(self) -> dict:
        stats = self.tsm.stats
        return {
            "reads_checked": stats.reads_checked,
            "writes_checked": stats.writes_checked,
            "read_rejections": stats.read_rejections,
            "write_rejections": stats.write_rejections,
            "transactions_started": stats.transactions_started,
            "transactions_committed": stats.transactions_committed,
            "transactions_restarted": stats.transactions_restarted,
        }

    # -- live multiplexing --------------------------------------------------

    @property
    def live(self) -> int:
        """Number of admitted scripts not yet committed/failed/cancelled."""
        return self._live

    @property
    def total_restarts(self) -> int:
        """Cumulative CC restarts across the scheduler's lifetime."""
        return self._restarts

    def admit(
        self,
        name: str,
        script: Script,
        *,
        track_marks: bool = False,
        on_done: "DoneCallback | None" = None,
    ) -> "_ScriptState":
        """Register a script for interleaved execution, starting now.

        The session is started immediately (it draws its timestamp here, so
        admission order is timestamp order).  ``on_done`` -- if given -- is
        invoked exactly once with ``(state, outcome, detail)`` when the
        script commits, fails, or is cancelled; ``track_marks`` enables the
        session mark journal needed by :meth:`cancel` teardown.
        """
        state = _ScriptState(
            name, script, Session(self.db, self.tsm, name, track_marks=track_marks)
        )
        state.on_done = on_done
        state.begin()
        self._states.append(state)
        self._live += 1
        return state

    def step(self) -> "_ScriptState | None":
        """Advance one runnable script by one yield-to-yield slice.

        Returns the stepped state, or ``None`` when nothing is live.  All
        of the restart/failure discipline lives here: a
        :class:`ConcurrencyAbort` (mid-script or at commit) rolls the
        script back and restarts it with a fresh timestamp until its
        ``max_restarts`` budget is spent, at which point it retires into
        ``failed``; constraint violations and other final aborts retire it
        immediately.  Every other live script keeps running either way.
        """
        if self._live == 0:
            return None
        if self._rng is not None:
            runnable = [s for s in self._states if not s.done]
            state = runnable[self._rng.randrange(len(runnable))]
        else:
            # Round-robin over a *fixed* rotation of all admitted scripts,
            # skipping finished ones.  Indexing into a shrinking runnable
            # list instead would skew the rotation the moment a script
            # finished, letting one neighbour step twice while another
            # starved.
            while self._states[self._cursor % len(self._states)].done:
                self._cursor += 1
            state = self._states[self._cursor % len(self._states)]
            self._cursor += 1
        self._steps += 1
        hub = self._hub
        if hub is not None:
            hub.session = state.name
        try:
            next(state.gen)
        except StopIteration:
            try:
                state.session.commit()
                self._retire_committed(state)
            except ConcurrencyAbort:
                self._restart(state)
            except TransactionAborted as exc:
                self._fail(state, exc)
        except ConcurrencyAbort:
            self._restart(state)
        except (ConstraintViolation, TransactionAborted) as exc:
            self._fail(state, exc)
        finally:
            if hub is not None:
                hub.session = None
        return state

    def cancel(self, state: "_ScriptState", reason: str = "cancelled") -> bool:
        """Tear down a live script between yield points (disconnect path).

        Rolls the session's delta back, retracts its journalled timestamp
        marks (when the session tracks them), and retires the script
        without recording it as committed or failed.  Returns ``False`` if
        the script had already finished.
        """
        if state.done:
            return False
        hub = self._hub
        if hub is not None:
            # Attribute the teardown's abort events to the dying session,
            # and never leak that attribution past the cancel.
            hub.session = state.name
        try:
            state.session.rollback()
            state.session.release_marks()
        finally:
            if hub is not None:
                hub.session = None
        state.done = True
        self._live -= 1
        self._cancelled.append(state.name)
        self._compact()
        self._notify(state, OUTCOME_CANCELLED, reason)
        return True

    def drain(self) -> None:
        """Step until no script is live."""
        while self.step() is not None:
            pass

    # -- batch driver -------------------------------------------------------

    def run(
        self,
        scripts: Iterable[tuple[str, Script]],
        max_restarts: int | None = None,
    ) -> ScheduleResult:
        """Run a batch of scripts to completion, restarting CC-aborted ones.

        ``scripts`` is an iterable of ``(name, script)`` pairs.  With no
        seed, the scheduler round-robins at yield points; with a seed it
        picks the next runnable script pseudo-randomly (reproducibly).
        ``max_restarts`` overrides the scheduler-wide budget for this run.

        A :class:`ConcurrencyAbort` rolls the script back and restarts it
        with a fresh timestamp (basic-TO discipline); a script that spends
        its restart budget, or raises an abort no restart can cure (a
        constraint violation mid-step or at commit), is rolled back and
        recorded in :attr:`ScheduleResult.failed` while every other session
        runs on.
        """
        if self._live:
            raise TransactionError(
                "cannot run a batch while live scripts are in flight"
            )
        previous_budget = self.max_restarts
        if max_restarts is not None:
            self.max_restarts = max_restarts
        base_committed = len(self._committed)
        base_cancelled = len(self._cancelled)
        base_failed = set(self._failed)
        base_restarts = self._restarts
        base_steps = self._steps
        try:
            for name, script in scripts:
                self.admit(name, script)
            self.drain()
        finally:
            self.max_restarts = previous_budget
        return ScheduleResult(
            committed=self._committed[base_committed:],
            restarts=self._restarts - base_restarts,
            steps=self._steps - base_steps,
            failed={
                name: reason
                for name, reason in self._failed.items()
                if name not in base_failed
            },
            cancelled=self._cancelled[base_cancelled:],
        )

    # -- retirement paths ---------------------------------------------------

    def _notify(self, state: "_ScriptState", outcome: str, detail: str | None):
        callback = state.on_done
        if callback is not None:
            state.on_done = None
            callback(state, outcome, detail)

    def _retire_committed(self, state: "_ScriptState") -> None:
        state.done = True
        self._live -= 1
        self._committed.append(state.name)
        self._compact()
        self._notify(state, OUTCOME_COMMITTED, None)

    def _restart(self, state: "_ScriptState") -> None:
        state.session.rollback()
        state.restart_count += 1
        if state.restart_count > self.max_restarts:
            # The budget is spent: retire the script into ``failed``
            # instead of letting the abort escape the whole schedule and
            # abandon every other live session mid-script (the same
            # discipline as any other final abort).
            self._fail(
                state,
                TransactionAborted(
                    f"script {state.name!r} exceeded "
                    f"{self.max_restarts} restarts"
                ),
            )
            return
        self.tsm.note_restart()
        self._restarts += 1
        state.begin()

    def _fail(self, state: "_ScriptState", exc: Exception) -> None:
        """Retire a script whose abort no restart can cure.

        The session's remaining delta (if any) is rolled back; the other
        sessions keep running -- one user's constraint violation must not
        abandon everyone else's adopted deltas mid-script.
        """
        state.session.rollback()
        # The failure is terminal and answered: its marks stand as
        # conservative ghosts (matching untracked batch behaviour), but the
        # reader bookkeeping is sealed so a record's in-doubt multiset
        # stays bounded over a long-lived server.
        state.session.confirm_marks()
        state.done = True
        self._live -= 1
        self._failed[state.name] = str(exc)
        self._compact()
        self._notify(state, OUTCOME_FAILED, str(exc))

    def _compact(self) -> None:
        """Drop retired states so a long-lived server stays bounded.

        Preserves round-robin fairness: the cursor is remapped to the same
        position within the surviving rotation.  Only kicks in once the
        retired states outnumber the live ones and the list is big enough
        to matter, so batch runs (and their fairness tests) never see it.
        """
        total = len(self._states)
        if total < 64 or 2 * self._live > total:
            return
        cursor = self._cursor % total
        keep: list[_ScriptState] = []
        new_cursor = 0
        for index, state in enumerate(self._states):
            if not state.done:
                if index < cursor:
                    new_cursor += 1
                keep.append(state)
        self._states = keep
        self._cursor = new_cursor


#: ``(state, outcome, detail)`` -- outcome is one of the OUTCOME_* strings;
#: detail carries the failure reason (or cancel reason), None on commit.
DoneCallback = Callable[["_ScriptState", str, "str | None"], None]


class _ScriptState:
    """Bookkeeping for one script being interleaved."""

    __slots__ = ("name", "script", "session", "gen", "done", "restart_count", "on_done")

    def __init__(self, name: str, script: Script, session: Session) -> None:
        self.name = name
        self.script = script
        self.session = session
        self.gen: Generator[None, None, None] | None = None
        self.done = False
        self.restart_count = 0
        self.on_done: DoneCallback | None = None

    def begin(self) -> None:
        self.session.start()
        self.gen = self.script(self.session)
        self.done = False
