"""Multi-user operation: sessions and the interleaving scheduler.

Cactis is "a multi-user DBMS ... using a timestamping concurrency control
technique".  This module reproduces multi-user behaviour deterministically:

* a :class:`Session` is one user's transaction stream.  Its primitives
  mirror the database's, but every operation first passes the
  timestamp-ordering checks of
  :class:`~repro.txn.timestamps.TimestampManager`.
* a *script* is a generator function taking a session and yielding between
  operations; the yield points are where the scheduler may switch users.
* :class:`MultiUserScheduler` interleaves scripts (round-robin or seeded
  random).  When an operation violates timestamp ordering the session's
  transaction is rolled back and the whole script restarts with a fresh,
  younger timestamp -- the classic basic-TO restart discipline.

Each session accumulates its own undo delta; the scheduler *adopts* the
delta into the database's transaction manager around every step, so
single-stream code paths (logging, rollback, commit audit) are reused
unchanged.  Writes are visible immediately; see
:mod:`repro.txn.timestamps` for the documented simplifications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from repro.errors import (
    ConcurrencyAbort,
    ConstraintViolation,
    TransactionAborted,
    TransactionError,
)
from repro.txn.log import Delta
from repro.txn.timestamps import TimestampManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database

Script = Callable[["Session"], Generator[None, None, None]]


class Session:
    """One user's view of the database under timestamp CC."""

    def __init__(self, db: "Database", tsm: TimestampManager, name: str = "") -> None:
        self.db = db
        self.tsm = tsm
        self.name = name
        self.ts = 0
        self._delta: Delta | None = None
        #: values returned by get_attr, for post-run assertions in tests.
        self.observations: list[Any] = []

    # -- lifecycle (driven by the scheduler) -------------------------------

    def start(self) -> None:
        self.ts = self.tsm.new_timestamp()
        self._delta = Delta(txn_id=self.ts, label=self.name)

    def _adopted(self):
        """Context manager routing the db's logging to this session's delta."""
        return _Adoption(self)

    def commit(self) -> Delta:
        if self._delta is None:
            raise TransactionError(f"session {self.name!r} has no open transaction")
        delta, self._delta = self._delta, None
        self.db.txn.adopt(delta)
        committed = self.db.txn.commit()
        self.tsm.note_commit()
        return committed

    def rollback(self) -> None:
        if self._delta is None:
            return
        delta, self._delta = self._delta, None
        self.db.txn.adopt(delta)
        self.db.txn.abort()

    # -- primitives ------------------------------------------------------------

    def create(self, class_name: str, **intrinsics: Any) -> int:
        # Check-then-act, like every other write primitive: validate the
        # timestamp against the id the create is about to allocate *before*
        # touching the database.  A doomed create must not allocate an
        # instance id or mutate anything and then lean on rollback.
        #
        # The write mark recorded here is provisional: if the create itself
        # fails validation (unknown class, bad atom type) the id was never
        # consumed, and leaving our timestamp on it would spuriously abort
        # whichever older transaction later allocates that id.
        target = self.db.next_instance_id
        previous = self.tsm.check_write(self.ts, target)
        try:
            with self._adopted():
                return self.db.create(class_name, **intrinsics)
        except ConcurrencyAbort:
            raise
        except Exception:
            self.tsm.retract_write(self.ts, target, previous)
            raise

    def delete(self, iid: int) -> None:
        self.tsm.check_write(self.ts, iid)
        with self._adopted():
            self.db.delete(iid)

    def connect(self, iid_a: int, port_a: str, iid_b: int, port_b: str) -> None:
        self.tsm.check_write(self.ts, iid_a)
        self.tsm.check_write(self.ts, iid_b)
        with self._adopted():
            self.db.connect(iid_a, port_a, iid_b, port_b)

    def disconnect(self, iid_a: int, port_a: str, iid_b: int, port_b: str) -> None:
        self.tsm.check_write(self.ts, iid_a)
        self.tsm.check_write(self.ts, iid_b)
        with self._adopted():
            self.db.disconnect(iid_a, port_a, iid_b, port_b)

    def set_attr(self, iid: int, attr: str, value: Any) -> None:
        self.tsm.check_write(self.ts, iid)
        with self._adopted():
            self.db.set_attr(iid, attr, value)

    def get_attr(self, iid: int, attr: str) -> Any:
        self.tsm.check_read(self.ts, iid)
        with self._adopted():
            value = self.db.get_attr(iid, attr)
        self.observations.append(value)
        return value


class _Adoption:
    """Temporarily installs a session's delta as the db's active transaction."""

    def __init__(self, session: Session) -> None:
        self.session = session

    def __enter__(self) -> None:
        if self.session._delta is None:
            raise TransactionError(
                f"session {self.session.name!r} used outside the scheduler"
            )
        self.session.db.txn.adopt(self.session._delta)

    def __exit__(self, exc_type, exc, tb) -> None:
        txn = self.session.db.txn
        if txn.in_transaction:
            txn.release()
        else:
            # The primitive aborted the whole adopted transaction (e.g. a
            # constraint violation): its work is already rolled back.  Give
            # the session a fresh, empty delta so a script that handles the
            # exception continues on a clean slate.
            self.session._delta = Delta(
                txn_id=self.session.ts, label=self.session.name
            )


@dataclass
class ScheduleResult:
    """Outcome of one :meth:`MultiUserScheduler.run`."""

    committed: list[str]
    restarts: int
    steps: int
    #: scripts that failed for non-CC reasons (constraint violations and
    #: other aborts that restarting cannot cure), name -> reason.
    failed: dict[str, str] = dataclass_field(default_factory=dict)


class MultiUserScheduler:
    """Deterministically interleaves session scripts under timestamp CC."""

    def __init__(
        self,
        db: "Database",
        tsm: TimestampManager | None = None,
        seed: int | None = None,
    ) -> None:
        self.db = db
        self.tsm = tsm if tsm is not None else TimestampManager()
        self._rng = random.Random(seed) if seed is not None else None
        # Take over the database's concurrency-control metrics section and
        # route TO-rejection events through its hub.
        obs = getattr(db, "obs", None)
        self._hub = obs.hub if obs is not None else None
        if obs is not None:
            self.tsm.hub = obs.hub
            obs.register("cc", self._cc_metrics)

    def _cc_metrics(self) -> dict:
        stats = self.tsm.stats
        return {
            "reads_checked": stats.reads_checked,
            "writes_checked": stats.writes_checked,
            "read_rejections": stats.read_rejections,
            "write_rejections": stats.write_rejections,
            "transactions_started": stats.transactions_started,
            "transactions_committed": stats.transactions_committed,
            "transactions_restarted": stats.transactions_restarted,
        }

    def run(
        self,
        scripts: Iterable[tuple[str, Script]],
        max_restarts: int = 100,
    ) -> ScheduleResult:
        """Run all scripts to completion, restarting CC-aborted ones.

        ``scripts`` is an iterable of ``(name, script)`` pairs.  With no
        seed, the scheduler round-robins at yield points; with a seed it
        picks the next runnable script pseudo-randomly (reproducibly).

        A :class:`ConcurrencyAbort` rolls the script back and restarts it
        with a fresh timestamp (basic-TO discipline); exceeding
        ``max_restarts`` raises :class:`TransactionAborted`.  Any other
        abort escaping a script -- a constraint violation mid-step or at
        commit -- is *final*: restarting would deterministically trip it
        again, so the offending script is rolled back and recorded in
        :attr:`ScheduleResult.failed` while every other session runs on.
        """
        states: list[_ScriptState] = [
            _ScriptState(name, script, Session(self.db, self.tsm, name))
            for name, script in scripts
        ]
        for state in states:
            state.begin()
        committed: list[str] = []
        failed: dict[str, str] = {}
        restarts = 0
        steps = 0
        cursor = 0
        hub = self._hub
        while any(not s.done for s in states):
            if self._rng is not None:
                runnable = [s for s in states if not s.done]
                state = runnable[self._rng.randrange(len(runnable))]
            else:
                # Round-robin over a *fixed* rotation of all scripts,
                # skipping finished ones.  Indexing into the shrinking
                # ``runnable`` list instead would skew the rotation the
                # moment a script finished, letting one neighbour step
                # twice in a row while another starved.
                while states[cursor % len(states)].done:
                    cursor += 1
                state = states[cursor % len(states)]
                cursor += 1
            steps += 1
            if hub is not None:
                hub.session = state.name
            try:
                next(state.gen)
            except StopIteration:
                try:
                    state.session.commit()
                    state.done = True
                    committed.append(state.name)
                except ConcurrencyAbort:
                    restarts += self._restart(state, max_restarts)
                except TransactionAborted as exc:
                    self._fail(state, failed, exc)
            except ConcurrencyAbort:
                restarts += self._restart(state, max_restarts)
            except (ConstraintViolation, TransactionAborted) as exc:
                self._fail(state, failed, exc)
            finally:
                if hub is not None:
                    hub.session = None
        return ScheduleResult(
            committed=committed, restarts=restarts, steps=steps, failed=failed
        )

    def _restart(self, state: "_ScriptState", max_restarts: int) -> int:
        state.session.rollback()
        self.tsm.note_restart()
        state.restart_count += 1
        if state.restart_count > max_restarts:
            raise TransactionAborted(
                f"script {state.name!r} exceeded {max_restarts} restarts"
            )
        state.begin()
        return 1

    def _fail(
        self, state: "_ScriptState", failed: dict[str, str], exc: Exception
    ) -> None:
        """Retire a script whose abort no restart can cure.

        The session's remaining delta (if any) is rolled back; the other
        sessions keep running -- one user's constraint violation must not
        abandon everyone else's adopted deltas mid-script.
        """
        state.session.rollback()
        state.done = True
        failed[state.name] = str(exc)


class _ScriptState:
    """Bookkeeping for one script being interleaved."""

    def __init__(self, name: str, script: Script, session: Session) -> None:
        self.name = name
        self.script = script
        self.session = session
        self.gen: Generator[None, None, None] | None = None
        self.done = False
        self.restart_count = 0

    def begin(self) -> None:
        self.session.start()
        self.gen = self.script(self.session)
        self.done = False
