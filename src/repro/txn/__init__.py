"""Transactions, undo, rollback, and timestamp concurrency control.

* :mod:`repro.txn.log` -- inverse records and first-class deltas (the
  paper's space-efficient rollback: log only the *initial* changes).
* :mod:`repro.txn.transaction` -- transaction lifecycle, autocommit,
  commit-time constraint audit, and the ``Undo`` meta-action.
* :mod:`repro.txn.timestamps` -- basic timestamp-ordering CC.
* :mod:`repro.txn.manager` -- multi-user sessions and the deterministic
  interleaving scheduler with abort/restart.
"""

from repro.txn.log import (
    ConnectRecord,
    CreateRecord,
    Delta,
    DeleteRecord,
    DisconnectRecord,
    LogRecord,
    SetAttrRecord,
)
from repro.txn.manager import MultiUserScheduler, ScheduleResult, Session
from repro.txn.timestamps import CCStats, TimestampManager
from repro.txn.transaction import TransactionManager

__all__ = [
    "CCStats",
    "ConnectRecord",
    "CreateRecord",
    "Delta",
    "DeleteRecord",
    "DisconnectRecord",
    "LogRecord",
    "MultiUserScheduler",
    "ScheduleResult",
    "Session",
    "SetAttrRecord",
    "TimestampManager",
    "TransactionManager",
]
