"""Timestamp-ordering concurrency control.

The paper states that Cactis "uses a timestamping concurrency control
technique" without further detail; this module implements the classic basic
timestamp-ordering (TO) protocol at instance granularity:

* every transaction receives a unique, monotonically increasing timestamp
  at start (and a fresh one on each restart);
* a read of instance ``x`` by transaction ``T`` is rejected when
  ``ts(T) < write_ts(x)`` -- the value ``T`` should have seen was already
  overwritten by a younger transaction;
* a write of ``x`` by ``T`` is rejected when ``ts(T) < read_ts(x)`` or
  ``ts(T) < write_ts(x)`` -- a younger transaction has already observed or
  written a later state.

A rejection raises :class:`repro.errors.ConcurrencyAbort`; the caller rolls
back and restarts with a new timestamp (see
:class:`repro.txn.manager.MultiUserScheduler`).  CC applies to *primitive*
operations (the unit the paper's transactions are built from); derived
recomputation inherits the protection of the primitives that triggered it.
Writes become visible immediately and aborts undo them through the ordinary
rollback machinery -- a simplification over commit-time visibility that
preserves the protocol's ordering behaviour, which is what E7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConcurrencyAbort
from repro.obs.events import TORejection


@dataclass
class _Marks:
    read_ts: int = 0
    write_ts: int = 0
    #: highest read mark that can never be retracted: reads by untracked
    #: (batch) transactions, and tracked reads whose transaction reached a
    #: terminal outcome (commit/fail) -- see :meth:`TimestampManager.confirm_read`.
    stable_read_ts: int = 0
    #: in-doubt tracked readers, ts -> journalled read count; ``None``
    #: until the first tracked read so the batch hot path stays dict-free.
    readers: dict[int, int] | None = None


@dataclass
class CCStats:
    """Outcome counters for concurrency-control experiments."""

    reads_checked: int = 0
    writes_checked: int = 0
    read_rejections: int = 0
    write_rejections: int = 0
    transactions_started: int = 0
    transactions_committed: int = 0
    transactions_restarted: int = 0

    @property
    def abort_rate(self) -> float:
        total = self.read_rejections + self.write_rejections
        attempts = self.reads_checked + self.writes_checked
        return total / attempts if attempts else 0.0


class TimestampManager:
    """Issues transaction timestamps and enforces basic TO."""

    def __init__(self) -> None:
        self._next_ts = 1
        self._marks: dict[int, _Marks] = {}
        self.stats = CCStats()
        #: optional :class:`repro.obs.EventHub` for TO-rejection events;
        #: attached by :class:`repro.txn.manager.MultiUserScheduler`.
        self.hub = None

    def _note_rejection(
        self, kind: str, iid: int, ts: int, conflict_ts: int, conflict_kind: str
    ) -> None:
        hub = self.hub
        if hub is not None and hub.active:
            hub.emit(
                TORejection(
                    kind=kind,
                    iid=iid,
                    ts=ts,
                    conflict_ts=conflict_ts,
                    conflict_kind=conflict_kind,
                )
            )

    def new_timestamp(self) -> int:
        ts = self._next_ts
        self._next_ts += 1
        self.stats.transactions_started += 1
        return ts

    def _marks_for(self, iid: int) -> _Marks:
        marks = self._marks.get(iid)
        if marks is None:
            marks = _Marks()
            self._marks[iid] = marks
        return marks

    def check_read(self, ts: int, iid: int, track: bool = False) -> int:
        """Validate and record a read of ``iid`` by a transaction at ``ts``.

        Returns the read mark the record carried *before* this check.  With
        ``track=True`` (a server-driven session that may be torn down
        mid-transaction) the reader is also entered into the record's
        in-doubt reader multiset, which is what lets :meth:`retract_read`
        restore the correct mark even when intermediate readers arrived
        after this one; the caller must balance every tracked check with
        exactly one :meth:`retract_read` or :meth:`confirm_read`.
        """
        marks = self._marks_for(iid)
        self.stats.reads_checked += 1
        if ts < marks.write_ts:
            self.stats.read_rejections += 1
            self._note_rejection("read", iid, ts, marks.write_ts, "write")
            raise ConcurrencyAbort(
                f"read of instance {iid} by ts {ts} rejected: "
                f"written at ts {marks.write_ts}"
            )
        previous = marks.read_ts
        if track:
            readers = marks.readers
            if readers is None:
                readers = marks.readers = {}
            readers[ts] = readers.get(ts, 0) + 1
        elif ts > marks.stable_read_ts:
            marks.stable_read_ts = ts
        if ts > marks.read_ts:
            marks.read_ts = ts
        return previous

    def check_write(self, ts: int, iid: int) -> int:
        """Validate and record a write of ``iid`` by a transaction at ``ts``.

        Returns the write mark the record carried *before* this check, so
        a caller performing check-then-act can hand it back to
        :meth:`retract_write` when the act itself fails to happen.
        """
        marks = self._marks_for(iid)
        self.stats.writes_checked += 1
        if ts < marks.read_ts:
            self.stats.write_rejections += 1
            self._note_rejection("write", iid, ts, marks.read_ts, "read")
            raise ConcurrencyAbort(
                f"write of instance {iid} by ts {ts} rejected: "
                f"read at ts {marks.read_ts}"
            )
        if ts < marks.write_ts:
            self.stats.write_rejections += 1
            self._note_rejection("write", iid, ts, marks.write_ts, "write")
            raise ConcurrencyAbort(
                f"write of instance {iid} by ts {ts} rejected: "
                f"written at ts {marks.write_ts}"
            )
        previous = marks.write_ts
        marks.write_ts = ts
        return previous

    def retract_write(self, ts: int, iid: int, previous_write_ts: int) -> None:
        """Undo a :meth:`check_write` whose write never happened.

        Restores the prior write mark, but only while the record still
        carries ``ts`` -- if a younger transaction has written since, its
        mark is the truth and must stand.
        """
        marks = self._marks.get(iid)
        if marks is not None and marks.write_ts == ts:
            marks.write_ts = previous_write_ts

    @staticmethod
    def _drop_reader(marks: _Marks, ts: int) -> bool:
        """Remove one in-doubt read at ``ts``; True if an entry existed."""
        readers = marks.readers
        if readers is None:
            return False
        count = readers.get(ts)
        if count is None:
            return False
        if count > 1:
            readers[ts] = count - 1
        else:
            del readers[ts]
        return True

    def retract_read(self, ts: int, iid: int, previous_read_ts: int) -> None:
        """Undo a tracked :meth:`check_read` whose transaction was torn down.

        Used when a server-driven session is cancelled (client disconnect)
        so its ghost read marks do not keep aborting older writers forever.
        The restored mark comes from the record's reader bookkeeping -- the
        stable floor plus the remaining in-doubt readers -- not from the
        journalled ``previous_read_ts``: the journalled value cannot see
        readers with intermediate timestamps that arrived *after* this
        check, and restoring it would let a write slide under a live
        intermediate read (a non-serializable schedule).  The journalled
        value only serves the legacy fallback for records that never saw a
        tracked read.
        """
        marks = self._marks.get(iid)
        if marks is None:
            return
        if marks.readers is None:
            # No tracked-read bookkeeping on this record: conservative
            # legacy behaviour, restore only while the mark is still ours.
            if marks.read_ts == ts:
                marks.read_ts = previous_read_ts
            return
        self._drop_reader(marks, ts)
        remaining = marks.readers
        marks.read_ts = max(
            marks.stable_read_ts, max(remaining) if remaining else 0
        )

    def confirm_read(self, ts: int, iid: int) -> None:
        """Seal a tracked :meth:`check_read` whose transaction terminated.

        The read can never be retracted after this (the transaction
        committed, or failed terminally -- where the conservative ghost
        mark is kept, matching untracked batch behaviour): it moves from
        the in-doubt reader multiset to the stable floor, so the record's
        bookkeeping stays bounded and later retractions by other
        transactions never lower the mark below it.
        """
        marks = self._marks.get(iid)
        if marks is None:
            return
        self._drop_reader(marks, ts)
        if ts > marks.stable_read_ts:
            marks.stable_read_ts = ts

    def note_commit(self) -> None:
        self.stats.transactions_committed += 1

    def note_restart(self) -> None:
        self.stats.transactions_restarted += 1

    def forget_instance(self, iid: int) -> None:
        """Drop marks for a deleted instance."""
        self._marks.pop(iid, None)
