"""Timestamp-ordering concurrency control.

The paper states that Cactis "uses a timestamping concurrency control
technique" without further detail; this module implements the classic basic
timestamp-ordering (TO) protocol at instance granularity:

* every transaction receives a unique, monotonically increasing timestamp
  at start (and a fresh one on each restart);
* a read of instance ``x`` by transaction ``T`` is rejected when
  ``ts(T) < write_ts(x)`` -- the value ``T`` should have seen was already
  overwritten by a younger transaction;
* a write of ``x`` by ``T`` is rejected when ``ts(T) < read_ts(x)`` or
  ``ts(T) < write_ts(x)`` -- a younger transaction has already observed or
  written a later state.

A rejection raises :class:`repro.errors.ConcurrencyAbort`; the caller rolls
back and restarts with a new timestamp (see
:class:`repro.txn.manager.MultiUserScheduler`).  CC applies to *primitive*
operations (the unit the paper's transactions are built from); derived
recomputation inherits the protection of the primitives that triggered it.
Writes become visible immediately and aborts undo them through the ordinary
rollback machinery -- a simplification over commit-time visibility that
preserves the protocol's ordering behaviour, which is what E7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConcurrencyAbort
from repro.obs.events import TORejection


@dataclass
class _Marks:
    read_ts: int = 0
    write_ts: int = 0


@dataclass
class CCStats:
    """Outcome counters for concurrency-control experiments."""

    reads_checked: int = 0
    writes_checked: int = 0
    read_rejections: int = 0
    write_rejections: int = 0
    transactions_started: int = 0
    transactions_committed: int = 0
    transactions_restarted: int = 0

    @property
    def abort_rate(self) -> float:
        total = self.read_rejections + self.write_rejections
        attempts = self.reads_checked + self.writes_checked
        return total / attempts if attempts else 0.0


class TimestampManager:
    """Issues transaction timestamps and enforces basic TO."""

    def __init__(self) -> None:
        self._next_ts = 1
        self._marks: dict[int, _Marks] = {}
        self.stats = CCStats()
        #: optional :class:`repro.obs.EventHub` for TO-rejection events;
        #: attached by :class:`repro.txn.manager.MultiUserScheduler`.
        self.hub = None

    def _note_rejection(
        self, kind: str, iid: int, ts: int, conflict_ts: int, conflict_kind: str
    ) -> None:
        hub = self.hub
        if hub is not None and hub.active:
            hub.emit(
                TORejection(
                    kind=kind,
                    iid=iid,
                    ts=ts,
                    conflict_ts=conflict_ts,
                    conflict_kind=conflict_kind,
                )
            )

    def new_timestamp(self) -> int:
        ts = self._next_ts
        self._next_ts += 1
        self.stats.transactions_started += 1
        return ts

    def _marks_for(self, iid: int) -> _Marks:
        marks = self._marks.get(iid)
        if marks is None:
            marks = _Marks()
            self._marks[iid] = marks
        return marks

    def check_read(self, ts: int, iid: int) -> int:
        """Validate and record a read of ``iid`` by a transaction at ``ts``.

        Returns the read mark the record carried *before* this check, so a
        caller tracking its marks (a server-driven session that may be torn
        down mid-transaction) can hand it back to :meth:`retract_read`.
        """
        marks = self._marks_for(iid)
        self.stats.reads_checked += 1
        if ts < marks.write_ts:
            self.stats.read_rejections += 1
            self._note_rejection("read", iid, ts, marks.write_ts, "write")
            raise ConcurrencyAbort(
                f"read of instance {iid} by ts {ts} rejected: "
                f"written at ts {marks.write_ts}"
            )
        previous = marks.read_ts
        if ts > marks.read_ts:
            marks.read_ts = ts
        return previous

    def check_write(self, ts: int, iid: int) -> int:
        """Validate and record a write of ``iid`` by a transaction at ``ts``.

        Returns the write mark the record carried *before* this check, so
        a caller performing check-then-act can hand it back to
        :meth:`retract_write` when the act itself fails to happen.
        """
        marks = self._marks_for(iid)
        self.stats.writes_checked += 1
        if ts < marks.read_ts:
            self.stats.write_rejections += 1
            self._note_rejection("write", iid, ts, marks.read_ts, "read")
            raise ConcurrencyAbort(
                f"write of instance {iid} by ts {ts} rejected: "
                f"read at ts {marks.read_ts}"
            )
        if ts < marks.write_ts:
            self.stats.write_rejections += 1
            self._note_rejection("write", iid, ts, marks.write_ts, "write")
            raise ConcurrencyAbort(
                f"write of instance {iid} by ts {ts} rejected: "
                f"written at ts {marks.write_ts}"
            )
        previous = marks.write_ts
        marks.write_ts = ts
        return previous

    def retract_write(self, ts: int, iid: int, previous_write_ts: int) -> None:
        """Undo a :meth:`check_write` whose write never happened.

        Restores the prior write mark, but only while the record still
        carries ``ts`` -- if a younger transaction has written since, its
        mark is the truth and must stand.
        """
        marks = self._marks.get(iid)
        if marks is not None and marks.write_ts == ts:
            marks.write_ts = previous_write_ts

    def retract_read(self, ts: int, iid: int, previous_read_ts: int) -> None:
        """Undo a :meth:`check_read` whose transaction was torn down.

        Symmetric to :meth:`retract_write`: restores the prior read mark
        while the record still carries ``ts``.  Used when a server-driven
        session is cancelled (client disconnect) so its ghost read marks do
        not keep aborting older writers forever.
        """
        marks = self._marks.get(iid)
        if marks is not None and marks.read_ts == ts:
            marks.read_ts = previous_read_ts

    def note_commit(self) -> None:
        self.stats.transactions_committed += 1

    def note_restart(self) -> None:
        self.stats.transactions_restarted += 1

    def forget_instance(self, iid: int) -> None:
        """Drop marks for a deleted instance."""
        self._marks.pop(iid, None)
