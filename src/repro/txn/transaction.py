"""Transactions and the Undo meta-action.

The Cactis primitives "are augmented by the meta-action *Undo*.  Undo has
the effect of forcing the rollback of one transaction.  This meta-action
allows the user to freely explore the database, knowing that no actions need
have permanent effect."

:class:`TransactionManager` provides:

* explicit transactions (``begin`` / ``commit`` / ``abort``);
* autocommit -- a primitive issued outside a transaction becomes its own
  one-record transaction, so Undo still applies to it;
* commit-time constraint auditing: any constraint slot left out of date by
  the transaction is evaluated before commit, and a violation rolls the
  whole transaction back ("the constraint must be satisfied or the
  transaction invoking the evaluation will fail and be undone");
* the committed-transaction history on which ``undo`` (and the version
  facility) operate.

Rollback applies the undo log's inverse records in reverse order through
the database's raw-application layer, which performs marking but skips both
logging and constraint enforcement -- restoring a previously consistent
state cannot itself be vetoed.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable

from repro.errors import (
    ConstraintViolation,
    CycleError,
    RuleEvaluationError,
    TransactionAborted,
    TransactionError,
)
from repro.obs.events import TxnAbort, TxnCommit
from repro.txn.log import Delta, LogRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database


class TransactionManager:
    """Single-stream transaction control for one database."""

    def __init__(self, db: "Database", history_limit: int | None = None) -> None:
        self.db = db
        self.history_limit = history_limit
        self._active: Delta | None = None
        self._next_txn_id = 1
        #: committed transactions, oldest first.
        self.history: list[Delta] = []
        #: observers notified with each committed delta (version streams,
        #: the persistence manager's WAL append).
        self._commit_listeners: list[Callable[[Delta], None]] = []
        #: observers notified with each delta the Undo meta-action rolls
        #: back (the persistence manager's compensation record).
        self._undo_listeners: list[Callable[[Delta], None]] = []
        self._rolling_back = False
        self._autocommit_pending = False
        #: lifetime outcome counters (the ``txn`` metrics section).
        self.commits = 0
        self.aborts = 0
        self.undos = 0
        #: observability root of the owning database (guarded: tests build
        #: managers over bare stand-in hosts).
        self._obs = getattr(db, "obs", None)
        #: default for ``begin(batch=None)``: batch propagation across every
        #: explicit transaction (set via ``Database(auto_batch_transactions=)``).
        self.auto_batch = False
        #: True while the active explicit transaction holds an open engine
        #: batch (closed at commit, abandoned at abort).
        self._engine_batched = False

    # -- state -------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._active is not None

    @property
    def rolling_back(self) -> bool:
        return self._rolling_back

    def add_commit_listener(self, listener: Callable[[Delta], None]) -> None:
        self._commit_listeners.append(listener)

    def add_undo_listener(self, listener: Callable[[Delta], None]) -> None:
        self._undo_listeners.append(listener)

    def _set_txn_context(self, txn_id: int | None) -> None:
        """Stamp the event hub so emissions attribute to this transaction."""
        obs = self._obs
        if obs is not None:
            obs.hub.txn = txn_id

    # -- logging (called by the database primitives) -------------------------

    def log(self, record: LogRecord) -> None:
        """Record one primitive action into the active (or implicit) txn."""
        if self._rolling_back:
            return  # rollback replay must not log
        if self._active is None:
            # Autocommit: wrap the single primitive in its own transaction.
            # The primitive has already executed by the time it logs, so the
            # implicit transaction is opened retroactively and committed by
            # the database right after the primitive returns.
            self._active = Delta(txn_id=self._next_txn_id)
            self._next_txn_id += 1
            self._active.records.append(record)
            self._autocommit_pending = True
            self._set_txn_context(self._active.txn_id)
            return
        self._active.records.append(record)

    def finish_autocommit(self) -> None:
        """Commit the implicit transaction opened by an unattended primitive."""
        if self._autocommit_pending:
            self._autocommit_pending = False
            self.commit()

    # -- stream adoption (multi-user sessions) --------------------------------

    def adopt(self, delta: Delta) -> None:
        """Install a session's delta as the active transaction.

        Used by :class:`repro.txn.manager.MultiUserScheduler` to route the
        logging of one interleaved step into the owning session's delta.
        """
        if self._active is not None:
            raise TransactionError("cannot adopt: a transaction is already active")
        self._active = delta
        self._set_txn_context(delta.txn_id)

    def release(self) -> Delta:
        """Detach the active (adopted) delta without committing or aborting."""
        if self._active is None:
            raise TransactionError("no active transaction to release")
        delta = self._active
        self._active = None
        self._set_txn_context(None)
        return delta

    # -- lifecycle ------------------------------------------------------------

    def begin(self, label: str = "", batch: bool | None = None) -> int:
        """Open an explicit transaction; nesting is not supported.

        With ``batch=True`` (or ``batch=None`` while :attr:`auto_batch` is
        set), the transaction opens an engine batch: primitive updates
        defer their propagation into one coalesced wave that runs at
        commit, just before the constraint audit.  Reads inside the
        transaction flush the deferred marking, so values stay exact.
        """
        if self._active is not None:
            raise TransactionError("a transaction is already active")
        self._active = Delta(txn_id=self._next_txn_id, label=label)
        self._next_txn_id += 1
        self._set_txn_context(self._active.txn_id)
        if batch is None:
            batch = self.auto_batch
        if batch:
            begin_batch = getattr(self.db.engine, "begin_batch", None)
            if begin_batch is not None:
                begin_batch()
                self._engine_batched = True
        return self._active.txn_id

    def _close_engine_batch(self) -> None:
        """Run the deferred wave of a batched transaction (commit path)."""
        if not self._engine_batched:
            return
        self._engine_batched = False
        try:
            self.db.engine.end_batch()
        except ConstraintViolation as violation:
            self.db.engine.reset_wave()
            self.abort()
            raise TransactionAborted(str(violation)) from violation
        except (CycleError, RuleEvaluationError):
            self.db.engine.reset_wave()
            self.abort()
            raise

    def commit(self) -> Delta:
        """Audit constraints, then commit the active transaction."""
        if self._active is None:
            raise TransactionError("no active transaction to commit")
        started = perf_counter()
        self._close_engine_batch()
        try:
            self.db.audit_constraints()
        except ConstraintViolation as violation:
            self.abort()
            raise TransactionAborted(str(violation)) from violation
        delta = self._active
        self._active = None
        self._autocommit_pending = False
        self.history.append(delta)
        if self.history_limit is not None and len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        for listener in self._commit_listeners:
            listener(delta)
        self.commits += 1
        obs = self._obs
        if obs is not None:
            seconds = perf_counter() - started
            obs.timers["commit"].record(seconds)
            hub = obs.hub
            if hub.active:
                hub.emit(
                    TxnCommit(
                        txn_id=delta.txn_id,
                        label=delta.label,
                        records=len(delta.records),
                        seconds=seconds,
                    )
                )
            hub.txn = None
        return delta

    def abort(self) -> None:
        """Roll back and discard the active transaction."""
        if self._active is None:
            raise TransactionError("no active transaction to abort")
        if self._engine_batched:
            # Flush deferred marks (conservative, never wrong), skip the
            # wave tail: the state they describe is about to be rolled back.
            self._engine_batched = False
            abandon = getattr(self.db.engine, "abandon_batch", None)
            if abandon is not None:
                abandon()
        delta = self._active
        self._active = None
        self._autocommit_pending = False
        self._apply_inverse(delta)
        self.aborts += 1
        obs = self._obs
        if obs is not None:
            hub = obs.hub
            if hub.active:
                hub.emit(
                    TxnAbort(
                        txn_id=delta.txn_id,
                        label=delta.label,
                        records=len(delta.records),
                    )
                )
            hub.txn = None

    def undo(self) -> Delta:
        """The meta-action: roll back the most recently committed transaction.

        Repeated calls walk further back through history.  Returns the delta
        that was undone (the version facility may retain it for redo).
        """
        if self._active is not None:
            raise TransactionError(
                "cannot Undo while a transaction is active; commit or abort first"
            )
        if not self.history:
            raise TransactionError("no committed transaction to undo")
        delta = self.history.pop()
        self._apply_inverse(delta)
        self.undos += 1
        for listener in self._undo_listeners:
            listener(delta)
        return delta

    # -- replay ------------------------------------------------------------

    def _apply_inverse(self, delta: Delta) -> None:
        self._rolling_back = True
        try:
            for record in reversed(delta.records):
                self.db.apply_inverse(record)
        finally:
            self._rolling_back = False

    def apply_forward(self, delta: Delta) -> None:
        """Re-apply a delta (redo); used by the version facility."""
        self._rolling_back = True  # suppress logging during replay
        try:
            for record in delta.records:
                self.db.apply_forward(record)
        finally:
            self._rolling_back = False

    def apply_inverse_delta(self, delta: Delta) -> None:
        """Apply a delta's inverse without touching history (version facility)."""
        self._apply_inverse(delta)
