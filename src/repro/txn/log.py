"""Undo-log records and deltas.

Section 2.2: "all of the actions that take place as a consequence of
changing an attribute value can be undone simply by restoring the old value
of the attribute.  Updates resulting from structural changes can be undone
by restoring the old structure."  Section 3 adds the key economy: "the
information needed to remember a delta is proportional in size to the
initial changes made to the database rather than the total change in the
database which may result because of derived data."

Accordingly the log records *only* primitive actions -- intrinsic-attribute
writes and structural changes.  Derived recomputation logs nothing: rolling
back the primitives re-marks the affected region and derived values are
simply recomputed on demand.  A :class:`Delta` (one transaction's records)
is a first-class object: the version facility chains deltas, attaches them
to change descriptions, and replays them in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class SetAttrRecord:
    """An intrinsic attribute was assigned.

    ``had_value`` distinguishes "was the atom default at creation" from an
    explicit earlier value only in so far as both are stored values; it is
    False only for synthetic cases where the attribute had never been
    materialised.
    """

    iid: int
    attr: str
    old_value: Any
    new_value: Any


@dataclass(frozen=True)
class CreateRecord:
    """An instance was created (undo = delete it again).

    ``intrinsics`` captures the initial intrinsic values so the version
    facility can replay the creation forward exactly.
    """

    iid: int
    class_name: str
    intrinsics: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DeleteRecord:
    """An instance was deleted; ``snapshot`` restores it on undo.

    The snapshot captures intrinsic values, cached derived values, active
    subtypes, and the connection lists.  Connections are *also* covered by
    the DisconnectRecords logged when delete breaks them, so undo replays
    those to restore both ends consistently; the snapshot's connection map
    is used only for validation.
    """

    snapshot: dict[str, Any]

    @property
    def iid(self) -> int:
        return self.snapshot["iid"]


@dataclass(frozen=True)
class ConnectRecord:
    """A relationship was established (undo = break it)."""

    iid_a: int
    port_a: str
    iid_b: int
    port_b: str


@dataclass(frozen=True)
class DisconnectRecord:
    """A relationship was broken; indices restore connection order on undo."""

    iid_a: int
    port_a: str
    iid_b: int
    port_b: str
    index_a: int
    index_b: int


LogRecord = (
    SetAttrRecord | CreateRecord | DeleteRecord | ConnectRecord | DisconnectRecord
)


@dataclass
class Delta:
    """The ordered primitive-change records of one committed transaction.

    ``records`` are in execution order; undo applies inverses in reverse
    order, redo re-applies them forward.  ``txn_id`` and ``label`` identify
    the delta in transaction history and in version streams.
    """

    txn_id: int
    records: list[LogRecord] = field(default_factory=list)
    label: str = ""

    def __len__(self) -> int:
        return len(self.records)

    def size_estimate(self) -> int:
        """Approximate stored size in bytes (for the E6 economy measurement)."""
        size = 16
        for record in self.records:
            size += 24
            if isinstance(record, SetAttrRecord):
                size += _value_size(record.old_value) + _value_size(record.new_value)
            elif isinstance(record, DeleteRecord):
                size += 32 + 16 * len(record.snapshot.get("attrs", ()))
        return size

    def touched_instances(self) -> set[int]:
        """Every instance id a record mentions (delta locality diagnostics)."""
        touched: set[int] = set()
        for record in self.records:
            if isinstance(record, (SetAttrRecord, CreateRecord)):
                touched.add(record.iid)
            elif isinstance(record, DeleteRecord):
                touched.add(record.iid)
            else:
                touched.add(record.iid_a)
                touched.add(record.iid_b)
        return touched


def _value_size(value: Any) -> int:
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 8 * len(value)
    return 8
