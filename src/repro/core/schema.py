"""Schema: object classes, relationship types, and their validation.

A Cactis database schema consists of *types* (object classes), *subtypes*
(predicate-defined refinements), *relationships*, *constraints*, and
*predicates*.  This module provides those constructs:

* :class:`RelationshipType` -- a named, typed connection kind, e.g. Figure
  1's ``milestone_dep`` or Figure 2's ``make_result``.  Each relationship
  type declares the named values that flow across it and in which direction
  (plug-to-socket or socket-to-plug), with an atom type and a default used
  when a port is left dangling (the paper's "dummy instances to tie off any
  dangling relationships").
* :class:`PortDef` -- a class's named end of a relationship type: a *plug*
  or a *socket*, single-valued or ``Multi``.  Figure 1 declares
  ``depends_on: milestone_dep Multi Socket`` and
  ``consists_of: milestone_dep Multi Plug``.
* :class:`AttributeDef` -- an intrinsic or derived attribute with an atomic
  type.
* :class:`ObjectClass` -- a named type: attributes, ports, rules,
  constraints, an optional supertype, and (for predicate subtypes) the
  membership predicate.
* :class:`Schema` -- the collection, with structural validation performed
  when the schema is *frozen*.  Cactis is extensible -- "the DBMS allows the
  user to extend the type structure" -- so a schema may be unfrozen,
  extended with new classes, and refrozen while a database is live.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.atoms import AtomRegistry
from repro.core.rules import (
    AttributeTarget,
    Constraint,
    Local,
    Received,
    Rule,
    SubtypePredicate,
    TransmitTarget,
)
from repro.errors import SchemaError, UnknownTypeError


class End(enum.Enum):
    """Which end of a relationship type a port occupies."""

    PLUG = "plug"
    SOCKET = "socket"

    @property
    def opposite(self) -> "End":
        return End.SOCKET if self is End.PLUG else End.PLUG


class AttrKind(enum.Enum):
    """Intrinsic attributes are directly assignable; derived ones carry rules."""

    INTRINSIC = "intrinsic"
    DERIVED = "derived"


@dataclass(frozen=True)
class FlowDecl:
    """A named value flowing across a relationship type in one direction."""

    value: str
    atom: str
    sent_by: End
    default: Any = None


class RelationshipType:
    """A typed connection between two ports of opposite ends.

    ``flows`` declares every named value transported by the relationship.
    A value is *sent by* one end (where a transmit rule computes it) and
    *received by* the opposite end (where consuming rules declare a
    :class:`~repro.core.rules.Received` input).
    """

    def __init__(self, name: str, flows: Iterable[FlowDecl] = ()) -> None:
        if not name:
            raise SchemaError("relationship types must be named")
        self.name = name
        self.flows: dict[str, FlowDecl] = {}
        for flow in flows:
            self.add_flow(flow)

    def add_flow(self, flow: FlowDecl) -> None:
        if flow.value in self.flows:
            raise SchemaError(
                f"relationship type {self.name!r} already declares value "
                f"{flow.value!r}"
            )
        self.flows[flow.value] = flow

    def flow(self, value: str) -> FlowDecl:
        try:
            return self.flows[value]
        except KeyError:
            raise SchemaError(
                f"relationship type {self.name!r} declares no value {value!r}"
            ) from None

    def values_sent_by(self, end: End) -> list[FlowDecl]:
        """All values an instance on ``end`` is responsible for transmitting."""
        return [f for f in self.flows.values() if f.sent_by is end]

    def values_received_by(self, end: End) -> list[FlowDecl]:
        """All values an instance on ``end`` may consume."""
        return [f for f in self.flows.values() if f.sent_by is not end]

    def __repr__(self) -> str:
        return f"RelationshipType({self.name!r}, values={sorted(self.flows)})"


@dataclass(frozen=True)
class PortDef:
    """A class's named relationship port."""

    name: str
    rel_type: str
    end: End
    multi: bool = False


@dataclass(frozen=True)
class AttributeDef:
    """An attribute declaration.

    ``default`` applies to intrinsic attributes only; ``None`` means "use
    the atom type's default".  Derived attributes take their value from
    their rule and may not be assigned.
    """

    name: str
    atom: str
    kind: AttrKind = AttrKind.INTRINSIC
    default: Any = None

    @property
    def intrinsic(self) -> bool:
        return self.kind is AttrKind.INTRINSIC

    @property
    def derived(self) -> bool:
        return self.kind is AttrKind.DERIVED


class ObjectClass:
    """An object class: the unit of typing in the Cactis model.

    A class may name a ``supertype``; it then inherits the supertype's
    attributes, ports, rules, and constraints, and may add its own.  If a
    ``predicate`` is supplied, the class is a *predicate subtype*: instances
    are never created with this type directly; instead, instances of the
    supertype whose predicate evaluates true dynamically acquire the
    subtype's extra attributes and rules (Car_Buff in the paper's example;
    ``very_late`` milestones in Section 4).
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[AttributeDef] = (),
        ports: Iterable[PortDef] = (),
        rules: Iterable[Rule] = (),
        constraints: Iterable[Constraint] = (),
        supertype: str | None = None,
        predicate: SubtypePredicate | None = None,
    ) -> None:
        if not name:
            raise SchemaError("object classes must be named")
        if predicate is not None and supertype is None:
            raise SchemaError(
                f"predicate subtype {name!r} must name a supertype"
            )
        if predicate is not None and predicate.subtype_name != name:
            raise SchemaError(
                f"predicate subtype_name {predicate.subtype_name!r} must match "
                f"class name {name!r}"
            )
        self.name = name
        self.supertype = supertype
        self.predicate = predicate
        self.attributes: dict[str, AttributeDef] = {}
        self.ports: dict[str, PortDef] = {}
        self.rules: list[Rule] = []
        self.constraints: list[Constraint] = []
        for attr in attributes:
            self.add_attribute(attr)
        for port in ports:
            self.add_port(port)
        for rule in rules:
            self.add_rule(rule)
        for constraint in constraints:
            self.add_constraint(constraint)

    # -- construction -----------------------------------------------------

    def add_attribute(self, attr: AttributeDef) -> None:
        if attr.name in self.attributes:
            raise SchemaError(
                f"class {self.name!r} already declares attribute {attr.name!r}"
            )
        self.attributes[attr.name] = attr

    def add_port(self, port: PortDef) -> None:
        if port.name in self.ports:
            raise SchemaError(
                f"class {self.name!r} already declares port {port.name!r}"
            )
        if port.name in self.attributes:
            raise SchemaError(
                f"class {self.name!r}: port {port.name!r} collides with an "
                f"attribute name"
            )
        self.ports[port.name] = port

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def add_constraint(self, constraint: Constraint) -> None:
        if any(c.name == constraint.name for c in self.constraints):
            raise SchemaError(
                f"class {self.name!r} already declares constraint "
                f"{constraint.name!r}"
            )
        self.constraints.append(constraint)

    def __repr__(self) -> str:
        return f"ObjectClass({self.name!r})"


@dataclass
class ResolvedClass:
    """The flattened, inheritance-resolved view of an object class.

    Built when a schema freezes.  ``attributes``/``ports`` include inherited
    declarations; ``rules`` includes inherited rules plus the synthetic rules
    backing constraints and predicate-subtype membership; ``rule_for`` maps a
    slot name (attribute name, or ``port>value``) to its rule.

    ``predicate_subtypes`` lists the predicate subtypes hanging directly off
    this class; their extra structure attaches to instances dynamically and
    is therefore *not* flattened in.
    """

    name: str
    #: the class and its supertypes, most specific first.  (Named
    #: ``lineage`` rather than ``mro`` because ``getattr(cls, "mro")``
    #: resolves to ``type.mro`` and confuses ``dataclasses`` defaults.)
    lineage: tuple[str, ...]
    attributes: dict[str, AttributeDef]
    ports: dict[str, PortDef]
    rules: list[Rule]
    constraints: list[Constraint]
    rule_for: dict[str, Rule]
    predicate_subtypes: list[str] = field(default_factory=list)

    def attribute(self, name: str) -> AttributeDef:
        try:
            return self.attributes[name]
        except KeyError:
            from repro.errors import UnknownAttributeError

            raise UnknownAttributeError(
                f"class {self.name!r} has no attribute {name!r}"
            ) from None

    def port(self, name: str) -> PortDef:
        try:
            return self.ports[name]
        except KeyError:
            from repro.errors import UnknownRelationshipError

            raise UnknownRelationshipError(
                f"class {self.name!r} has no relationship port {name!r}"
            ) from None


class Schema:
    """A mutable-until-frozen collection of relationship types and classes.

    Typical lifecycle::

        schema = Schema()
        schema.add_relationship_type(...)
        schema.add_class(...)
        schema.freeze()            # validates; database opens against it
        ...
        schema.unfreeze()          # dynamic extension (new tools!)
        schema.add_class(...)
        schema.freeze()
    """

    def __init__(self, atoms: AtomRegistry | None = None) -> None:
        self.atoms = atoms if atoms is not None else AtomRegistry()
        self.relationship_types: dict[str, RelationshipType] = {}
        self.classes: dict[str, ObjectClass] = {}
        self._resolved: dict[str, ResolvedClass] = {}
        self._frozen = False
        #: bumped on every freeze; lets caches keyed on schema state expire
        #: when the type structure is dynamically extended.
        self.version = 0
        #: stats from the freeze-time rule-body compilation pass
        #: (see :mod:`repro.compile`); surfaced as ``compile.*`` metrics.
        self.compile_stats: dict[str, Any] = {}
        #: :class:`~repro.analysis.facts.AnalysisFacts` from the last
        #: freeze, or None (analysis disabled or failed).
        self.analysis_facts: Any = None
        #: class name -> attribute names with a maintained secondary index
        #: (see :mod:`repro.index`); declared via :meth:`add_index` and
        #: validated when the schema freezes.
        self.indexes: dict[str, tuple[str, ...]] = {}

    # -- construction -----------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _require_mutable(self) -> None:
        if self._frozen:
            raise SchemaError(
                "schema is frozen; call unfreeze() before extending it"
            )

    def add_relationship_type(self, rel_type: RelationshipType) -> RelationshipType:
        self._require_mutable()
        if rel_type.name in self.relationship_types:
            raise SchemaError(
                f"relationship type {rel_type.name!r} already defined"
            )
        self.relationship_types[rel_type.name] = rel_type
        return rel_type

    def add_class(self, cls: ObjectClass) -> ObjectClass:
        self._require_mutable()
        if cls.name in self.classes:
            raise SchemaError(f"object class {cls.name!r} already defined")
        self.classes[cls.name] = cls
        return cls

    def extend_class(self, name: str) -> ObjectClass:
        """Return an existing class for in-place extension (schema must be mutable)."""
        self._require_mutable()
        return self._raw_class(name)

    def add_index(self, class_name: str, attr: str) -> None:
        """Declare a maintained secondary index over ``class_name.attr``.

        The attribute may be intrinsic or derived; the index covers the
        class and all of its static subclasses.  Validated (class exists,
        is not a predicate subtype, declares the attribute) at freeze,
        alongside the rest of the schema.
        """
        self._require_mutable()
        attrs = self.indexes.get(class_name, ())
        if attr in attrs:
            raise SchemaError(
                f"class {class_name!r} already declares an index on {attr!r}"
            )
        self.indexes[class_name] = tuple(sorted((*attrs, attr)))

    def drop_index(self, class_name: str, attr: str) -> None:
        """Remove a previously declared index (schema must be mutable)."""
        self._require_mutable()
        attrs = tuple(a for a in self.indexes.get(class_name, ()) if a != attr)
        if attrs:
            self.indexes[class_name] = attrs
        else:
            self.indexes.pop(class_name, None)

    def unfreeze(self) -> None:
        """Re-open a frozen schema for extension."""
        self._frozen = False

    # -- lookup ------------------------------------------------------------

    def _raw_class(self, name: str) -> ObjectClass:
        try:
            return self.classes[name]
        except KeyError:
            raise UnknownTypeError(f"unknown object class {name!r}") from None

    def relationship_type(self, name: str) -> RelationshipType:
        try:
            return self.relationship_types[name]
        except KeyError:
            raise SchemaError(f"unknown relationship type {name!r}") from None

    def resolved(self, name: str) -> ResolvedClass:
        """Inheritance-flattened view of a class (schema must be frozen)."""
        if not self._frozen:
            raise SchemaError("schema must be frozen before classes are resolved")
        try:
            return self._resolved[name]
        except KeyError:
            raise UnknownTypeError(f"unknown object class {name!r}") from None

    def class_names(self) -> list[str]:
        return sorted(self.classes)

    def is_subclass(self, name: str, of: str) -> bool:
        """True when ``name`` equals ``of`` or inherits from it (transitively)."""
        current: str | None = name
        while current is not None:
            if current == of:
                return True
            current = self._raw_class(current).supertype
        return False

    # -- freezing / validation ---------------------------------------------

    def freeze(self) -> "Schema":
        """Validate the whole schema and build resolved class views.

        Validation does not stop at the first problem: every violation
        across every class is collected, and a single :class:`SchemaError`
        reports them all (one per line), so a schema author can fix a batch
        of mistakes in one round trip.
        """
        self._resolved = {}
        problems: list[str] = []
        for name in self.classes:
            try:
                self._resolved[name] = self._resolve_class(name)
            except SchemaError as exc:
                # Resolution failures (inheritance cycles, unknown
                # supertypes) make the flattened view meaningless; record
                # the problem and skip per-class validation.
                problems.append(str(exc))
        for resolved in self._resolved.values():
            problems.extend(self._validate_resolved(resolved))
        problems.extend(self._validate_indexes())
        if problems:
            self._resolved = {}
            if len(problems) == 1:
                raise SchemaError(problems[0])
            raise SchemaError(
                f"{len(problems)} schema violations:\n  "
                + "\n  ".join(problems)
            )
        self._frozen = True
        self.version += 1
        # Static value analysis feeds the compile passes below: constraint
        # folding, cost-ordered slot plans, and cold-start clustering
        # weights.  Imported lazily -- repro.analysis walks schema objects,
        # which import this module.  A failure here must never block a
        # freeze (the facts are advisory), so it degrades to None.
        from repro.analysis.facts import analysis_enabled, compute_facts

        self.analysis_facts = None
        if analysis_enabled():
            try:
                self.analysis_facts = compute_facts(self)
            except Exception:  # pragma: no cover - analyzer bug escape hatch
                self.analysis_facts = None
        # Compile once, serve many: fold constant predicates, then swap
        # DSL-interpreted rule bodies for specialized closures (no-ops
        # under REPRO_NO_FOLD=1 / REPRO_NO_COMPILE=1 respectively).
        from repro.compile import compile_frozen_schema, fold_frozen_schema

        fold_stats = fold_frozen_schema(self)
        self.compile_stats = compile_frozen_schema(self)
        self.compile_stats.update(fold_stats)
        return self

    def _mro(self, name: str) -> tuple[str, ...]:
        chain: list[str] = []
        seen: set[str] = set()
        current: str | None = name
        while current is not None:
            if current in seen:
                raise SchemaError(
                    f"inheritance cycle involving class {current!r}"
                )
            seen.add(current)
            chain.append(current)
            current = self._raw_class(current).supertype
        return tuple(chain)

    def _resolve_class(self, name: str) -> ResolvedClass:
        mro = self._mro(name)
        attributes: dict[str, AttributeDef] = {}
        ports: dict[str, PortDef] = {}
        rules: list[Rule] = []
        constraints: list[Constraint] = []
        # Walk from the root of the hierarchy down so subclasses may override.
        for cls_name in reversed(mro):
            cls = self._raw_class(cls_name)
            attributes.update(cls.attributes)
            ports.update(cls.ports)
            rules.extend(cls.rules)
            rules.extend(c.as_rule() for c in cls.constraints)
            constraints.extend(cls.constraints)
            if cls.predicate is not None and cls_name != name:
                # Predicate of an ancestor applies to us statically only if
                # we *are* that subtype; membership predicates are evaluated
                # per supertype instance, handled below via predicate_subtypes.
                pass
        resolved = ResolvedClass(
            name=name,
            lineage=mro,
            attributes=attributes,
            ports=ports,
            rules=rules,
            constraints=constraints,
            rule_for={},
            predicate_subtypes=[
                sub.name
                for sub in self.classes.values()
                # Membership predicates apply to instances of the supertype
                # *and* of its static subclasses (an Employee can be a
                # Car_Buff when Car_Buff refines Person).
                if sub.predicate is not None and sub.supertype in mro
            ],
        )
        # Membership rules of direct predicate subtypes are evaluated on
        # instances of this class, so they join the rule set here.
        for sub_name in resolved.predicate_subtypes:
            sub = self._raw_class(sub_name)
            assert sub.predicate is not None
            resolved.rules.append(sub.predicate.as_rule())
        resolved.rule_for = self._index_rules(resolved)
        return resolved

    def _index_rules(self, resolved: ResolvedClass) -> dict[str, Rule]:
        index: dict[str, Rule] = {}
        for rule in resolved.rules:
            key = _target_slot_name(rule.target)
            # Later rules override earlier ones: a subclass redefining a rule
            # replaces the inherited computation.
            index[key] = rule
        return index

    def _validate_indexes(self) -> list[str]:
        """All violations among the declared secondary indexes."""
        problems: list[str] = []
        for class_name, attrs in sorted(self.indexes.items()):
            cls = self.classes.get(class_name)
            if cls is None:
                problems.append(
                    f"index on unknown object class {class_name!r}"
                )
                continue
            if cls.predicate is not None:
                problems.append(
                    f"class {class_name!r} is a predicate subtype; its extent "
                    f"is maintained automatically -- declare attribute "
                    f"indexes on the supertype instead"
                )
                continue
            resolved = self._resolved.get(class_name)
            if resolved is None:  # resolution already failed; reported above
                continue
            for attr in attrs:
                if attr not in resolved.attributes:
                    problems.append(
                        f"index on {class_name!r}.{attr!r}: class has no "
                        f"attribute {attr!r}"
                    )
        return problems

    def _validate_resolved(self, resolved: ResolvedClass) -> list[str]:
        """All violations in one resolved class, as message strings."""
        problems: list[str] = []
        for attr in resolved.attributes.values():
            try:
                self.atoms.get(attr.atom)
            except SchemaError as exc:
                problems.append(
                    f"class {resolved.name!r}: attribute {attr.name!r}: {exc}"
                )
        for port in resolved.ports.values():
            try:
                self.relationship_type(port.rel_type)
            except SchemaError as exc:
                problems.append(
                    f"class {resolved.name!r}: port {port.name!r}: {exc}"
                )
        derived = {
            a.name for a in resolved.attributes.values() if a.derived
        }
        ruled = {
            r.target.attr
            for r in resolved.rules
            if isinstance(r.target, AttributeTarget)
        }
        missing = derived - ruled
        if missing:
            problems.append(
                f"class {resolved.name!r}: derived attributes without rules: "
                f"{sorted(missing)}"
            )
        for rule in resolved.rules:
            problems.extend(self._validate_rule(resolved, rule))
        return problems

    def _validate_rule(self, resolved: ResolvedClass, rule: Rule) -> list[str]:
        problems: list[str] = []
        target = rule.target
        if isinstance(target, AttributeTarget):
            if target.attr in resolved.attributes:
                attr = resolved.attributes[target.attr]
                if attr.intrinsic:
                    problems.append(
                        f"class {resolved.name!r}: rule {rule.name!r} targets "
                        f"intrinsic attribute {target.attr!r}"
                    )
            elif not _is_synthetic_attr(target.attr):
                problems.append(
                    f"class {resolved.name!r}: rule {rule.name!r} targets "
                    f"unknown attribute {target.attr!r}"
                )
        else:
            port = resolved.ports.get(target.port)
            if port is None:
                problems.append(
                    f"class {resolved.name!r}: rule {rule.name!r} transmits on "
                    f"unknown port {target.port!r}"
                )
            else:
                try:
                    rel = self.relationship_type(port.rel_type)
                    flow = rel.flow(target.value)
                except SchemaError as exc:
                    problems.append(
                        f"class {resolved.name!r}: rule {rule.name!r}: {exc}"
                    )
                else:
                    if flow.sent_by is not port.end:
                        problems.append(
                            f"class {resolved.name!r}: rule {rule.name!r} "
                            f"transmits {target.value!r} on port "
                            f"{target.port!r}, but that value flows "
                            f"{flow.sent_by.value}-to-"
                            f"{flow.sent_by.opposite.value}"
                        )
        for key, inp in rule.inputs.items():
            if isinstance(inp, Local):
                if inp.attr not in resolved.attributes and not _is_synthetic_attr(
                    inp.attr
                ):
                    problems.append(
                        f"class {resolved.name!r}: rule {rule.name!r} input "
                        f"{key!r} references unknown attribute {inp.attr!r}"
                    )
            elif isinstance(inp, Received):
                port = resolved.ports.get(inp.port)
                if port is None:
                    problems.append(
                        f"class {resolved.name!r}: rule {rule.name!r} input "
                        f"{key!r} receives on unknown port {inp.port!r}"
                    )
                    continue
                try:
                    rel = self.relationship_type(port.rel_type)
                    flow = rel.flow(inp.value)
                except SchemaError as exc:
                    problems.append(
                        f"class {resolved.name!r}: rule {rule.name!r} input "
                        f"{key!r}: {exc}"
                    )
                    continue
                if flow.sent_by is port.end:
                    problems.append(
                        f"class {resolved.name!r}: rule {rule.name!r} input "
                        f"{key!r} receives {inp.value!r} on port "
                        f"{inp.port!r}, but this end *sends* that value"
                    )
        return problems


def _target_slot_name(target: AttributeTarget | TransmitTarget) -> str:
    from repro.core.slots import transmit_name

    if isinstance(target, AttributeTarget):
        return target.attr
    return transmit_name(target.port, target.value)


def _is_synthetic_attr(name: str) -> bool:
    """Constraint and subtype-membership attributes are declared implicitly."""
    return name.startswith("__constraint__") or name.startswith("__subtype__")
