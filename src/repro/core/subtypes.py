"""Dynamic predicate-subtype membership.

"It is possible to use values such as the very_late attribute ... to change
subtype membership of an object dynamically.  Thus we can add new attributes
and hence new functionality to particular objects dynamically based on their
properties -- again without disturbing existing tools."

Membership of a predicate subtype is itself a derived boolean attribute (see
:func:`repro.core.rules.subtype_attr_name`), evaluated by the ordinary
incremental machinery.  When it flips, :class:`SubtypeManager` attaches or
detaches the subtype's *delta structure* -- the attributes, rules, and
constraints the subtype adds beyond what the instance already has:

* on **attach**: missing intrinsic attributes are initialised to their
  defaults, dependency edges for the subtype's delta rules are installed,
  new constraint slots join the unchecked set, and any slot whose rule the
  subtype *overrides* is invalidated so it recomputes under the new rule;
* on **detach**: the delta edges are removed and overridden slots are
  invalidated back to the supertype's rules.  Stored values of the
  subtype's intrinsic attributes persist in the record, so a re-attach
  finds them again (membership controls behaviour and visibility, not raw
  storage).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.rules import Rule, constraint_attr_name
from repro.core.schema import ResolvedClass
from repro.core.slots import Slot, attr_slot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database


class SubtypeManager:
    """Applies predicate-subtype membership flips to instance structure."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        # (schema version, base class, subtype) -> delta rule list.
        self._delta_cache: dict[tuple[int, str, str], list[Rule]] = {}

    # -- structure deltas -----------------------------------------------------

    def delta_rules(self, base_class: str, subtype: str) -> list[Rule]:
        """Rules the subtype adds or overrides relative to the base class."""
        key = (self.db.schema.version, base_class, subtype)
        cached = self._delta_cache.get(key)
        if cached is not None:
            return cached
        base = self.db.schema.resolved(base_class)
        sub = self.db.schema.resolved(subtype)
        delta = [
            rule
            for slot_name, rule in sub.rule_for.items()
            if base.rule_for.get(slot_name) is not rule
        ]
        self._delta_cache[key] = delta
        return delta

    def overridden_slot_names(self, base_class: str, subtype: str) -> list[str]:
        """Slot names whose rule differs between base and subtype views."""
        base = self.db.schema.resolved(base_class)
        return [
            _slot_name_of(rule)
            for rule in self.delta_rules(base_class, subtype)
            if _slot_name_of(rule) in base.rule_for
        ]

    # -- flips ------------------------------------------------------------

    def attach(self, iid: int, subtype: str) -> None:
        """Make ``iid`` a member of ``subtype`` and install its structure."""
        instance = self.db.instance(iid)
        if subtype in instance.active_subtypes:
            return
        instance.active_subtypes.add(subtype)
        self.db.indexes.note_attach(iid, subtype)
        self.db.invalidate_rulemap(iid)
        base_class = instance.class_name
        sub_view: ResolvedClass = self.db.schema.resolved(subtype)
        # Initialise intrinsic attributes the subtype adds (values persist
        # across detach/attach, so only missing ones are seeded).
        for attr in sub_view.attributes.values():
            if attr.intrinsic and attr.name not in instance.attrs:
                instance.attrs[attr.name] = self.db.default_for_attr(attr)
        # Install dependency edges for the delta rules.  Where the subtype
        # overrides a base rule, the base edges come out first so the slot's
        # dependencies reflect exactly one rule.
        base = self.db.schema.resolved(base_class)
        invalidate: list[Slot] = []
        for rule in self.delta_rules(base_class, subtype):
            slot_name = _slot_name_of(rule)
            base_rule = base.rule_for.get(slot_name)
            if base_rule is not None:
                self.db.remove_rule_edges(iid, base_rule)
            self.db.add_rule_edges(iid, rule)
            invalidate.append((iid, slot_name))
        # New constraints must be checked before the transaction commits.
        base_constraints = {c.name for c in self.db.schema.resolved(base_class).constraints}
        for constraint in sub_view.constraints:
            if constraint.name not in base_constraints:
                self.db.note_unchecked_constraint(
                    attr_slot(iid, constraint_attr_name(constraint.name))
                )
        self.db.storage.resize(iid, instance.record_size())
        if invalidate:
            self.db.engine.invalidate_derived(invalidate)

    def detach(self, iid: int, subtype: str) -> None:
        """Remove ``iid`` from ``subtype`` and tear down its delta structure."""
        instance = self.db.instance(iid)
        if subtype not in instance.active_subtypes:
            return
        instance.active_subtypes.discard(subtype)
        self.db.indexes.note_detach(iid, subtype)
        self.db.invalidate_rulemap(iid)
        base_class = instance.class_name
        overridden = self.overridden_slot_names(base_class, subtype)
        for rule in self.delta_rules(base_class, subtype):
            self.db.remove_rule_edges(iid, rule)
            slot = (iid, _slot_name_of(rule))
            self.db.engine.forget_slot(slot)
            self.db.forget_unchecked_constraint(slot)
        # Slots the subtype had overridden fall back to the base rules and
        # must recompute; re-install the base edges first.
        invalidate: list[Slot] = []
        base = self.db.schema.resolved(base_class)
        for slot_name in overridden:
            base_rule = base.rule_for[slot_name]
            self.db.add_rule_edges(iid, base_rule)
            invalidate.append((iid, slot_name))
        if invalidate:
            self.db.engine.invalidate_derived(invalidate)


def _slot_name_of(rule: Rule) -> str:
    from repro.core.rules import AttributeTarget
    from repro.core.slots import transmit_name

    if isinstance(rule.target, AttributeTarget):
        return rule.target.attr
    return transmit_name(rule.target.port, rule.target.value)
