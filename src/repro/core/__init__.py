"""The Cactis data model: schema, instances, rules, and the database facade.

* :mod:`repro.core.atoms` -- atomic value types (+ ``later_of`` /
  ``later_than`` / ``TIME0`` from the paper's figures).
* :mod:`repro.core.schema` -- object classes, relationship types, ports,
  predicate subtypes, schema freezing and validation.
* :mod:`repro.core.rules` -- attribute evaluation rules with declared
  dependencies; constraints; subtype predicates.
* :mod:`repro.core.slots` -- the (instance, name) dependency unit.
* :mod:`repro.core.instance` -- runtime instance records.
* :mod:`repro.core.subtypes` -- dynamic predicate-subtype membership.
* :mod:`repro.core.database` -- the facade exposing the Cactis primitives.
"""

from repro.core.atoms import (
    TIME0,
    TIME_FUTURE,
    AtomRegistry,
    AtomType,
    later_of,
    later_than,
)
from repro.core.database import Database, InstanceView
from repro.core.instance import Connection, Instance
from repro.core.predicates import (
    Predicate,
    attr_between,
    attr_eq,
    attr_ge,
    attr_gt,
    attr_in,
    attr_le,
    attr_lt,
    attr_ne,
    attr_satisfies,
    count_connections,
    more_connections_than,
    received_sum,
)
from repro.core.rules import (
    AttributeTarget,
    Constraint,
    Local,
    Received,
    Rule,
    SelfRef,
    SubtypePredicate,
    TransmitTarget,
)
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)

__all__ = [
    "AtomRegistry",
    "AtomType",
    "AttrKind",
    "AttributeDef",
    "AttributeTarget",
    "Connection",
    "Constraint",
    "Database",
    "End",
    "FlowDecl",
    "Instance",
    "InstanceView",
    "Local",
    "ObjectClass",
    "PortDef",
    "Predicate",
    "Received",
    "attr_between",
    "attr_eq",
    "attr_ge",
    "attr_gt",
    "attr_in",
    "attr_le",
    "attr_lt",
    "attr_ne",
    "attr_satisfies",
    "count_connections",
    "more_connections_than",
    "received_sum",
    "RelationshipType",
    "Rule",
    "Schema",
    "SelfRef",
    "SubtypePredicate",
    "TIME0",
    "TIME_FUTURE",
    "TransmitTarget",
    "later_of",
    "later_than",
]
