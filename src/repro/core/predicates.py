"""Predicate combinators for queries and subtype definitions.

Cactis defines subtypes "based on the values of relationships and
attributes, via predicates" -- e.g. "all Persons who own more than three
cars".  This module offers a small combinator language for building such
predicates without writing rule plumbing by hand:

* comparison builders over attributes -- :func:`attr_gt`, :func:`attr_eq`,
  :func:`attr_between` ... -- and over received relationship values --
  :func:`count_connections`, :func:`received_sum`;
* boolean composition with ``&``, ``|``, ``~``;
* conversion to a :class:`~repro.core.rules.SubtypePredicate`
  (:meth:`Predicate.as_subtype`) or a
  :class:`~repro.core.rules.Constraint` (:meth:`Predicate.as_constraint`),
  with the input declarations merged automatically;
* direct use in queries through :meth:`repro.core.database.Database.where`
  via :meth:`Predicate.on_view`.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.rules import Constraint, Input, Local, Received, SubtypePredicate
from repro.errors import SchemaError


class Predicate:
    """A boolean function of declared inputs, composable with ``& | ~``."""

    def __init__(
        self,
        inputs: Mapping[str, Input],
        fn: Callable[..., bool],
        description: str = "",
    ) -> None:
        self.inputs = dict(inputs)
        self.fn = fn
        self.description = description or "predicate"

    # -- composition ------------------------------------------------------------

    def _merged_inputs(self, other: "Predicate") -> dict[str, Input]:
        merged = dict(self.inputs)
        for key, decl in other.inputs.items():
            if key in merged and merged[key] != decl:
                raise SchemaError(
                    f"conflicting input declarations for parameter {key!r}"
                )
            merged[key] = decl
        return merged

    def __and__(self, other: "Predicate") -> "Predicate":
        merged = self._merged_inputs(other)
        left, right = self, other

        def fn(**kwargs: Any) -> bool:
            return left._call(kwargs) and right._call(kwargs)

        return Predicate(merged, fn, f"({left.description} and {right.description})")

    def __or__(self, other: "Predicate") -> "Predicate":
        merged = self._merged_inputs(other)
        left, right = self, other

        def fn(**kwargs: Any) -> bool:
            return left._call(kwargs) or right._call(kwargs)

        return Predicate(merged, fn, f"({left.description} or {right.description})")

    def __invert__(self) -> "Predicate":
        inner = self

        def fn(**kwargs: Any) -> bool:
            return not inner._call(kwargs)

        return Predicate(dict(inner.inputs), fn, f"(not {inner.description})")

    def _call(self, kwargs: Mapping[str, Any]) -> bool:
        own = {key: kwargs[key] for key in self.inputs}
        return bool(self.fn(**own))

    # -- conversions ------------------------------------------------------------

    def as_subtype(self, subtype_name: str) -> SubtypePredicate:
        """Package as a predicate-subtype membership test."""
        return SubtypePredicate(
            subtype_name=subtype_name, inputs=self.inputs, predicate=self._as_fn()
        )

    def as_constraint(self, name: str, recovery=None) -> Constraint:
        """Package as a class constraint (true = holds)."""
        return Constraint(
            name=name, inputs=self.inputs, predicate=self._as_fn(), recovery=recovery
        )

    def _as_fn(self) -> Callable[..., bool]:
        fn = self.fn

        def predicate(**kwargs: Any) -> bool:
            return bool(fn(**kwargs))

        predicate.__name__ = self.description.replace(" ", "_")[:40] or "predicate"
        return predicate

    def on_view(self, view) -> bool:
        """Evaluate directly against an :class:`InstanceView` (queries).

        Local inputs read attributes; Received inputs resolve the current
        connections' transmitted values through the database.
        """
        kwargs: dict[str, Any] = {}
        db = view._db
        for key, decl in self.inputs.items():
            if isinstance(decl, Local):
                kwargs[key] = view.get(decl.attr)
            elif isinstance(decl, Received):
                instance = db.instance(view.iid)
                port_def = db._port_def(instance, decl.port)
                values = [
                    db.get_transmitted(conn.peer, conn.peer_port, decl.value)
                    for conn in instance.connections_on(decl.port)
                ]
                if port_def.multi:
                    kwargs[key] = values
                else:
                    kwargs[key] = (
                        values[0]
                        if values
                        else db._flow_default(view.iid, decl.port, decl.value)
                    )
            else:  # SelfRef
                kwargs[key] = view.iid
        return self._call(kwargs)

    def __repr__(self) -> str:
        return f"Predicate({self.description})"


# ---------------------------------------------------------------------------
# attribute comparisons
# ---------------------------------------------------------------------------


def _attr_cmp(attr: str, op: Callable[[Any, Any], bool], other: Any, sym: str) -> Predicate:
    key = f"p_{attr}"
    return Predicate(
        {key: Local(attr)},
        lambda **kw: op(kw[key], other),
        f"{attr} {sym} {other!r}",
    )


def attr_eq(attr: str, value: Any) -> Predicate:
    """``attr == value``."""
    return _attr_cmp(attr, lambda a, b: a == b, value, "==")


def attr_ne(attr: str, value: Any) -> Predicate:
    """``attr != value``."""
    return _attr_cmp(attr, lambda a, b: a != b, value, "!=")


def attr_gt(attr: str, value: Any) -> Predicate:
    """``attr > value``."""
    return _attr_cmp(attr, lambda a, b: a > b, value, ">")


def attr_ge(attr: str, value: Any) -> Predicate:
    """``attr >= value``."""
    return _attr_cmp(attr, lambda a, b: a >= b, value, ">=")


def attr_lt(attr: str, value: Any) -> Predicate:
    """``attr < value``."""
    return _attr_cmp(attr, lambda a, b: a < b, value, "<")


def attr_le(attr: str, value: Any) -> Predicate:
    """``attr <= value``."""
    return _attr_cmp(attr, lambda a, b: a <= b, value, "<=")


def attr_between(attr: str, low: Any, high: Any) -> Predicate:
    """``low <= attr <= high`` (inclusive on both ends)."""
    key = f"p_{attr}"
    return Predicate(
        {key: Local(attr)},
        lambda **kw: low <= kw[key] <= high,
        f"{low!r} <= {attr} <= {high!r}",
    )


def attr_in(attr: str, values) -> Predicate:
    """``attr`` is one of ``values``."""
    allowed = set(values)
    key = f"p_{attr}"
    return Predicate(
        {key: Local(attr)},
        lambda **kw: kw[key] in allowed,
        f"{attr} in {sorted(map(repr, allowed))}",
    )


def attr_satisfies(attr: str, fn: Callable[[Any], bool], description: str = "") -> Predicate:
    """``fn(attr)`` holds, for arbitrary single-attribute tests."""
    key = f"p_{attr}"
    return Predicate(
        {key: Local(attr)},
        lambda **kw: fn(kw[key]),
        description or f"{attr} satisfies {getattr(fn, '__name__', 'fn')}",
    )


# ---------------------------------------------------------------------------
# relationship-based predicates
# ---------------------------------------------------------------------------


def count_connections(port: str, counted_value: str, op: Callable[[int, int], bool], n: int, sym: str = "?") -> Predicate:
    """Compare the number of connections on a multi port against ``n``.

    ``counted_value`` names any value received on the port (the count is
    the length of the received list).  The paper's Car_Buff — "all Persons
    who own more than three cars" — is
    ``count_connections("cars", "unit", operator.gt, 3, ">")``.
    """
    key = f"p_{port}_{counted_value}"
    return Predicate(
        {key: Received(port, counted_value)},
        lambda **kw: op(len(kw[key]), n),
        f"#connections({port}) {sym} {n}",
    )


def more_connections_than(port: str, counted_value: str, n: int) -> Predicate:
    """Strictly more than ``n`` connections on ``port`` (the Car_Buff shape)."""
    return count_connections(port, counted_value, lambda a, b: a > b, n, ">")


def received_sum(port: str, value: str, op: Callable[[Any, Any], bool], threshold: Any, sym: str = "?") -> Predicate:
    """Compare the sum of a received multi-port value against a threshold."""
    key = f"p_{port}_{value}"
    return Predicate(
        {key: Received(port, value)},
        lambda **kw: op(sum(kw[key]), threshold),
        f"sum({port}.{value}) {sym} {threshold!r}",
    )
