"""Instance records.

An :class:`Instance` is the runtime record for one abstract object: its
class, the values of its attribute slots (intrinsic values plus cached
derived values), and its relationship connections.  Out-of-date bookkeeping
lives in the evaluation engine, not here, so that instance records stay a
pure image of database state -- which is what the storage layer pages in and
out, and what the undo log snapshots on delete.

Connections are stored per port as an ordered list of
:class:`Connection` pairs; ordering is observable (a ``Multi`` port's
received values arrive in connection order) and is restored exactly by undo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConnectionError_


@dataclass(frozen=True)
class Connection:
    """One end's view of a relationship connection: the peer and its port."""

    peer: int
    peer_port: str


class Instance:
    """Runtime record of one abstract object."""

    __slots__ = ("iid", "class_name", "attrs", "connections", "active_subtypes")

    def __init__(self, iid: int, class_name: str) -> None:
        self.iid = iid
        self.class_name = class_name
        #: slot-name -> value; holds intrinsic values and cached values of
        #: derived attributes and transmitted values.
        self.attrs: dict[str, Any] = {}
        #: port name -> ordered connections.
        self.connections: dict[str, list[Connection]] = {}
        #: names of predicate subtypes this instance currently belongs to.
        self.active_subtypes: set[str] = set()

    # -- connections --------------------------------------------------------

    def connections_on(self, port: str) -> list[Connection]:
        """The ordered connections on ``port`` (empty when dangling)."""
        return self.connections.get(port, [])

    def add_connection(self, port: str, conn: Connection, index: int | None = None) -> None:
        """Attach ``conn`` on ``port``; ``index`` restores a prior position (undo)."""
        conns = self.connections.setdefault(port, [])
        if index is None:
            conns.append(conn)
        else:
            conns.insert(index, conn)

    def remove_connection(self, port: str, conn: Connection) -> int:
        """Detach ``conn`` from ``port`` and return its former index."""
        conns = self.connections.get(port, [])
        try:
            index = conns.index(conn)
        except ValueError:
            raise ConnectionError_(
                f"instance {self.iid}: port {port!r} is not connected to "
                f"instance {conn.peer} port {conn.peer_port!r}"
            ) from None
        del conns[index]
        if not conns:
            del self.connections[port]
        return index

    def is_connected(self, port: str, conn: Connection) -> bool:
        return conn in self.connections.get(port, ())

    def all_connections(self) -> list[tuple[str, Connection]]:
        """Every (port, connection) pair, used when deleting an instance."""
        pairs: list[tuple[str, Connection]] = []
        for port, conns in self.connections.items():
            pairs.extend((port, c) for c in conns)
        return pairs

    # -- storage size model --------------------------------------------------

    def record_size(self) -> int:
        """Approximate on-disk record size in bytes.

        The simulated disk packs instances into fixed-size blocks; the size
        model is deliberately simple (header + per-slot + per-connection
        costs plus the width of string/array payloads) but is stable, so
        clustering decisions are reproducible.
        """
        size = 32  # record header
        for name, value in self.attrs.items():
            size += 8 + len(name)
            if isinstance(value, str):
                size += len(value)
            elif isinstance(value, (list, tuple)):
                size += 8 * len(value)
            else:
                size += 8
        for port, conns in self.connections.items():
            size += 8 + len(port) + 16 * len(conns)
        return size

    # -- snapshots (undo / versions) -----------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A deep-enough copy of this record for undo-of-delete."""
        return {
            "iid": self.iid,
            "class_name": self.class_name,
            "attrs": dict(self.attrs),
            "connections": {
                port: list(conns) for port, conns in self.connections.items()
            },
            "active_subtypes": set(self.active_subtypes),
        }

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "Instance":
        """Rebuild an instance record from :meth:`snapshot` output."""
        inst = cls(snap["iid"], snap["class_name"])
        inst.attrs = dict(snap["attrs"])
        inst.connections = {
            port: list(conns) for port, conns in snap["connections"].items()
        }
        inst.active_subtypes = set(snap["active_subtypes"])
        return inst

    def __repr__(self) -> str:
        return f"Instance(iid={self.iid}, class={self.class_name!r})"
