"""The Cactis database facade.

Ties every substrate together and exposes the paper's primitives:

    "The Cactis primitives include operations for creating and deleting
    object type instances, establishing and breaking relationships between
    instances, defining predicates and subtypes, and primitives for
    retrieving and replacing attribute values.  These primitive actions are
    augmented by the meta-action *Undo*."

* **creating / deleting instances** -- :meth:`Database.create`,
  :meth:`Database.delete`;
* **establishing / breaking relationships** -- :meth:`Database.connect`,
  :meth:`Database.disconnect`;
* **retrieving / replacing attribute values** -- :meth:`Database.get_attr`,
  :meth:`Database.set_attr` (plus :meth:`Database.get_transmitted` for
  values sent across relationships);
* **Undo** -- :meth:`Database.undo`, with full transaction control via
  :meth:`Database.begin` / :meth:`Database.commit` / :meth:`Database.abort`
  and the :meth:`Database.transaction` context manager;
* predicates and subtypes live in the :class:`~repro.core.schema.Schema`,
  which may be extended dynamically (:meth:`Database.extend_schema`).

The Database is also the :class:`~repro.evaluation.host.EvaluationHost`: it
owns the dependency graph, resolves rules and bindings, and fields the
constraint / subtype callbacks from the engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from repro.core.instance import Connection, Instance
from repro.core.rules import (
    Constraint,
    Local,
    Received,
    Rule,
    SelfRef,
    constraint_name_of,
    is_constraint_attr,
    is_subtype_attr,
    subtype_attr_name,
    subtype_name_of,
)
from repro.core.schema import AttributeDef, PortDef, Schema
from repro.core.slots import (
    Slot,
    attr_slot,
    is_transmit_name,
    split_transmit_name,
    transmit_name,
    transmit_slot,
)
from repro.core.subtypes import SubtypeManager
from repro.errors import (
    ConnectionError_,
    ConstraintViolation,
    CycleError,
    IntrinsicOnlyError,
    RuleEvaluationError,
    SchemaError,
    StorageError,
    TransactionAborted,
    UnknownAttributeError,
    UnknownInstanceError,
)
from repro.evaluation.engine import IncrementalEngine
from repro.evaluation.host import DepBinding
from repro.evaluation.scheduler import Policy
from repro.storage.clustering import greedy_cluster, worst_case_estimates
from repro.storage.manager import StorageManager
from repro.storage.reorg import ReorgDriver, ReorgEpoch
from repro.txn.log import (
    ConnectRecord,
    CreateRecord,
    DeleteRecord,
    DisconnectRecord,
    LogRecord,
    SetAttrRecord,
)
from repro.txn.transaction import TransactionManager


#: distinguishes "attribute absent" from a stored None.
_MISSING = object()


def _value_width(value: Any) -> int:
    """One value's contribution to :meth:`Instance.record_size`.

    Must mirror the size model exactly: equal widths for the old and new
    value of one attribute imply an unchanged record size, which lets the
    write paths skip the full per-attribute resize recomputation.
    """
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 8 * len(value)
    return 8


class Database:
    """An open Cactis database over a frozen schema."""

    def __init__(
        self,
        schema: Schema,
        block_capacity: int = 4096,
        pool_capacity: int = 8,
        policy: Policy = "greedy",
        engine_factory: Callable[["Database"], Any] | None = None,
        detect_cycles: bool = True,
        eager: bool = False,
        fast_path: bool = True,
        auto_batch_transactions: bool = False,
    ) -> None:
        if not schema.frozen:
            schema.freeze()
        self.schema = schema
        #: reject cycle-forming connects eagerly ("Cactis does not support
        #: data cycles").  Disable only for benchmarks that measure raw
        #: connect throughput; lazy detection at demand time still applies.
        self.detect_cycles = detect_cycles
        # Observability root first: every substrate below references
        # ``self.obs.hub`` for its hook points.
        from repro.obs import Observability

        self.obs = Observability()
        self.storage = StorageManager(block_capacity, pool_capacity)
        self.storage.buffer.hub = self.obs.hub
        self.usage = self.storage.usage
        from repro.graph.depgraph import DependencyGraph

        self.depgraph = DependencyGraph()
        # Flattened slot plans (repro.compile.slotplan): the engine's
        # index-based hot path.  Must exist before the engine is built --
        # IncrementalEngine captures it at construction.  None (under
        # REPRO_NO_COMPILE=1) routes the engine through the classic
        # string-keyed dependency-graph walk.
        from repro.compile import compile_enabled
        from repro.compile.slotplan import SlotPlanCache

        self.slot_plans = SlotPlanCache(self) if compile_enabled() else None
        # ``engine_factory`` swaps in a baseline propagation strategy
        # (see :mod:`repro.baselines`); the default is the paper's engine.
        if engine_factory is None:
            self.engine = IncrementalEngine(
                self, policy=policy, eager=eager, fast_path=fast_path
            )
        else:
            self.engine = engine_factory(self)
        self.txn = TransactionManager(self)
        #: when True, explicit transactions default to batched propagation
        #: (one coalesced wave at commit); see :meth:`batch`.
        self.txn.auto_batch = auto_batch_transactions
        self.subtypes = SubtypeManager(self)
        self._catalog: dict[int, Instance] = {}
        # Secondary indexes + predicate-subtype extents (repro.index):
        # maintained from the _do_* primitives below so they roll back and
        # recover with the rest of the database state.
        from repro.index import IndexManager

        self.indexes = IndexManager(self)
        self._next_iid = 1
        self._rulemaps: dict[tuple, dict[str, Rule]] = {}
        self._attrmaps: dict[tuple, dict[str, AttributeDef]] = {}
        self._unchecked_constraints: set[Slot] = set()
        self._in_recovery: set[Slot] = set()
        self._primitive_depth = 0
        #: attached by :class:`repro.persistence.manager.PersistenceManager`
        #: when the database was opened durably (:meth:`Database.open`).
        self.persistence = None
        #: callables invoked with the instance id after every completed
        #: :meth:`delete` -- the federation layer uses this to drop
        #: cross-site bookkeeping that names the deleted instance.
        self._delete_listeners: list[Callable[[int], None]] = []
        #: online incremental reorganisation driver (see repro.storage.reorg).
        self.reorg = ReorgDriver(self)
        self._register_metrics()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def metrics(self):
        """One unified snapshot over every substrate's counters.

        Returns a :class:`repro.obs.MetricsSnapshot` covering the engine,
        scheduler, concurrency control, buffer pool, disk, usage,
        transaction, and WAL counters plus the latency timers.  Snapshots
        subtract (``after - before``) to price a workload.
        """
        return self.obs.snapshot()

    def _register_metrics(self) -> None:
        """Register one provider per substrate with the metrics registry.

        Providers are late-binding closures over ``self``, so swapping a
        baseline engine in or attaching persistence later is picked up.
        The ``cc`` and ``wal`` sections default to zeros and are overridden
        by :class:`~repro.txn.manager.MultiUserScheduler` and
        :class:`~repro.persistence.manager.PersistenceManager` when those
        components attach.
        """
        from dataclasses import fields as dc_fields

        from repro.evaluation.counters import EvalCounters
        from repro.txn.timestamps import CCStats

        def engine_metrics() -> dict:
            counters = self.engine.counters
            data = {
                f.name: getattr(counters, f.name) for f in dc_fields(EvalCounters)
            }
            # Gauges; baseline engines may not carry them.
            data["out_of_date"] = len(getattr(self.engine, "out_of_date", ()))
            data["standing_demands"] = len(
                getattr(self.engine, "standing_demands", ())
            )
            return data

        def scheduler_metrics() -> dict:
            sched = getattr(self.engine, "scheduler", None)
            return {
                "chunks_executed": getattr(sched, "executed", 0),
                "fast_lane_executed": getattr(sched, "fast_executed", 0),
                "background_executed": getattr(sched, "background_executed", 0),
            }

        def cc_metrics() -> dict:
            return {f.name: 0 for f in dc_fields(CCStats)}

        def buffer_metrics() -> dict:
            pool = self.storage.buffer
            stats = pool.stats
            return {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "dirty_writebacks": stats.dirty_writebacks,
                "drop_writebacks": stats.drop_writebacks,
                "resident": len(pool.resident_blocks()),
                "capacity": pool.capacity,
            }

        def disk_metrics() -> dict:
            disk = self.storage.disk
            return {
                "reads": disk.stats.reads,
                "writes": disk.stats.writes,
                "blocks_allocated": disk.stats.blocks_allocated,
                "blocks_recycled": disk.stats.blocks_recycled,
                "blocks_in_use": disk.block_count(),
            }

        def usage_metrics() -> dict:
            usage = self.usage
            return {
                "instance_accesses": sum(usage.instance_accesses.values()),
                "relationship_crossings": sum(
                    usage.relationship_crossings.values()
                ),
                "tracked_relationships": len(usage.worst_case),
            }

        def txn_metrics() -> dict:
            txn = self.txn
            return {
                "commits": txn.commits,
                "aborts": txn.aborts,
                "undos": txn.undos,
                "active": txn.in_transaction,
                "history_length": len(txn.history),
            }

        def wal_metrics() -> dict:
            return {
                "attached": False,
                "commits_logged": 0,
                "undos_logged": 0,
                "bytes_appended": 0,
                "checkpoints_taken": 0,
                "fsyncs": 0,
                "wal_bytes": 0,
                "recovery_replayed": 0,
                "recovery_skipped": 0,
                "reorg_records": 0,
                "fed_records": 0,
            }

        def reorg_metrics() -> dict:
            driver = self.reorg
            stats = driver.stats
            epoch = driver.epoch
            return {
                "epochs_started": stats.epochs_started,
                "epochs_completed": stats.epochs_completed,
                "epochs_abandoned": stats.epochs_abandoned,
                "steps_run": stats.steps_run,
                "instances_moved": stats.instances_moved,
                "instances_skipped": stats.instances_skipped,
                "blocks_released": stats.blocks_released,
                "reorg_writes": self.storage.reorg_writes,
                "active": driver.active,
                "pending_steps": epoch.pending_steps if epoch is not None else 0,
            }

        def compile_metrics() -> dict:
            stats = self.schema.compile_stats
            plans = self.slot_plans
            return {
                "enabled": bool(stats.get("enabled", False)),
                "rules_compiled": stats.get("rules_compiled", 0),
                "cache_hits": stats.get("cache_hits", 0),
                "code_objects": stats.get("code_objects", 0),
                "fallbacks": stats.get("fallbacks", 0),
                "native_bodies": stats.get("native_bodies", 0),
                "compile_seconds": stats.get("compile_seconds", 0.0),
                "plans_built": plans.plans_built if plans is not None else 0,
                "plan_instances": (
                    plans.instances_cached if plans is not None else 0
                ),
            }

        def index_metrics() -> dict:
            return self.indexes.metrics()

        self.obs.register("engine", engine_metrics)
        self.obs.register("index", index_metrics)
        self.obs.register("compile", compile_metrics)
        self.obs.register("scheduler", scheduler_metrics)
        self.obs.register("cc", cc_metrics)
        self.obs.register("buffer", buffer_metrics)
        self.obs.register("disk", disk_metrics)
        self.obs.register("usage", usage_metrics)
        self.obs.register("txn", txn_metrics)
        self.obs.register("wal", wal_metrics)
        self.obs.register("reorg", reorg_metrics)

    # ------------------------------------------------------------------
    # durable open / checkpoint / close
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        schema: Schema,
        *,
        sync: bool = True,
        injector: Any | None = None,
        **db_kwargs: Any,
    ) -> "Database":
        """Open (creating or recovering) a durable database at ``path``.

        ``path`` is a directory holding the write-ahead log and the latest
        checkpoint.  Every committed transaction is appended to the log
        (fsynced when ``sync`` is true) before ``commit`` returns; a
        process crash at any point loses at most the transaction whose
        append had not completed.  Reopening replays the checkpoint plus
        the WAL tail, dropping any torn or corrupt trailing record.

        ``injector`` is a :class:`repro.persistence.faults.FaultInjector`
        for crash testing; remaining keyword arguments go to the
        :class:`Database` constructor.
        """
        from repro.persistence.manager import PersistenceManager

        return PersistenceManager.open(
            path, schema, sync=sync, injector=injector, **db_kwargs
        )

    def checkpoint(self) -> int:
        """Fold the WAL into a fresh on-disk image and truncate the log."""
        if self.persistence is None:
            raise StorageError(
                "database has no persistence attached; use Database.open"
            )
        return self.persistence.checkpoint()

    def close(self) -> None:
        """Flush and close the durable log (no-op for in-memory databases)."""
        if self.persistence is not None:
            self.persistence.close()

    # ------------------------------------------------------------------
    # catalog access
    # ------------------------------------------------------------------

    def instance(self, iid: int) -> Instance:
        try:
            return self._catalog[iid]
        except KeyError:
            raise UnknownInstanceError(f"no instance with id {iid}") from None

    def exists(self, iid: int) -> bool:
        return iid in self._catalog

    def instance_ids(self) -> list[int]:
        return sorted(self._catalog)

    @property
    def next_instance_id(self) -> int:
        """The id the next successful :meth:`create` will allocate.

        Exposed so concurrency control can validate a creation *before*
        any mutation happens (check-then-act), and so recovery can keep
        the allocator ahead of replayed instances.
        """
        return self._next_iid

    def __len__(self) -> int:
        return len(self._catalog)

    # ------------------------------------------------------------------
    # effective structure (class + active predicate subtypes)
    # ------------------------------------------------------------------

    def _effective_key(self, instance: Instance) -> tuple:
        return (
            self.schema.version,
            instance.class_name,
            tuple(sorted(instance.active_subtypes)),
        )

    def invalidate_rulemap(self, iid: int) -> None:
        """Drop cached structure views after a membership flip.

        The rulemap/attrmap caches are keyed by (class, active subtypes),
        so flips simply select a different key; the slot-plan cache keeps a
        per-instance memo in front of that key and must drop it here.
        """
        if self.slot_plans is not None:
            self.slot_plans.invalidate_instance(iid)

    def _rulemap(self, instance: Instance) -> dict[str, Rule]:
        key = self._effective_key(instance)
        cached = self._rulemaps.get(key)
        if cached is not None:
            return cached
        base = self.schema.resolved(instance.class_name)
        rulemap = dict(base.rule_for)
        for subtype in sorted(instance.active_subtypes):
            for rule in self.subtypes.delta_rules(instance.class_name, subtype):
                rulemap[_rule_slot_name(rule)] = rule
        self._rulemaps[key] = rulemap
        return rulemap

    def _attrmap(self, instance: Instance) -> dict[str, AttributeDef]:
        key = self._effective_key(instance)
        cached = self._attrmaps.get(key)
        if cached is not None:
            return cached
        base = self.schema.resolved(instance.class_name)
        attrmap = dict(base.attributes)
        for subtype in sorted(instance.active_subtypes):
            attrmap.update(self.schema.resolved(subtype).attributes)
        self._attrmaps[key] = attrmap
        return attrmap

    def _port_def(self, instance: Instance, port: str) -> PortDef:
        base = self.schema.resolved(instance.class_name)
        if port in base.ports:
            return base.ports[port]
        for subtype in sorted(instance.active_subtypes):
            view = self.schema.resolved(subtype)
            if port in view.ports:
                return view.ports[port]
        return base.port(port)  # raises UnknownRelationshipError

    def default_for_attr(self, attr: AttributeDef) -> Any:
        if attr.default is not None:
            return attr.default
        return self.schema.atoms.get(attr.atom).default

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    @contextmanager
    def _primitive(self) -> Iterator[None]:
        """Delimits one user-level primitive.

        On success at depth zero, an implicit (autocommit) transaction is
        committed.  A constraint violation raised by the propagation wave
        rolls back the *whole* enclosing transaction -- "whenever an
        attribute which is designated as testing a constraint evaluates to
        false, rollback of the current transaction is performed" -- and
        surfaces as :class:`TransactionAborted`.  Cycle and rule errors
        roll back the same way but re-raise their own type.
        """
        self._primitive_depth += 1
        try:
            yield
        except (ConstraintViolation, CycleError, RuleEvaluationError) as exc:
            self._primitive_depth -= 1
            if self._primitive_depth == 0:
                self.engine.reset_wave()
                if self.txn.in_transaction:
                    self.txn.abort()
                if isinstance(exc, ConstraintViolation):
                    raise TransactionAborted(str(exc)) from exc
            raise
        except BaseException:
            # Validation errors (unknown attribute, bad connection, ...)
            # raised before any mutation: unwind the depth so autocommit
            # keeps working, but leave transaction state alone.
            self._primitive_depth -= 1
            raise
        else:
            self._primitive_depth -= 1
            if self._primitive_depth == 0:
                self.txn.finish_autocommit()

    def create(self, class_name: str, **intrinsics: Any) -> int:
        """Create an instance of ``class_name`` with the given intrinsics.

        Unspecified intrinsic attributes take their declared (or atom-type)
        defaults.  Per the paper, creation "does not affect attribute
        evaluation until relationships are established"; constraints on the
        fresh instance are audited at commit.
        """
        with self._primitive():
            resolved = self.schema.resolved(class_name)
            raw = self.schema.classes[class_name]
            if raw.predicate is not None:
                raise SchemaError(
                    f"{class_name!r} is a predicate subtype; instances join it "
                    f"by satisfying its predicate, not by direct creation"
                )
            attrs: dict[str, Any] = {}
            for attr in resolved.attributes.values():
                if not attr.intrinsic:
                    continue
                if attr.name in intrinsics:
                    atom = self.schema.atoms.get(attr.atom)
                    attrs[attr.name] = atom.validate(intrinsics.pop(attr.name))
                else:
                    attrs[attr.name] = self.default_for_attr(attr)
            if intrinsics:
                raise UnknownAttributeError(
                    f"class {class_name!r} has no intrinsic attributes "
                    f"{sorted(intrinsics)}"
                )
            iid = self._next_iid
            self._next_iid += 1
            self._do_create(iid, class_name, attrs)
            self.txn.log(
                CreateRecord(iid=iid, class_name=class_name, intrinsics=dict(attrs))
            )
            return iid

    def _do_create(
        self,
        iid: int,
        class_name: str,
        attrs: dict[str, Any],
        active_subtypes: Iterable[str] = (),
    ) -> None:
        instance = Instance(iid, class_name)
        instance.attrs = dict(attrs)
        instance.active_subtypes = set(active_subtypes)
        self._catalog[iid] = instance
        self.storage.place(iid, instance.record_size())
        self.storage.touch(iid, dirty=True)
        for rule in self._rulemap(instance).values():
            self.add_rule_edges(iid, rule)
            name = _rule_slot_name(rule)
            if is_constraint_attr(name):
                self._unchecked_constraints.add((iid, name))
        self.indexes.note_create(iid, instance)

    def delete(self, iid: int) -> None:
        """Delete an instance: break all relationships, then remove it.

        "The primitive to delete an instance can be treated the same as
        breaking all relationships to the instance."
        """
        with self._primitive():
            instance = self.instance(iid)
            # Capture the far ends before they are disconnected: the peers'
            # crossing counters toward this instance must be forgotten too,
            # or the clusterer keeps weighing ghost relationships.
            peer_keys = [
                (conn.peer, conn.peer_port)
                for __, conn in instance.all_connections()
            ]
            for port, conn in list(instance.all_connections()):
                self.disconnect(iid, port, conn.peer, conn.peer_port)
            snapshot = instance.snapshot()
            # Preserve out-of-date marks: a restored instance must not serve
            # cached derived values that were stale at delete time.
            snapshot["out_of_date"] = [
                name
                for (slot_iid, name) in self.engine.out_of_date
                if slot_iid == iid
            ]
            self.txn.log(DeleteRecord(snapshot=snapshot))
            self._do_delete(iid, peer_keys)
        for listener in tuple(self._delete_listeners):
            listener(iid)

    def add_delete_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(iid)`` after every completed :meth:`delete`.

        Listeners run outside the primitive (after the delete's own wave
        and autocommit), so they may issue further primitives.  They are
        not invoked for deletes replayed during recovery -- a recovering
        observer must rebuild from the recovered state instead.
        """
        self._delete_listeners.append(listener)

    def _do_delete(
        self, iid: int, peer_keys: list[tuple[int, str]] = ()
    ) -> None:
        instance = self.instance(iid)
        for slot in self._all_slots(instance):
            self.depgraph.remove_slot(slot)
            self.engine.forget_slot(slot)
            self._unchecked_constraints.discard(slot)
        self.storage.remove(iid)
        self.usage.forget_instance(iid, peer_keys)
        if self.slot_plans is not None:
            self.slot_plans.invalidate_instance(iid)
        self.indexes.note_delete(iid, instance)
        del self._catalog[iid]

    def _all_slots(self, instance: Instance) -> list[Slot]:
        names = set(instance.attrs)
        names.update(self._rulemap(instance))
        return [(instance.iid, name) for name in names]

    def connect(self, iid_a: int, port_a: str, iid_b: int, port_b: str) -> None:
        """Establish a relationship between two instances' ports."""
        with self._primitive():
            inst_a = self.instance(iid_a)
            inst_b = self.instance(iid_b)
            def_a = self._port_def(inst_a, port_a)
            def_b = self._port_def(inst_b, port_b)
            if def_a.rel_type != def_b.rel_type:
                raise ConnectionError_(
                    f"port {port_a!r} ({def_a.rel_type}) cannot connect to "
                    f"port {port_b!r} ({def_b.rel_type}): relationship types differ"
                )
            if def_a.end is def_b.end:
                raise ConnectionError_(
                    f"both ports are {def_a.end.value}s; a plug must connect "
                    f"to a socket"
                )
            if iid_a == iid_b and port_a == port_b:
                raise ConnectionError_(
                    f"cannot connect port {port_a!r} of instance {iid_a} to itself"
                )
            conn_ab = Connection(iid_b, port_b)
            if inst_a.is_connected(port_a, conn_ab):
                raise ConnectionError_(
                    f"instances {iid_a}.{port_a} and {iid_b}.{port_b} are "
                    f"already connected"
                )
            if not def_a.multi and inst_a.connections_on(port_a):
                raise ConnectionError_(
                    f"port {port_a!r} of instance {iid_a} is single-valued "
                    f"and already connected"
                )
            if not def_b.multi and inst_b.connections_on(port_b):
                raise ConnectionError_(
                    f"port {port_b!r} of instance {iid_b} is single-valued "
                    f"and already connected"
                )
            # Log before the propagation wave runs: a constraint vetoing the
            # connection must find the ConnectRecord in the undo log.
            self.txn.log(ConnectRecord(iid_a, port_a, iid_b, port_b))
            self._do_connect(iid_a, port_a, iid_b, port_b)

    def _do_connect(
        self,
        iid_a: int,
        port_a: str,
        iid_b: int,
        port_b: str,
        index_a: int | None = None,
        index_b: int | None = None,
    ) -> None:
        inst_a = self.instance(iid_a)
        inst_b = self.instance(iid_b)
        self.storage.touch(iid_a, dirty=True)
        self.storage.touch(iid_b, dirty=True)
        inst_a.add_connection(port_a, Connection(iid_b, port_b), index_a)
        inst_b.add_connection(port_b, Connection(iid_a, port_a), index_b)
        self.storage.resize(iid_a, inst_a.record_size())
        self.storage.resize(iid_b, inst_b.record_size())
        edges = self._connection_edges(iid_a, port_a, iid_b, port_b, add=True)
        # "Cactis does not support data cycles": reject a connection that
        # closes one.  The check walks dependents from each new edge's head
        # looking back at its tail -- cheap when the downstream region is
        # small (the common case while building a graph).  Raising here
        # unwinds the whole primitive via the undo log.
        if self.detect_cycles:
            for src, dst in edges:
                path = self._find_dependent_path(dst, src)
                if path is not None:
                    raise CycleError(path + [dst])
        # "When a relationship is established, the second half of the
        # attribute evaluation algorithm is invoked" -- marking the affected
        # consumers triggers evaluation of important ones.
        if edges:
            self.engine.invalidate_derived([dst for __, dst in edges])

    def disconnect(self, iid_a: int, port_a: str, iid_b: int, port_b: str) -> None:
        """Break a relationship between two instances' ports."""
        with self._primitive():
            # Find the positions up front so the record can be logged before
            # the propagation wave (see connect for why).
            inst_a = self.instance(iid_a)
            inst_b = self.instance(iid_b)
            conns_a = inst_a.connections_on(port_a)
            conn_ab = Connection(iid_b, port_b)
            if conn_ab not in conns_a:
                raise ConnectionError_(
                    f"instance {iid_a}: port {port_a!r} is not connected to "
                    f"instance {iid_b} port {port_b!r}"
                )
            index_a = conns_a.index(conn_ab)
            index_b = inst_b.connections_on(port_b).index(Connection(iid_a, port_a))
            self.txn.log(
                DisconnectRecord(iid_a, port_a, iid_b, port_b, index_a, index_b)
            )
            self._do_disconnect(iid_a, port_a, iid_b, port_b)

    def _do_disconnect(
        self, iid_a: int, port_a: str, iid_b: int, port_b: str
    ) -> tuple[int, int]:
        inst_a = self.instance(iid_a)
        inst_b = self.instance(iid_b)
        edges = self._connection_edges(iid_a, port_a, iid_b, port_b, add=False)
        self.storage.touch(iid_a, dirty=True)
        self.storage.touch(iid_b, dirty=True)
        index_a = inst_a.remove_connection(port_a, Connection(iid_b, port_b))
        index_b = inst_b.remove_connection(port_b, Connection(iid_a, port_a))
        # "When a relationship is broken ... these attributes are marked out
        # of date just as if an intrinsic attribute had changed."
        if edges:
            self.engine.invalidate_derived([dst for __, dst in edges])
        return index_a, index_b

    def _connection_edges(
        self, iid_a: int, port_a: str, iid_b: int, port_b: str, add: bool
    ) -> list[tuple[Slot, Slot]]:
        """Add or remove the dependency edges induced by one connection.

        Returns the ``(producer, consumer)`` edge pairs affected.
        """
        edges: list[tuple[Slot, Slot]] = []
        for consumer, c_port, producer, p_port in (
            (iid_a, port_a, iid_b, port_b),
            (iid_b, port_b, iid_a, port_a),
        ):
            instance = self.instance(consumer)
            for rule in self._rulemap(instance).values():
                target = (consumer, _rule_slot_name(rule))
                for __, received in rule.received_inputs():
                    if received.port != c_port:
                        continue
                    src = transmit_slot(producer, p_port, received.value)
                    if add:
                        self.depgraph.add_edge(src, target)
                    else:
                        self.depgraph.remove_edge(src, target)
                    edges.append((src, target))
        return edges

    def _find_dependent_path(self, start: Slot, goal: Slot) -> list[Slot] | None:
        """BFS over dependents from ``start`` to ``goal`` (cycle witness)."""
        if start == goal:
            return [start]
        parents: dict[Slot, Slot] = {start: start}
        frontier = [start]
        while frontier:
            next_frontier: list[Slot] = []
            for slot in frontier:
                for dep in self.depgraph.dependents(slot):
                    if dep in parents:
                        continue
                    parents[dep] = slot
                    if dep == goal:
                        path = [dep]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    next_frontier.append(dep)
            frontier = next_frontier
        return None

    def set_attr(self, iid: int, attr: str, value: Any) -> None:
        """Replace the value of an intrinsic attribute (a primitive update)."""
        with self._primitive():
            instance = self.instance(iid)
            attr_def = self._attrmap(instance).get(attr)
            if attr_def is None:
                raise UnknownAttributeError(
                    f"class {instance.class_name!r} has no attribute {attr!r}"
                )
            if attr_def.derived:
                raise IntrinsicOnlyError(
                    f"attribute {attr!r} is derived; only intrinsic attributes "
                    f"may be given new values directly"
                )
            value = self.schema.atoms.get(attr_def.atom).validate(value)
            old = instance.attrs.get(attr)
            if old == value and attr in instance.attrs:
                return  # no observable change, no log, no propagation
            self.txn.log(SetAttrRecord(iid, attr, old, value))
            self._do_set_attr(iid, attr, value)

    def _do_set_attr(self, iid: int, attr: str, value: Any) -> None:
        instance = self.instance(iid)
        self.storage.touch(iid, dirty=True)
        attrs = instance.attrs
        old = attrs.get(attr, _MISSING)
        attrs[attr] = value
        if old is _MISSING or _value_width(old) != _value_width(value):
            self.storage.resize(iid, instance.record_size())
        if attr in self.indexes.attr_names:
            self.indexes.note_attr_written(iid, attr, value, instance.class_name)
        self.engine.propagate_intrinsic_change(attr_slot(iid, attr))

    def get_attr(self, iid: int, attr: str) -> Any:
        """Retrieve an attribute value, evaluating it if out of date."""
        instance = self.instance(iid)
        if attr not in self._attrmap(instance) and not (
            is_constraint_attr(attr) or is_subtype_attr(attr)
        ):
            raise UnknownAttributeError(
                f"class {instance.class_name!r} has no attribute {attr!r}"
            )
        return self.engine.demand(attr_slot(iid, attr))

    def get_transmitted(self, iid: int, port: str, value: str) -> Any:
        """Retrieve a value the instance transmits across ``port``."""
        instance = self.instance(iid)
        self._port_def(instance, port)  # validates the port exists
        slot = transmit_slot(iid, port, value)
        if self.rule_for(slot) is None:
            return self._flow_default(iid, port, value)
        return self.engine.demand(slot)

    def watch(self, iid: int, attr: str) -> None:
        """Register a standing demand: keep ``attr`` eagerly evaluated.

        The attribute is evaluated immediately (a watch is a query with a
        future), so from this point on it is maintained through every
        propagation wave until :meth:`unwatch`.
        """
        slot = attr_slot(iid, attr)
        self.engine.register_demand(slot)
        self.engine.demand(slot)

    def unwatch(self, iid: int, attr: str) -> None:
        self.engine.unregister_demand(attr_slot(iid, attr))

    # ------------------------------------------------------------------
    # transactions / undo
    # ------------------------------------------------------------------

    def begin(self, label: str = "", batch: bool | None = None) -> int:
        """Open an explicit transaction.

        ``batch=True`` defers attribute propagation across the whole
        transaction into one coalesced wave at commit (see :meth:`batch`);
        ``None`` falls back to the database-wide ``auto_batch_transactions``
        setting.
        """
        return self.txn.begin(label, batch=batch)

    def commit(self):
        return self.txn.commit()

    def abort(self) -> None:
        self.txn.abort()

    def undo(self):
        """The Undo meta-action: roll back the last committed transaction."""
        return self.txn.undo()

    @contextmanager
    def transaction(self, label: str = "", batch: bool | None = None) -> Iterator[None]:
        """Run a block as one transaction; aborts on exception."""
        self.begin(label, batch=batch)
        try:
            yield
        except BaseException:
            if self.txn.in_transaction:
                self.abort()
            raise
        else:
            self.commit()

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Coalesce many primitive updates into one propagation wave.

        Inside the block, :meth:`set_attr` / :meth:`connect` /
        :meth:`disconnect` buffer their change seeds instead of each
        launching a marking wave; at close, one wave marks from the union
        of the seeds (still cutting short at already-marked slots) and then
        evaluates the important slots -- so N updates to overlapping
        regions pay for the region once, generalising the paper's O(1)
        second-assignment property to arbitrary bulk updates.

        Reads inside the block stay exact: a :meth:`get_attr` flushes the
        deferred marking first, so it observes precisely the values
        per-update waves would have produced.  The block forms one
        (auto-committed or enclosing) transaction, and a constraint
        violation at close rolls the whole batch back, surfacing as
        :class:`TransactionAborted` just like an unbatched primitive.

        Batches nest; only the outermost close runs the wave.  Baseline
        engines without batch support run the block unchanged.
        """
        begin_batch = getattr(self.engine, "begin_batch", None)
        if begin_batch is None:  # baseline engines propagate eagerly anyway
            yield
            return
        with self._primitive():
            begin_batch()
            try:
                yield
            except BaseException:
                self.engine.abandon_batch()
                raise
            else:
                self.engine.end_batch()

    def audit_constraints(self) -> None:
        """Evaluate every unverified constraint; raises on violation."""
        index = getattr(self.engine, "out_of_date_constraints", None)
        if index is None:
            # Baseline engines keep no constraint index; scan the full
            # out-of-date set the classic way.
            pending = {
                slot
                for slot in self.engine.out_of_date
                if is_constraint_attr(slot[1])
            }
        else:
            pending = set(index)
        pending.update(self._unchecked_constraints)
        if not pending:
            return
        for slot in sorted(pending):
            if slot[0] not in self._catalog:
                self._unchecked_constraints.discard(slot)
                continue
            holds = self.engine.demand(slot)
            if not holds:
                raise ConstraintViolation(constraint_name_of(slot[1]), slot[0])

    def validate_schema(self, strict: bool = False):
        """Run the static analyzer over this database's schema.

        Returns the list of :class:`repro.analysis.Diagnostic` findings.
        With ``strict=True``, error-severity findings raise
        :class:`~repro.errors.SchemaError` instead of being returned --
        useful as an assertion after :meth:`extend_schema`.
        """
        from repro.analysis import analyze_schema, has_errors

        diagnostics = analyze_schema(self.schema)
        if strict and has_errors(diagnostics):
            rendered = [d.render() for d in diagnostics if d.is_error]
            raise SchemaError(
                "schema failed static analysis:\n  " + "\n  ".join(rendered)
            )
        return diagnostics

    # -- undo-log replay (called by the transaction manager) -----------------

    def apply_inverse(self, record: LogRecord) -> None:
        if isinstance(record, SetAttrRecord):
            self._do_set_attr(record.iid, record.attr, record.old_value)
        elif isinstance(record, CreateRecord):
            self._do_delete(record.iid)
        elif isinstance(record, DeleteRecord):
            snap = record.snapshot
            self._do_create(
                snap["iid"],
                snap["class_name"],
                snap["attrs"],
                active_subtypes=snap["active_subtypes"],
            )
            restore = getattr(self.engine, "restore_mark", None)
            for name in snap.get("out_of_date", ()):
                if restore is not None:
                    restore((snap["iid"], name))
                else:  # baseline engines: bare mark set only
                    self.engine.out_of_date.add((snap["iid"], name))
        elif isinstance(record, ConnectRecord):
            self._do_disconnect(
                record.iid_a, record.port_a, record.iid_b, record.port_b
            )
        elif isinstance(record, DisconnectRecord):
            self._do_connect(
                record.iid_a,
                record.port_a,
                record.iid_b,
                record.port_b,
                record.index_a,
                record.index_b,
            )
        else:  # pragma: no cover - exhaustive over LogRecord
            raise TypeError(f"unknown log record {record!r}")

    def apply_forward(self, record: LogRecord) -> None:
        if isinstance(record, SetAttrRecord):
            self._do_set_attr(record.iid, record.attr, record.new_value)
        elif isinstance(record, CreateRecord):
            self._do_create(record.iid, record.class_name, record.intrinsics)
        elif isinstance(record, DeleteRecord):
            self._do_delete(record.iid)
        elif isinstance(record, ConnectRecord):
            self._do_connect(
                record.iid_a, record.port_a, record.iid_b, record.port_b
            )
        elif isinstance(record, DisconnectRecord):
            self._do_disconnect(
                record.iid_a, record.port_a, record.iid_b, record.port_b
            )
        else:  # pragma: no cover - exhaustive over LogRecord
            raise TypeError(f"unknown log record {record!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def instances_of(self, class_name: str, include_subtypes: bool = True) -> list[int]:
        """Instance ids belonging to a class (static or predicate-defined)."""
        raw = self.schema.classes.get(class_name)
        if raw is None:
            self.schema.resolved(class_name)  # raises UnknownTypeError
        assert raw is not None
        if raw.predicate is not None:
            return [
                iid for iid in self.instance_ids() if self.is_member(iid, class_name)
            ]
        result = []
        for iid in self.instance_ids():
            cls = self._catalog[iid].class_name
            if cls == class_name or (
                include_subtypes and self.schema.is_subclass(cls, class_name)
            ):
                result.append(iid)
        return result

    def is_member(self, iid: int, class_name: str) -> bool:
        """Type test covering static subclassing and predicate subtypes."""
        instance = self.instance(iid)
        raw = self.schema.classes.get(class_name)
        if raw is None:
            self.schema.resolved(class_name)
        assert raw is not None
        if raw.predicate is None:
            return self.schema.is_subclass(instance.class_name, class_name)
        if not self.schema.is_subclass(instance.class_name, raw.supertype or ""):
            return False
        return bool(self.engine.demand(attr_slot(iid, subtype_attr_name(class_name))))

    def where(
        self, class_name: str, predicate: Callable[["InstanceView"], bool]
    ) -> list[int]:
        """Instances of a class whose view satisfies ``predicate``."""
        return [
            iid
            for iid in self.instances_of(class_name)
            if predicate(InstanceView(self, iid))
        ]

    def select(self, class_name: str, predicate) -> list[int]:
        """Instances of a class satisfying a combinator predicate.

        ``predicate`` is a :class:`repro.core.predicates.Predicate`; its
        declared inputs are resolved against each candidate instance (see
        :meth:`~repro.core.predicates.Predicate.on_view`).
        """
        return [
            iid
            for iid in self.instances_of(class_name)
            if predicate.on_view(InstanceView(self, iid))
        ]

    def view(self, iid: int) -> "InstanceView":
        return InstanceView(self, iid)

    # ------------------------------------------------------------------
    # schema extension / reorganisation
    # ------------------------------------------------------------------

    @contextmanager
    def extend_schema(self) -> Iterator[Schema]:
        """Dynamically extend the type structure (new tools!).

        Unfreezes the schema for the duration of the block and refreezes it
        on exit, revalidating everything and expiring structure caches.
        """
        self.schema.unfreeze()
        try:
            yield self.schema
        finally:
            self.schema.freeze()
            self._rulemaps.clear()
            self._attrmaps.clear()
            if self.slot_plans is not None:
                self.slot_plans.clear()
            self._reconcile_after_extension()
            # The extension may add/drop index declarations, classes, or
            # predicate subtypes: re-derive and rebuild from the catalog.
            self.indexes.sync()

    def _reconcile_after_extension(self) -> None:
        """Wire new/changed rules into existing instances after an extension.

        Newly added rules (including predicate-subtype membership rules for
        a subtype added while instances exist) get their dependency edges
        installed, new intrinsic attributes get defaults, and every rule
        target is invalidated so redefined computations take effect.  The
        important ones (constraints, subtype membership) evaluate
        immediately, flipping membership of pre-existing instances.
        """
        stale: list[Slot] = []
        for iid, instance in self._catalog.items():
            for attr in self._attrmap(instance).values():
                if attr.intrinsic and attr.name not in instance.attrs:
                    instance.attrs[attr.name] = self.default_for_attr(attr)
            for rule in self._rulemap(instance).values():
                self.add_rule_edges(iid, rule)
                name = _rule_slot_name(rule)
                if is_constraint_attr(name) and not self.has_slot_value((iid, name)):
                    self._unchecked_constraints.add((iid, name))
                stale.append((iid, name))
        if stale:
            self.engine.invalidate_derived(stale)

    def neighbors(self, iid: int) -> list[tuple[str, int]]:
        """Connection oracle used by the clustering algorithm."""
        instance = self.instance(iid)
        return [
            (port, conn.peer) for port, conn in instance.all_connections()
        ]

    def static_cluster_weights(self) -> dict[tuple[int, str], float] | None:
        """Cold-start frontier priors for :func:`greedy_cluster`.

        Expands the static cost model's per-``(class, port)`` weights
        (``schema.analysis_facts.cost.port_weight`` -- op counts of the
        rules that cross each port) over the live connection table.  The
        clustering algorithm consults these only for edges with no
        observed crossing count, so a freshly-loaded database clusters by
        schema-derived importance instead of declaration order; ``None``
        when the freeze-time analysis is disabled or found no ports.
        """
        facts = getattr(self.schema, "analysis_facts", None)
        if facts is None or not facts.cost.port_weight:
            return None
        port_weight = facts.cost.port_weight
        out: dict[tuple[int, str], float] = {}
        for iid, instance in self._catalog.items():
            for port, __ in instance.all_connections():
                weight = port_weight.get((instance.class_name, port))
                if weight:
                    out[(iid, port)] = weight
        return out or None

    def reorganize(self) -> list[list[int]]:
        """Run the paper's greedy clustering and install the new layout.

        This is the *offline* (stop-the-world) path: every block is rebuilt
        at once and the buffer pool is dropped.  Also refreshes cluster-time
        worst-case statistics, re-seeds the decaying averages (observations
        against the old layout would otherwise keep mispredicting I/O), and
        resets the usage counters for the next adaptation epoch.  See
        :meth:`reorganize_online` for the incremental alternative.
        """
        if self.reorg.active:
            raise StorageError(
                "cannot run an offline reorganisation while an online "
                "epoch is active; finish or abandon it first"
            )
        sizes = {iid: inst.record_size() for iid, inst in self._catalog.items()}
        layout = greedy_cluster(
            sizes,
            self.neighbors,
            self.usage,
            self.storage.disk.block_capacity,
            static_weights=self.static_cluster_weights(),
        )
        self.storage.apply_layout(layout, lambda iid: sizes[iid])
        self._refresh_usage_after_reorg()
        return layout

    def reorganize_online(self, steps_per_drain: int = 1) -> ReorgEpoch:
        """Start an online reorganisation epoch (see repro.storage.reorg).

        Plans the same layout :meth:`reorganize` would install, then
        migrates it a block at a time from the chunk scheduler's idle lane
        (at most ``steps_per_drain`` steps per queue drain) so queries keep
        running against a mixed-but-correct layout.  Returns the epoch
        handle; drive it manually with ``db.reorg.step()`` /
        ``db.reorg.run_to_completion()`` or just keep working and let the
        idle lane finish it.
        """
        return self.reorg.start_epoch(steps_per_drain=steps_per_drain)

    def _refresh_usage_after_reorg(self, reset_counters: bool = True) -> None:
        """Re-align the usage statistics with the (newly changed) layout."""
        estimates = worst_case_estimates(
            self.instance_ids(), self.neighbors, self.storage.block_of
        )
        for (iid, port), estimate in estimates.items():
            self.usage.set_worst_case(iid, port, estimate)
        self.usage.reseed_averages()
        if reset_counters:
            self.usage.reset_counters()

    # ------------------------------------------------------------------
    # EvaluationHost implementation
    # ------------------------------------------------------------------

    def rule_for(self, slot: Slot) -> Rule | None:
        iid, name = slot
        plans = self.slot_plans
        if plans is not None:
            plan = plans.plan_of(iid)
            if plan is None:
                return None
            sid = plan.index.get(name)
            return plan.rules[sid] if sid is not None else None
        instance = self._catalog.get(iid)
        if instance is None:
            return None
        return self._rulemap(instance).get(name)

    def resolved_inputs(self, slot: Slot) -> list[DepBinding]:
        iid, __ = slot
        instance = self.instance(iid)
        rule = self.rule_for(slot)
        assert rule is not None, f"resolved_inputs on intrinsic slot {slot!r}"
        bindings: list[DepBinding] = []
        for kw, inp in rule.inputs.items():
            if isinstance(inp, SelfRef):
                bindings.append(DepBinding(kw=kw, self_ref=True))
            elif isinstance(inp, Local):
                bindings.append(DepBinding(kw=kw, slots=[(iid, inp.attr)]))
            elif isinstance(inp, Received):
                port_def = self._port_def(instance, inp.port)
                slots = [
                    transmit_slot(conn.peer, conn.peer_port, inp.value)
                    for conn in instance.connections_on(inp.port)
                ]
                bindings.append(
                    DepBinding(
                        kw=kw,
                        slots=slots,
                        port=inp.port,
                        multi=port_def.multi,
                        default=self._flow_default(iid, inp.port, inp.value),
                    )
                )
            else:  # pragma: no cover - exhaustive over Input
                raise TypeError(f"unknown input declaration {inp!r}")
        return bindings

    def _flow_default(self, iid: int, port: str, value: str) -> Any:
        """The dummy-instance value for a dangling (or rule-less) flow."""
        instance = self.instance(iid)
        port_def = self._port_def(instance, port)
        rel = self.schema.relationship_type(port_def.rel_type)
        flow = rel.flow(value)
        if flow.default is not None:
            return flow.default
        return self.schema.atoms.get(flow.atom).default

    def read_slot_value(self, slot: Slot) -> Any:
        iid, name = slot
        instance = self.instance(iid)
        if name in instance.attrs:
            return instance.attrs[name]
        plans = self.slot_plans
        if plans is not None:
            # The plan pre-splits every transmit name into its flow default
            # (dummy-instance semantics), so a dangling read stays free of
            # string parsing inside a wave.
            plan = plans.plan_of(iid)
            if plan is not None:
                default = plan.flow_defaults.get(name, _MISSING)
                if default is not _MISSING:
                    return default
        if is_transmit_name(name):
            # A peer consumes a flow this class never computes: the flow
            # default stands in (dummy-instance semantics).
            port, value = split_transmit_name(name)
            return self._flow_default(iid, port, value)
        raise UnknownAttributeError(
            f"instance {iid} has no stored value for slot {name!r}"
        )

    def write_slot_value(self, slot: Slot, value: Any) -> None:
        iid, name = slot
        instance = self.instance(iid)
        attrs = instance.attrs
        old = attrs.get(name, _MISSING)
        attrs[name] = value
        # Equal stored widths mean an identical record size, so the resize
        # (a full per-attribute size recomputation) is a provable no-op.
        if old is _MISSING or _value_width(old) != _value_width(value):
            self.storage.resize(iid, instance.record_size())
        # Index maintenance for derived writes: one set lookup when no
        # index or extent watches this slot name (cf. ``hub.active``).
        indexes = self.indexes
        if name in indexes.hot_names:
            if name in indexes.attr_names:
                indexes.note_attr_written(iid, name, value, instance.class_name)
            else:
                indexes.note_membership_written(iid, name)

    def has_slot_value(self, slot: Slot) -> bool:
        iid, name = slot
        instance = self._catalog.get(iid)
        return instance is not None and name in instance.attrs

    def receive_port_between(self, consumer: Slot, producer: Slot) -> str | None:
        rule = self.rule_for(consumer)
        if rule is None:
            return None
        instance = self._catalog.get(consumer[0])
        if instance is None:
            return None
        producer_iid, producer_name = producer
        for __, received in rule.received_inputs():
            for conn in instance.connections_on(received.port):
                if (
                    conn.peer == producer_iid
                    and transmit_name(conn.peer_port, received.value)
                    == producer_name
                ):
                    return received.port
        return None

    def handle_constraint_result(self, slot: Slot, holds: bool) -> None:
        if holds:
            self._unchecked_constraints.discard(slot)
            return
        if self.txn.rolling_back:
            # Restoring previously consistent state must not be vetoed.
            return
        iid, name = slot
        cname = constraint_name_of(name)
        constraint = self._constraint_def(iid, cname)
        if (
            constraint is not None
            and constraint.recovery is not None
            and slot not in self._in_recovery
        ):
            self._in_recovery.add(slot)
            try:
                constraint.recovery(self, iid)
                if bool(self.engine.demand(slot)):
                    self._unchecked_constraints.discard(slot)
                    return
            finally:
                self._in_recovery.discard(slot)
        raise ConstraintViolation(cname, iid)

    def _constraint_def(self, iid: int, cname: str) -> Constraint | None:
        instance = self._catalog.get(iid)
        if instance is None:
            return None
        for cls_name in (instance.class_name, *sorted(instance.active_subtypes)):
            for constraint in self.schema.resolved(cls_name).constraints:
                if constraint.name == cname:
                    return constraint
        return None

    def handle_subtype_result(self, slot: Slot, member: bool) -> None:
        iid, name = slot
        subtype = subtype_name_of(name)
        if member:
            self.subtypes.attach(iid, subtype)
        else:
            self.subtypes.detach(iid, subtype)

    def note_unchecked_constraint(self, slot: Slot) -> None:
        self._unchecked_constraints.add(slot)

    def forget_unchecked_constraint(self, slot: Slot) -> None:
        self._unchecked_constraints.discard(slot)

    # -- dependency-edge helpers (shared with SubtypeManager) ----------------

    def add_rule_edges(self, iid: int, rule: Rule) -> None:
        """Install the dependency edges a rule induces for one instance."""
        instance = self.instance(iid)
        target = (iid, _rule_slot_name(rule))
        for __, inp in rule.inputs.items():
            if isinstance(inp, Local):
                self.depgraph.add_edge((iid, inp.attr), target)
            elif isinstance(inp, Received):
                for conn in instance.connections_on(inp.port):
                    self.depgraph.add_edge(
                        transmit_slot(conn.peer, conn.peer_port, inp.value), target
                    )

    def remove_rule_edges(self, iid: int, rule: Rule) -> None:
        instance = self.instance(iid)
        target = (iid, _rule_slot_name(rule))
        for __, inp in rule.inputs.items():
            if isinstance(inp, Local):
                self.depgraph.remove_edge((iid, inp.attr), target)
            elif isinstance(inp, Received):
                for conn in instance.connections_on(inp.port):
                    self.depgraph.remove_edge(
                        transmit_slot(conn.peer, conn.peer_port, inp.value), target
                    )


class InstanceView:
    """A light ergonomic wrapper: ``view["attr"]`` reads, ``view.set`` writes."""

    __slots__ = ("_db", "iid")

    def __init__(self, db: Database, iid: int) -> None:
        self._db = db
        self.iid = iid

    def __getitem__(self, attr: str) -> Any:
        return self._db.get_attr(self.iid, attr)

    def get(self, attr: str) -> Any:
        return self._db.get_attr(self.iid, attr)

    def set(self, attr: str, value: Any) -> None:
        self._db.set_attr(self.iid, attr, value)

    @property
    def class_name(self) -> str:
        return self._db.instance(self.iid).class_name

    @property
    def active_subtypes(self) -> set[str]:
        return set(self._db.instance(self.iid).active_subtypes)

    def connections(self, port: str) -> list[int]:
        return [c.peer for c in self._db.instance(self.iid).connections_on(port)]

    def __repr__(self) -> str:
        return f"InstanceView(iid={self.iid}, class={self.class_name!r})"


def _rule_slot_name(rule: Rule) -> str:
    from repro.core.rules import AttributeTarget

    if isinstance(rule.target, AttributeTarget):
        return rule.target.attr
    return transmit_name(rule.target.port, rule.target.value)
