"""Atomic value types.

A Cactis database is built from *abstract objects* and *atomic objects*:
"strings, reals, integers, booleans, arrays, and records".  Attributes "may
be of any C data type, except pointer".  This module provides the registry of
atomic types, value validation/coercion, and the ``time`` type used by the
milestone and make examples (the paper manipulates modification times with
``later_of`` / ``later_than`` and the distinguished constant ``TIME0``).

Atomic types are intentionally simple: each is a named checker with a default
value.  Schemas refer to them by name (``"integer"``, ``"time"`` ...) so the
DSL can resolve type names textually, and applications may register their own
atom types (the paper stresses that "the Cactis data model can support
arbitrary types").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import AtomTypeError, SchemaError

# The distinguished "beginning of time" constant from Figure 1, and the
# "time in the distant future" that file_mod_time returns for missing files.
TIME0 = 0
TIME_FUTURE = 2**62


@dataclass(frozen=True)
class AtomType:
    """A named atomic value type.

    Parameters
    ----------
    name:
        The name schemas use to refer to the type (e.g. ``"integer"``).
    check:
        Predicate returning True when a value conforms to the type.
    default:
        Value given to intrinsic attributes that are not initialised
        explicitly, and to transmitted values across unconnected (dangling)
        relationships -- the paper's "dummy instances" provide exactly this.
    coerce:
        Optional normalising conversion applied before storage (e.g. ``int``
        for booleans written as 0/1).  When absent, values are stored as-is.
    """

    name: str
    check: Callable[[Any], bool]
    default: Any
    coerce: Callable[[Any], Any] | None = None

    def validate(self, value: Any) -> Any:
        """Return the (possibly coerced) value, or raise :class:`AtomTypeError`."""
        if self.coerce is not None:
            try:
                value = self.coerce(value)
            except (TypeError, ValueError) as exc:
                raise AtomTypeError(
                    f"value {value!r} is not coercible to atom type {self.name!r}"
                ) from exc
        if not self.check(value):
            raise AtomTypeError(
                f"value {value!r} does not conform to atom type {self.name!r}"
            )
        return value


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_real(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_array(value: Any) -> bool:
    return isinstance(value, (list, tuple))


def _is_record(value: Any) -> bool:
    return isinstance(value, dict)


def _to_real(value: Any) -> float:
    """Normalise numbers to float; rejects strings and booleans."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"not a real number: {value!r}")
    return float(value)


class AtomRegistry:
    """Registry mapping atom type names to :class:`AtomType` objects.

    Every schema owns a registry pre-populated with the built-in types; user
    code may add new types with :meth:`register`, reflecting the paper's
    extensibility requirement.
    """

    def __init__(self) -> None:
        self._types: dict[str, AtomType] = {}
        for atom in _builtin_atoms():
            self._types[atom.name] = atom

    def register(self, atom: AtomType) -> AtomType:
        """Add a new atom type; the name must not already be taken."""
        if atom.name in self._types:
            raise SchemaError(f"atom type {atom.name!r} is already registered")
        self._types[atom.name] = atom
        return atom

    def get(self, name: str) -> AtomType:
        """Look up an atom type by name, raising :class:`SchemaError` if absent."""
        try:
            return self._types[name]
        except KeyError:
            raise SchemaError(f"unknown atom type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self) -> list[str]:
        """All registered type names, sorted."""
        return sorted(self._types)


def _builtin_atoms() -> list[AtomType]:
    return [
        AtomType("integer", _is_int, 0),
        AtomType("real", _is_real, 0.0, coerce=_to_real),
        AtomType("boolean", lambda v: isinstance(v, bool), False),
        AtomType("string", lambda v: isinstance(v, str), ""),
        # "time" is an integer-valued logical clock; the examples in the
        # paper (milestones, make) only need ordering and addition.
        AtomType("time", _is_int, TIME0),
        AtomType("array", _is_array, (), coerce=tuple),
        AtomType("record", _is_record, None),
        # "any" disables checking; used by generic tooling and by transmitted
        # values whose type depends on the transmitting subtype.
        AtomType("any", lambda v: True, None),
    ]


def later_of(a: int, b: int) -> int:
    """The later of two time values (builtin used by Figures 1 and 3)."""
    return a if a >= b else b


def later_than(a: int, b: int) -> bool:
    """True when time ``a`` is strictly after time ``b`` (Figures 1 and 4)."""
    return a > b
