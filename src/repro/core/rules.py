"""Attribute evaluation rules and their declared dependencies.

The Cactis model attaches *attribute evaluation rules* to derived attributes
and to transmitted values.  A rule may use, per the paper, "attribute values
passed to it from instances the given instance is directly related to via
named relationships" plus local attributes of the same instance.  Dependency
information must be statically available -- the incremental algorithm's
first phase walks the dependency graph without running any rules -- so each
rule *declares* its inputs:

* :class:`Local` -- a local attribute of the same instance.
* :class:`Received` -- a named value received across one of the instance's
  relationship ports.  For a ``multi`` port the rule receives a list of
  values, one per connected instance in connection order; for a single
  port it receives one value (or the declared default when the port is
  dangling, playing the role of the paper's "dummy instances").
* :class:`SelfRef` -- the instance id itself, for rules that need to consult
  external context keyed by instance (the make facility passes it to the
  simulated file system, for example).

The rule body is an ordinary Python callable invoked with one keyword
argument per declared input.  Rules compiled from the DSL
(:mod:`repro.dsl.compiler`) produce exactly this structure, so the evaluator
never distinguishes hand-written from compiled rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import SchemaError


@dataclass(frozen=True)
class Local:
    """Dependency on a local attribute of the same instance."""

    attr: str


@dataclass(frozen=True)
class Received:
    """Dependency on a value received across a relationship port.

    ``port`` names a relationship port of the *consuming* class; ``value``
    names a value transmitted by instances connected on that port.
    """

    port: str
    value: str


@dataclass(frozen=True)
class SelfRef:
    """Pseudo-dependency providing the instance's own id to the rule body."""


Input = Local | Received | SelfRef


@dataclass(frozen=True)
class AttributeTarget:
    """Rule output: a derived local attribute."""

    attr: str


@dataclass(frozen=True)
class TransmitTarget:
    """Rule output: a value transmitted out across a relationship port."""

    port: str
    value: str


Target = AttributeTarget | TransmitTarget


@dataclass(frozen=True)
class Rule:
    """An attribute evaluation rule.

    Parameters
    ----------
    target:
        What the rule computes: an :class:`AttributeTarget` for a derived
        attribute or a :class:`TransmitTarget` for a transmitted value.
    inputs:
        Mapping from keyword-argument name to input declaration.  The body
        is called as ``body(**{name: resolved_value})``.
    body:
        The computation.  Must be a pure function of its inputs: the
        incremental algorithm assumes re-running a rule with equal inputs
        yields an equal value (this is what makes "evaluate each attribute
        at most once" sound).
    name:
        Optional diagnostic name; defaults to a rendering of the target.
    """

    target: Target
    inputs: Mapping[str, Input]
    body: Callable[..., Any]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.target, (AttributeTarget, TransmitTarget)):
            raise SchemaError(f"invalid rule target: {self.target!r}")
        for key, inp in self.inputs.items():
            if not isinstance(inp, (Local, Received, SelfRef)):
                raise SchemaError(
                    f"invalid input declaration {inp!r} for parameter {key!r}"
                )
        if not callable(self.body):
            raise SchemaError("rule body must be callable")
        if not self.name:
            object.__setattr__(self, "name", _default_name(self.target))
        # Both input views are consulted inside marking waves (edge wiring,
        # receive-port resolution), so they are computed once here rather
        # than rebuilt per call.
        object.__setattr__(
            self,
            "_received_inputs",
            [(k, i) for k, i in self.inputs.items() if isinstance(i, Received)],
        )
        object.__setattr__(
            self,
            "_local_inputs",
            [(k, i) for k, i in self.inputs.items() if isinstance(i, Local)],
        )

    def received_inputs(self) -> list[tuple[str, Received]]:
        """The subset of inputs that cross relationships, with their kw names."""
        return self._received_inputs

    def local_inputs(self) -> list[tuple[str, Local]]:
        """The subset of inputs that are local attributes, with their kw names."""
        return self._local_inputs


def _default_name(target: Target) -> str:
    if isinstance(target, AttributeTarget):
        return f"rule:{target.attr}"
    return f"rule:{target.port}>{target.value}"


@dataclass(frozen=True)
class Constraint:
    """A constraint attached to an object class.

    "A constraint is implemented as a derived attribute value which computes
    a boolean value indicating whether the constraint has been violated."
    The predicate returns True when the constraint *holds*; a False result
    raises :class:`repro.errors.ConstraintViolation`, rolling back the
    enclosing transaction unless the optional ``recovery`` action repairs
    the database first.

    ``recovery`` receives ``(db, instance_id)`` and may issue ordinary
    primitives; after it runs, the constraint is re-evaluated once.  If it
    still fails, the transaction aborts.
    """

    name: str
    inputs: Mapping[str, Input]
    predicate: Callable[..., bool]
    recovery: Callable[[Any, int], None] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("constraints must be named")
        for key, inp in self.inputs.items():
            if not isinstance(inp, (Local, Received, SelfRef)):
                raise SchemaError(
                    f"invalid input declaration {inp!r} for parameter {key!r}"
                )
        if not callable(self.predicate):
            raise SchemaError("constraint predicate must be callable")

    def as_rule(self) -> Rule:
        """The derived-boolean-attribute encoding of this constraint.

        The synthetic attribute is named ``__constraint__<name>`` and is
        always *important* (the evaluator treats constraint slots as having
        a standing demand), so violations surface eagerly at update time.
        """
        return Rule(
            target=AttributeTarget(constraint_attr_name(self.name)),
            inputs=dict(self.inputs),
            body=self.predicate,
            name=f"constraint:{self.name}",
        )


def constraint_attr_name(constraint_name: str) -> str:
    """Name of the synthetic derived attribute backing a constraint."""
    return f"__constraint__{constraint_name}"


def is_constraint_attr(attr_name: str) -> bool:
    """True when the attribute name backs a constraint predicate."""
    return attr_name.startswith("__constraint__")


def constraint_name_of(attr_name: str) -> str:
    """Recover the constraint name from its synthetic attribute name."""
    return attr_name[len("__constraint__"):]


@dataclass(frozen=True)
class SubtypePredicate:
    """A predicate defining membership of a subtype.

    "Objects are broken into type/subtype hierarchies based on the values of
    relationships and attributes, via predicates."  The predicate is encoded
    as a derived boolean attribute on the *supertype* named
    ``__subtype__<name>``; when it flips, the instance gains or loses the
    subtype's additional attributes and rules (see
    :mod:`repro.core.subtypes`).
    """

    subtype_name: str
    inputs: Mapping[str, Input]
    predicate: Callable[..., bool]

    def as_rule(self) -> Rule:
        return Rule(
            target=AttributeTarget(subtype_attr_name(self.subtype_name)),
            inputs=dict(self.inputs),
            body=self.predicate,
            name=f"subtype:{self.subtype_name}",
        )


def subtype_attr_name(subtype_name: str) -> str:
    """Name of the synthetic derived attribute backing subtype membership."""
    return f"__subtype__{subtype_name}"


def is_subtype_attr(attr_name: str) -> bool:
    """True when the attribute name backs a subtype membership predicate."""
    return attr_name.startswith("__subtype__")


def subtype_name_of(attr_name: str) -> str:
    """Recover the subtype name from its synthetic attribute name."""
    return attr_name[len("__subtype__"):]
