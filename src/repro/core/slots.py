"""Slot identifiers.

The unit of dependency tracking in this reproduction is the *slot*: a pair
``(instance_id, slot_name)``.  A slot is either

* a **local attribute** of an instance -- slot name is the attribute name,
  e.g. ``(7, "exp_compl")``; or
* a **transmitted value** an instance sends out across one of its
  relationship ports -- slot name is ``"<port>><value>"``, e.g.
  ``(7, "consists_of>exp_time")`` for Figure 1's
  ``consists_of exp_time = exp_compl`` rule.

Both kinds can be derived (carry a rule) and both participate in the
dependency graph.  Plain tuples keep the hot paths of the evaluator cheap;
this module centralises construction and parsing of slot names so no other
module hard-codes the ``>`` separator.
"""

from __future__ import annotations

from typing import Tuple

Slot = Tuple[int, str]

_SEP = ">"


def attr_slot(instance_id: int, attr_name: str) -> Slot:
    """Slot for a local attribute of an instance."""
    return (instance_id, attr_name)


def transmit_slot(instance_id: int, port: str, value_name: str) -> Slot:
    """Slot for a value the instance transmits across ``port``."""
    return (instance_id, transmit_name(port, value_name))


def transmit_name(port: str, value_name: str) -> str:
    """The slot-name encoding for a transmitted value."""
    return f"{port}{_SEP}{value_name}"


def is_transmit_name(slot_name: str) -> bool:
    """True when the slot name denotes a transmitted value."""
    return _SEP in slot_name


def split_transmit_name(slot_name: str) -> tuple[str, str]:
    """Decompose a transmitted slot name into ``(port, value_name)``."""
    port, __, value = slot_name.partition(_SEP)
    return port, value


def describe(slot: Slot) -> str:
    """Human-readable rendering used in error messages and traces."""
    iid, name = slot
    if is_transmit_name(name):
        port, value = split_transmit_name(name)
        return f"instance {iid}: value {value!r} transmitted on port {port!r}"
    return f"instance {iid}: attribute {name!r}"
