"""The serving layer: an asyncio front-end over one Cactis database.

The paper's multi-user story stops at timestamp concurrency control inside
one process; this package turns that engine into a service.  A
:class:`ReproServer` accepts many concurrent client connections speaking a
length-prefixed JSON wire protocol (:mod:`repro.server.protocol`), each
submitted transaction becomes a yield-between-operations script
(:mod:`repro.server.txnscript`), and a :class:`SessionMultiplexer`
(:mod:`repro.server.mux`) feeds those scripts to the live
:class:`~repro.txn.manager.MultiUserScheduler` core -- scripts arrive and
retire dynamically instead of running as a fixed batch.  Admission control
bounds the in-flight transaction count, per-connection backpressure stops
reading from clients that outrun the engine, and a dropped connection
mid-transaction rolls its work back and retracts its timestamp marks.

Server counters flow through :mod:`repro.obs` as the ``server.*`` metrics
section plus a ``latency.request`` timer; ``python -m repro.server`` runs a
stand-alone server (or ``--smoke``, the self-contained smoke check used by
``make server-check``).  The thin client library lives in
:mod:`repro.client`.  The protocol and knobs are documented in
``docs/SERVER.md``, held truthful by ``tests/server/test_docs.py``.
"""

from repro.server.mux import ServerConfig, SessionMultiplexer, TxnHandle
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    OPS,
    REQUEST_TYPES,
    RESPONSE_TYPES,
    TXN_STATUSES,
    ProtocolError,
    encode_frame,
    read_frame,
    recv_frame,
)
from repro.server.server import ReproServer, ServerThread, serve
from repro.server.txnscript import script_from_ops, validate_ops

__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "ProtocolError",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "ReproServer",
    "ServerConfig",
    "ServerThread",
    "SessionMultiplexer",
    "TXN_STATUSES",
    "TxnHandle",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "script_from_ops",
    "serve",
    "validate_ops",
]
