"""The session multiplexer: live transactions over one scheduler.

:class:`SessionMultiplexer` is the transport-free heart of the server --
the asyncio front-end in :mod:`repro.server.server` feeds it parsed
frames, tests drive it directly.  It owns the live
:class:`~repro.txn.manager.MultiUserScheduler`, enforces admission
control (at most ``max_inflight`` transactions in the engine at once),
tracks every counter in the ``server.*`` metrics section, and times each
request into the ``latency.request`` timer of the database's
observability root.

Teardown discipline: :meth:`cancel` (the disconnect path) rolls the
transaction back *and* retracts the session's timestamp marks, and the
scheduler resets ``hub.session`` attribution around the teardown -- a
dropped client must leave no trace in the engine beyond its aborted
delta's undo records.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.obs.registry import LatencyTimer
from repro.server.txnscript import script_from_ops, validate_ops
from repro.txn.manager import MultiUserScheduler


@dataclass
class ServerConfig:
    """Every serving knob in one place (documented in docs/SERVER.md)."""

    #: interface the asyncio server binds.
    host: str = "127.0.0.1"
    #: TCP port; 0 picks an ephemeral port (reported by ``Server.address``).
    port: int = 0
    #: connections beyond this are greeted with an ``error`` frame and closed.
    max_connections: int = 64
    #: admission control: transactions live in the scheduler at once;
    #: submissions beyond this are answered ``status="rejected"``.
    max_inflight: int = 256
    #: per-connection backpressure: stop reading a client's socket while it
    #: has this many transactions unanswered.
    max_pending_per_conn: int = 32
    #: refuse request frames larger than this many bytes.
    max_frame_bytes: int = 1 << 20
    #: scheduler steps run per event-loop tick; the knob trading fairness
    #: against syscall overhead.
    steps_per_tick: int = 64
    #: seconds a disconnecting connection's sender may keep flushing before
    #: teardown abandons it (a stalled peer must not pin capacity).
    drain_timeout: float = 5.0
    #: per-transaction CC restart budget before it fails terminally.
    max_restarts: int = 100
    #: optional scheduler seed: pick interleavings pseudo-randomly
    #: (reproducibly) instead of round-robin.
    seed: int | None = None


class TxnHandle:
    """One in-flight (or finished) served transaction."""

    __slots__ = (
        "name",
        "request_id",
        "results",
        "state",
        "started",
        "outcome",
        "error",
    )

    def __init__(self, name: str, request_id: Any) -> None:
        self.name = name
        self.request_id = request_id
        self.results: list = []
        self.state = None
        self.started = perf_counter()
        self.outcome: str | None = None  # committed | failed | cancelled
        self.error: str | None = None

    @property
    def restarts(self) -> int:
        return self.state.restart_count if self.state is not None else 0


#: ``(handle, outcome, detail)`` invoked exactly once per admitted txn.
DoneCallback = Callable[[TxnHandle, str, "str | None"], None]


class SessionMultiplexer:
    """Admission control + accounting around the live scheduler."""

    def __init__(self, db, config: ServerConfig | None = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.scheduler = MultiUserScheduler(
            db,
            seed=self.config.seed,
            max_restarts=self.config.max_restarts,
        )
        # Connection counters are owned here (one metrics provider for the
        # whole serving layer) and maintained by the transport.
        self.connections_accepted = 0
        self.connections_open = 0
        self.connections_rejected = 0
        self.connections_closed = 0
        self.txns_submitted = 0
        self.txns_committed = 0
        self.txns_failed = 0
        self.txns_rejected = 0
        self.txns_cancelled = 0
        obs = getattr(db, "obs", None)
        if obs is not None:
            obs.timers.setdefault("request", LatencyTimer())
            obs.register("server", self._metrics)

    # -- metrics ------------------------------------------------------------

    def _metrics(self) -> dict:
        return {
            "connections_accepted": self.connections_accepted,
            "connections_open": self.connections_open,
            "connections_rejected": self.connections_rejected,
            "connections_closed": self.connections_closed,
            "txns_submitted": self.txns_submitted,
            "txns_committed": self.txns_committed,
            "txns_failed": self.txns_failed,
            "txns_rejected": self.txns_rejected,
            "txns_cancelled": self.txns_cancelled,
            "txns_in_flight": self.scheduler.live,
            "restarts": self.scheduler.total_restarts,
        }

    # -- submission ---------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return self.scheduler.live

    def submit(
        self,
        name: str,
        ops: Sequence[Sequence],
        on_done: DoneCallback,
        request_id: Any = None,
    ) -> TxnHandle | None:
        """Validate, admit, and start one transaction.

        Returns ``None`` when admission control rejects it (the caller
        answers ``status="rejected"``); raises
        :class:`~repro.server.protocol.ProtocolError` for malformed ops.
        The ``on_done`` callback fires exactly once from the scheduler
        when the transaction commits, fails, or is cancelled.
        """
        validate_ops(ops)
        if self.scheduler.live >= self.config.max_inflight:
            self.txns_rejected += 1
            return None
        handle = TxnHandle(name, request_id)

        def done(state, outcome: str, detail: str | None) -> None:
            handle.outcome = outcome
            handle.error = detail
            if outcome == "committed":
                self.txns_committed += 1
            elif outcome == "failed":
                self.txns_failed += 1
            else:
                self.txns_cancelled += 1
            obs = getattr(self.db, "obs", None)
            if obs is not None and outcome != "cancelled":
                obs.timers["request"].record(perf_counter() - handle.started)
            on_done(handle, outcome, detail)

        handle.state = self.scheduler.admit(
            name,
            script_from_ops(ops, handle.results),
            track_marks=True,
            on_done=done,
        )
        self.txns_submitted += 1
        return handle

    def cancel(self, handle: TxnHandle, reason: str = "disconnected") -> bool:
        """Tear down an in-flight transaction (client went away)."""
        if handle.state is None or handle.state.done:
            return False
        return self.scheduler.cancel(handle.state, reason)

    def step_batch(self, budget: int) -> int:
        """Run up to ``budget`` scheduler steps; returns how many ran."""
        ran = 0
        while ran < budget and self.scheduler.step() is not None:
            ran += 1
        return ran

    def cancel_all(self, reason: str = "shutdown") -> int:
        """Cancel every live transaction (clean server shutdown)."""
        cancelled = 0
        # Snapshot: cancelling mutates the scheduler's state list.
        for state in list(self.scheduler._states):
            if not state.done and self.scheduler.cancel(state, reason):
                cancelled += 1
        return cancelled
