"""The asyncio front-end: sockets in, scheduler steps out.

One event loop owns everything: an ``asyncio.start_server`` acceptor, a
reader task and a writer task per connection, and a single *driver* task
that is the live serving loop -- it runs up to ``steps_per_tick``
scheduler steps, then yields to the event loop so frames keep flowing in
and responses keep flowing out.  The engine itself stays single-threaded:
every scheduler step (and therefore every database mutation) happens on
the driver task, which is what makes the timestamp-ordering discipline of
the batch scheduler carry over unchanged.

Disconnect semantics: when a connection's reader sees EOF or a reset, the
connection's in-flight transactions are cancelled through the multiplexer
-- rolled back, timestamp marks retracted, ``hub.session`` attribution
restored -- and nothing is written back.  Backpressure: a connection with
``max_pending_per_conn`` unanswered transactions is simply not read from
until responses drain, so one firehose client cannot monopolize admission.

:class:`ServerThread` hosts the loop in a daemon thread for synchronous
callers (tests, benchmarks, ``make server-check``); :func:`serve` is the
``asyncio.run``-able entry point the CLI uses.
"""

from __future__ import annotations

import asyncio
import threading
import traceback
from typing import TYPE_CHECKING

from repro.server.mux import ServerConfig, SessionMultiplexer, TxnHandle
from repro.server.protocol import ProtocolError, encode_frame, read_frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database


class _Connection:
    """Per-connection bookkeeping shared by reader, writer, and driver."""

    __slots__ = ("cid", "writer", "outbox", "handles", "open", "drained")

    def __init__(self, cid: int, writer: asyncio.StreamWriter) -> None:
        self.cid = cid
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.handles: set[TxnHandle] = set()
        self.open = True
        #: set whenever a pending txn completes, waking a backpressured read.
        self.drained = asyncio.Event()


class ReproServer:
    """Serve one database to many concurrent wire-protocol clients."""

    def __init__(self, db: "Database", config: ServerConfig | None = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.mux = SessionMultiplexer(db, self.config)
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._driver: asyncio.Task | None = None
        self._conns: dict[int, _Connection] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._next_cid = 1
        self._wake = asyncio.Event()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._paused = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start accepting, and start the driver; returns (host, port)."""
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._driver = asyncio.ensure_future(self._drive())
        return self.address

    async def stop(self) -> None:
        """Clean shutdown: stop accepting, cancel in-flight work, drain."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Roll back whatever is still in the engine before the loop dies.
        self.mux.cancel_all("shutdown")
        self._wake.set()
        if self._driver is not None:
            await self._driver
        for conn in list(self._conns.values()):
            conn.open = False
            conn.outbox.put_nowait(None)
            conn.writer.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conns.clear()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    def pause(self) -> None:
        """Suspend scheduler stepping (frames still accepted) -- test hook."""
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._wake.set()

    # -- the live serving loop ---------------------------------------------

    async def _drive(self) -> None:
        steps_per_tick = self.config.steps_per_tick
        while not self._stopping:
            if self._paused or self.mux.in_flight == 0:
                self._wake.clear()
                # Re-check under the cleared flag to avoid a lost wakeup.
                if self._stopping or (
                    not self._paused and self.mux.in_flight > 0
                ):
                    continue
                await self._wake.wait()
                continue
            try:
                self.mux.step_batch(steps_per_tick)
            except Exception:
                # The driver task is the whole serving loop: a bug escaping
                # a completion callback must fail at most the transaction
                # that triggered it (already retired before its callback
                # ran), never halt stepping for every client.
                traceback.print_exc()
            # Yield so the loop can accept connections, read frames, and
            # flush responses between step batches.
            await asyncio.sleep(0)

    # -- connection handling ------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_tasks.add(asyncio.current_task())
        try:
            if (
                self._stopping
                or self.mux.connections_open >= self.config.max_connections
            ):
                self.mux.connections_rejected += 1
                writer.write(
                    encode_frame(
                        {"t": "error", "id": None, "error": "server at capacity"}
                    )
                )
                try:
                    await writer.drain()
                finally:
                    writer.close()
                return
            cid = self._next_cid
            self._next_cid += 1
            conn = _Connection(cid, writer)
            self._conns[cid] = conn
            self.mux.connections_accepted += 1
            self.mux.connections_open += 1
            sender = asyncio.ensure_future(self._send_loop(conn))
            try:
                await self._read_loop(conn, reader)
            finally:
                await self._teardown(conn, sender)
        except asyncio.CancelledError:  # server shutdown
            pass
        finally:
            self._conn_tasks.discard(asyncio.current_task())

    async def _read_loop(self, conn: _Connection, reader) -> None:
        cfg = self.config
        while conn.open:
            try:
                message = await read_frame(reader, cfg.max_frame_bytes)
            except ProtocolError as exc:
                # Framing is lost; answer once and hang up.
                self._send(conn, {"t": "error", "id": None, "error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # abrupt disconnect
            if message is None:
                return  # clean EOF
            await self._dispatch(conn, message)

    async def _dispatch(self, conn: _Connection, message: dict) -> None:
        kind = message.get("t")
        rid = message.get("id")
        if kind == "ping":
            self._send(conn, {"t": "pong", "id": rid})
            return
        if kind == "metrics":
            self._send(
                conn,
                {"t": "metrics", "id": rid, "metrics": self.db.metrics().as_dict()},
            )
            return
        if kind != "txn":
            self._send(
                conn,
                {"t": "error", "id": rid, "error": f"unknown request type {kind!r}"},
            )
            return
        # Backpressure: hold this connection's read loop while it has a
        # full window of unanswered transactions.
        while conn.open and len(conn.handles) >= self.config.max_pending_per_conn:
            conn.drained.clear()
            await conn.drained.wait()
        if not conn.open:
            return
        try:
            handle = self.mux.submit(
                name=f"c{conn.cid}.t{rid}",
                ops=message.get("ops"),
                on_done=lambda handle, outcome, detail, conn=conn: (
                    self._txn_done(conn, handle, outcome, detail)
                ),
                request_id=rid,
            )
        except ProtocolError as exc:
            self._send(conn, {"t": "error", "id": rid, "error": str(exc)})
            return
        if handle is None:
            self._send(
                conn,
                {
                    "t": "result",
                    "id": rid,
                    "status": "rejected",
                    "results": [],
                    "error": "admission control: too many transactions in flight",
                    "restarts": 0,
                },
            )
            return
        conn.handles.add(handle)
        self._wake.set()

    def _txn_done(
        self, conn: _Connection, handle: TxnHandle, outcome: str, detail: str | None
    ) -> None:
        """Completion callback; runs synchronously inside the driver task."""
        conn.handles.discard(handle)
        conn.drained.set()
        if outcome == "cancelled" or not conn.open:
            return
        self._send(
            conn,
            {
                "t": "result",
                "id": handle.request_id,
                "status": outcome,
                "results": handle.results if outcome == "committed" else [],
                "error": detail,
                "restarts": handle.restarts,
            },
        )

    def _send(self, conn: _Connection, payload: dict) -> None:
        if not conn.open:
            return
        try:
            frame = encode_frame(payload, self.config.max_frame_bytes)
        except ProtocolError as exc:
            # Responses are not bounded by the request cap: a small txn of
            # get_attr ops over a large stored value can build a result
            # frame over the limit.  This runs synchronously inside the
            # driver's step loop, so degrade to an in-band error frame
            # instead of letting the exception kill serving for everyone.
            # The fallback gets headroom over the configured cap because
            # the echoed request id may itself be nearly request-sized.
            frame = encode_frame(
                {
                    "t": "error",
                    "id": payload.get("id"),
                    "error": f"response dropped: {exc}",
                },
                self.config.max_frame_bytes + 4096,
            )
        conn.outbox.put_nowait(frame)

    async def _send_loop(self, conn: _Connection) -> None:
        try:
            while True:
                frame = await conn.outbox.get()
                if frame is None:
                    return
                conn.writer.write(frame)
                await conn.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    async def _teardown(self, conn: _Connection, sender: asyncio.Task) -> None:
        """Disconnect path: cancel in-flight work, release, close."""
        conn.open = False
        try:
            # A dropped connection mid-transaction rolls back and releases
            # its timestamp marks; nothing is written back for cancelled
            # work.
            for handle in list(conn.handles):
                self.mux.cancel(handle, "disconnected")
            conn.handles.clear()
            conn.drained.set()
            conn.outbox.put_nowait(None)
            try:
                await asyncio.wait_for(sender, timeout=self.config.drain_timeout)
            except asyncio.TimeoutError:
                # The sender is wedged in drain() against a stalled peer:
                # stop flushing; the finally below still reclaims the
                # connection's capacity budget.
                sender.cancel()
                await asyncio.gather(sender, return_exceptions=True)
        finally:
            # Unconditional: a teardown that dies part-way must never leak
            # the connection-capacity budget or leave the socket open.
            self._conns.pop(conn.cid, None)
            self.mux.connections_open -= 1
            self.mux.connections_closed += 1
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def serve(db: "Database", config: ServerConfig | None = None) -> ReproServer:
    """Start a server and run until cancelled (the ``__main__`` entry)."""
    server = ReproServer(db, config)
    host, port = await server.start()
    print(f"repro.server listening on {host}:{port}", flush=True)
    try:
        await server.wait_stopped()
    except asyncio.CancelledError:
        await server.stop()
        raise
    return server


class ServerThread:
    """Host a :class:`ReproServer` event loop in a daemon thread.

    Synchronous callers (tests, benchmarks, the smoke check) start it,
    read ``address``, point clients at it, and ``stop()`` for a clean,
    asserted shutdown.  The database must only be touched through the
    server while the thread runs -- the engine is single-threaded.
    """

    def __init__(self, db: "Database", config: ServerConfig | None = None) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.server: ReproServer | None = None
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = ReproServer(self.db, self.config)
        try:
            self.address = loop.run_until_complete(self.server.start())
        except BaseException as exc:  # bind failure etc.
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_until_complete(self.server.wait_stopped())
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown and assert it completed cleanly."""
        if self._loop is None or self.server is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        future.result(timeout=timeout)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not shut down cleanly")
        if self.server.mux.in_flight:
            raise RuntimeError(
                f"{self.server.mux.in_flight} transactions leaked past shutdown"
            )

    def pause(self) -> None:
        self._loop.call_soon_threadsafe(self.server.pause)

    def resume(self) -> None:
        self._loop.call_soon_threadsafe(self.server.resume)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
