"""``python -m repro.server`` -- run a server, or the self-contained smoke check.

Plain mode binds a server over a fresh sum-node database and serves until
interrupted.  ``--smoke`` (what ``make server-check`` runs) starts a
:class:`~repro.server.server.ServerThread`, drives a burst of concurrent
client transactions -- including a deliberately failing one and an abrupt
mid-transaction disconnect -- asserts exact accounting, shuts down
cleanly, and exits non-zero on any discrepancy.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading

from repro.core.database import Database
from repro.server.mux import ServerConfig
from repro.server.server import ServerThread, serve
from repro.workloads import sum_node_schema


def _smoke(config: ServerConfig) -> int:
    import socket

    from repro.client import ReproClient, TxnBuilder
    from repro.server.protocol import encode_frame

    db = Database(sum_node_schema(), pool_capacity=256)
    clients = 8
    txns_per_client = 4
    committed: list[int] = []
    failed: list[int] = []
    errors: list[str] = []

    with ServerThread(db, config) as thread:
        host, port = thread.address

        def worker(worker_id: int) -> None:
            try:
                with ReproClient(host, port) as client:
                    client.ping()
                    for t in range(txns_per_client):
                        txn = TxnBuilder()
                        a = txn.create("node", weight=worker_id)
                        b = txn.create("node", weight=t)
                        txn.connect(a, "outputs", b, "inputs")
                        txn.get_attr(b, "total")
                        result = client.run(txn)
                        if result.committed:
                            committed.append(worker_id)
                        else:
                            failed.append(worker_id)
            except Exception as exc:  # noqa: BLE001 - report, don't hang
                errors.append(f"worker {worker_id}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        # One transaction that must fail (unknown class aborts it) ...
        with ReproClient(host, port) as client:
            bad = client.run([["create", "no_such_class", {}]])
            if bad.status != "failed":
                errors.append(f"expected failed status, got {bad.status!r}")

        # ... and one abrupt disconnect mid-transaction: the server must
        # roll it back without disturbing anything else.
        raw = socket.create_connection((host, port))
        raw.sendall(
            encode_frame(
                {"t": "txn", "id": 1, "ops": [["create", "node", {"weight": 1}]] * 64}
            )
        )
        raw.close()

        with ReproClient(host, port) as client:
            metrics = client.metrics()
        server = metrics["server"]

    expected = clients * txns_per_client
    if len(committed) != expected:
        errors.append(f"committed {len(committed)} of {expected} transactions")
    if failed:
        errors.append(f"unexpected failures from workers: {failed}")
    if server["txns_committed"] != expected:
        errors.append(
            f"server counted {server['txns_committed']} commits, expected {expected}"
        )
    if errors:
        for line in errors:
            print(f"smoke: FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"smoke: ok ({expected} transactions committed over {clients} connections, "
        f"clean shutdown)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a Cactis database over the wire protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--max-inflight", type=int, default=256, help="admission control limit"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="seeded scheduling order"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the self-contained smoke check and exit",
    )
    args = parser.parse_args(argv)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        seed=args.seed,
    )
    if args.smoke:
        return _smoke(config)
    db = Database(sum_node_schema(), pool_capacity=256)
    try:
        asyncio.run(serve(db, config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
