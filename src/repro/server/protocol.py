"""Wire protocol: length-prefixed JSON frames and the message registries.

A frame is a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON encoding one object.  The same framing runs in both
directions; requests and responses are discriminated by their ``"t"``
field.  The registries below are the single source of truth for the
protocol surface -- ``docs/SERVER.md`` is cross-checked against them by
``tests/server/test_docs.py``, and the server validates incoming frames
against them before admission.

Frames are deliberately small and schema-free (no per-connection state
beyond the request id), so a client in any language needs only a socket,
``struct.pack(">I", n)``, and a JSON encoder.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import CactisError

_HEADER = struct.Struct(">I")

#: refuse frames larger than this (default; ``ServerConfig`` can lower it).
MAX_FRAME_BYTES = 1 << 20

#: request type -> fields the frame must carry (beyond ``"t"``).
REQUEST_TYPES: dict[str, tuple[str, ...]] = {
    "txn": ("id", "ops"),
    "ping": ("id",),
    "metrics": ("id",),
}

#: response type -> fields the frame carries (beyond ``"t"``).
RESPONSE_TYPES: dict[str, tuple[str, ...]] = {
    "result": ("id", "status", "results", "error", "restarts"),
    "pong": ("id",),
    "metrics": ("id", "metrics"),
    "error": ("id", "error"),
}

#: terminal statuses a ``result`` frame can carry.
TXN_STATUSES = ("committed", "failed", "rejected")

#: operation name -> positional-argument arity (after the name itself).
OPS: dict[str, int] = {
    "create": 2,  # class_name, {intrinsics}
    "delete": 1,  # iid
    "connect": 4,  # iid_a, port_a, iid_b, port_b
    "disconnect": 4,  # iid_a, port_a, iid_b, port_b
    "set_attr": 3,  # iid, attr, value
    "get_attr": 2,  # iid, attr
}


class ProtocolError(CactisError):
    """A frame violated the wire protocol (size, encoding, or shape)."""


def _default(value: Any) -> str:
    # Transaction results are engine values; anything exotic (a paper
    # experiment storing rich atoms) degrades to its repr rather than
    # killing the connection.
    return repr(value)


def encode_frame(payload: dict, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message to its on-wire form (header + JSON body)."""
    body = json.dumps(payload, separators=(",", ":"), default=_default).encode()
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must encode a JSON object")
    return message


def _check_length(length: int, max_frame_bytes: int) -> None:
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )


async def read_frame(reader, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from an asyncio stream reader.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` for oversized or undecodable frames and lets
    connection errors (including EOF mid-frame) propagate.
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed inside a frame header")
        header += more
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_frame_bytes)
    body = await reader.readexactly(length)
    return _decode_body(body)


def recv_frame(sock, max_frame_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Blocking counterpart of :func:`read_frame` for plain sockets."""

    def read_exactly(n: int, what: str) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ProtocolError(f"connection closed inside a frame {what}")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    first = sock.recv(_HEADER.size)
    if not first:
        return None  # clean EOF at a frame boundary
    header = first
    if len(header) < _HEADER.size:
        header += read_exactly(_HEADER.size - len(header), "header")
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_frame_bytes)
    return _decode_body(read_exactly(length, "body"))
