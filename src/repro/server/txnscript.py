"""Turn a wire-submitted operation list into a scheduler script.

A transaction arrives as ``"ops": [[name, arg, ...], ...]`` (see
:data:`repro.server.protocol.OPS` for the registry).  The script produced
here executes one operation per scheduler step, yielding between
operations -- exactly the shape the batch test harnesses hand to
:class:`~repro.txn.manager.MultiUserScheduler` -- so a served transaction
interleaves, restarts, and commits under the same discipline as a native
script.  The parity property test drives both paths through this one
translation.

Arguments may reference the result of an earlier operation in the same
transaction with a dict that is *exactly* ``{"$": k}`` (the value produced
by op ``k``): ``create`` produces the new instance id, ``get_attr``
produces the value read, all other ops produce ``None``.  A dict with any
other shape is a literal value.  ``create``'s intrinsics object is never
itself a reference -- an intrinsics attribute may legitimately be named
``"$"`` -- but each of its *values* may be one.  On a CC restart the
generator is rebuilt and re-runs from the top; the results list is cleared
so references always resolve within the current attempt.

Any error that is not part of the scheduler's restart/abort vocabulary --
an unknown class, a missing instance, a type error in a value -- is
wrapped in :class:`~repro.errors.TransactionAborted`: client input must
fail the one transaction, never crash the serving loop.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import (
    ConcurrencyAbort,
    ConstraintViolation,
    TransactionAborted,
)
from repro.server.protocol import OPS, ProtocolError
from repro.txn.manager import Script, Session


def validate_ops(ops: Any) -> list[list]:
    """Check a submitted op list against the registry before admission.

    Raises :class:`ProtocolError` for anything malformed so the server can
    answer with a protocol ``error`` frame instead of admitting a script
    that would explode mid-schedule.
    """
    if not isinstance(ops, list) or not ops:
        raise ProtocolError("ops must be a non-empty list")
    for index, op in enumerate(ops):
        if not isinstance(op, list) or not op:
            raise ProtocolError(f"op {index} must be a non-empty list")
        name, *args = op
        arity = OPS.get(name)
        if arity is None:
            raise ProtocolError(f"op {index}: unknown operation {name!r}")
        if len(args) != arity:
            raise ProtocolError(
                f"op {index}: {name} takes {arity} arguments, got {len(args)}"
            )
        if name == "create":
            if not isinstance(args[1], dict):
                raise ProtocolError(
                    f"op {index}: create intrinsics must be an object"
                )
            # The intrinsics object is never itself a reference (its keys
            # are attribute names, "$" included), but its values may be.
            referenceable = [args[0], *args[1].values()]
        else:
            referenceable = args
        for arg in referenceable:
            if _is_ref(arg):
                ref = arg["$"]
                if not isinstance(ref, int) or not 0 <= ref < index:
                    raise ProtocolError(
                        f"op {index}: result reference {arg!r} must point at "
                        f"an earlier op"
                    )
    return ops


def _is_ref(arg: Any) -> bool:
    """Only a dict that is exactly ``{"$": k}`` is a result reference;
    anything else -- including dicts that merely contain a ``"$"`` key --
    is a literal value."""
    return isinstance(arg, dict) and len(arg) == 1 and "$" in arg


def _resolve(arg: Any, results: list) -> Any:
    if _is_ref(arg):
        return results[arg["$"]]
    return arg


def _apply(session: Session, name: str, args: list) -> Any:
    if name == "create":
        return session.create(args[0], **args[1])
    if name == "delete":
        return session.delete(args[0])
    if name == "connect":
        return session.connect(args[0], args[1], args[2], args[3])
    if name == "disconnect":
        return session.disconnect(args[0], args[1], args[2], args[3])
    if name == "set_attr":
        return session.set_attr(args[0], args[1], args[2])
    if name == "get_attr":
        return session.get_attr(args[0], args[1])
    raise ProtocolError(f"unknown operation {name!r}")  # pragma: no cover


def script_from_ops(ops: Sequence[Sequence], results: list) -> Script:
    """Build the scheduler script executing ``ops`` one step at a time.

    ``results`` is the caller's list: after a successful run it holds one
    entry per op (the transaction's response payload).  It is cleared at
    the start of every attempt so restarts never leak stale entries into
    ``{"$": k}`` references.
    """

    def script(session: Session):
        del results[:]
        for index, op in enumerate(ops):
            if index:
                yield
            name = op[0]
            if name == "create":
                # Intrinsics resolve per-value (the object itself is a
                # literal even when an attribute is named "$").
                args = [
                    _resolve(op[1], results),
                    {key: _resolve(value, results) for key, value in op[2].items()},
                ]
            else:
                args = [_resolve(arg, results) for arg in op[1:]]
            try:
                results.append(_apply(session, name, args))
            except (ConcurrencyAbort, ConstraintViolation, TransactionAborted):
                raise
            except Exception as exc:
                raise TransactionAborted(
                    f"op {index} ({name}): {exc}"
                ) from exc

    return script


#: signature shared with tests: build (name, script, results) triples for a
#: whole workload of op lists, for feeding either run() or a live server.
def scripts_for_workload(
    workload: Sequence[tuple[str, Sequence[Sequence]]],
) -> list[tuple[str, Script, list]]:
    triples = []
    for name, ops in workload:
        results: list = []
        triples.append((name, script_from_ops(ops, results), results))
    return triples


ScriptFactory = Callable[[Sequence[Sequence], list], Script]
