"""Distributed Cactis (the Section 5 direction).

"We are in the process of constructing a distributed version of Cactis ...
It will be necessary to allow different users at different machines to
configure their own environments privately and share information."

This module implements that direction over the existing engine as an
N-site sharded federation.  Each *site* is an ordinary
:class:`~repro.core.database.Database` (its own schema, storage,
transactions, users).  Sites share information through **cross-site
relationships**: when a consumer on site B depends on a value transmitted
by a producer on site A, the federation

1. installs (once per schema) a *mirror* object class on B for the
   relationship type -- one intrinsic attribute per flow, plus transmit
   rules republishing them locally;
2. creates a mirror instance standing in for the remote producer and
   connects B's consumer to it, so B's dependency graph, incremental
   evaluation, laziness, and undo all work unchanged; and
3. on :meth:`Federation.sync`, diffs each linked producer's transmitted
   values against its mirrors and ships only the *changes*, grouped into
   one **batch per channel** (ordered producer->consumer site pair) with a
   per-channel monotonic sequence number.

Delivery semantics:

* **Atomic** -- a batch is applied on the consumer inside one batched
  transaction; a constraint violation mid-batch rolls the whole delivery
  back (the batch stays queued and is retried on the next pass), so a
  consumer site never observes a half-applied delivery.
* **Durable, at-least-once** -- on sites opened with ``Database.open``,
  shipping journals a ``fed_send`` record before delivery is attempted and
  a ``fed_ack`` after the consumer committed; recovery replays the outbox,
  so a crash between the two re-delivers rather than loses the batch.
* **Deduplicated** -- the consumer journals a ``fed_recv`` high-water mark
  inside no later than its delivery commit; a re-delivered batch whose
  sequence number is at or below the mark is acknowledged and dropped, so
  at-least-once shipping still applies each batch exactly once.

The result is the paper's sketch made concrete: private local databases,
explicit synchronisation points, and message traffic proportional to what
actually changed (measured by :class:`SyncReport`).  The placement layer
(:mod:`repro.distributed.placement`) migrates instances between sites so
hot cross-site neighborhoods co-locate; :meth:`Federation.migrate_instance`
is the primitive it builds on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.rules import Local, Rule, TransmitTarget
from repro.core.schema import AttributeDef, End, ObjectClass, PortDef, Schema
from repro.errors import CactisError, TransactionAborted
from repro.obs.events import FedBatchApplied, FedBatchShipped, FedMigration
from repro.obs.registry import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database


class FederationError(CactisError):
    """Cross-site linking misuse (unknown sites, mismatched types...)."""


#: class-name prefix marking mirror classes (placement skips them).
MIRROR_PREFIX = "__mirror__"


def mirror_class_name(rel_type: str, end: End) -> str:
    """Name of the mirror class standing in for remote producers on ``end``."""
    return f"{MIRROR_PREFIX}{rel_type}__{end.value}"


def mirror_attr_name(flow_value: str) -> str:
    """Mirror intrinsic attribute caching one remote flow value."""
    return f"v_{flow_value}"


def channel_key(producer_site: str, consumer_site: str) -> str:
    """The durable name of one ordered delivery channel between two sites."""
    return f"{producer_site}>{consumer_site}"


def _mirror_class(rel_name: str, rel, producer_end: End) -> ObjectClass:
    """Build the mirror class for remote producers of one relationship end."""
    attributes = [
        AttributeDef("origin_site", "string"),
        AttributeDef("origin_instance", "integer"),
        AttributeDef("origin_port", "string"),
    ]
    rules = []
    for flow in rel.values_sent_by(producer_end):
        attributes.append(AttributeDef(mirror_attr_name(flow.value), flow.atom))
        rules.append(
            Rule(
                TransmitTarget("remote", flow.value),
                {"v": Local(mirror_attr_name(flow.value))},
                lambda v: v,
                name=f"mirror:{rel_name}:{flow.value}",
            )
        )
    return ObjectClass(
        mirror_class_name(rel_name, producer_end),
        attributes=attributes,
        ports=[PortDef("remote", rel_name, producer_end, multi=True)],
        rules=rules,
    )


def federated_schema(schema: Schema) -> Schema:
    """Pre-install every mirror class a federation could need into ``schema``.

    Linking adds mirror classes on demand through ``extend_schema``, which
    is fine for in-memory sites -- but a *durable* site recovers by
    replaying its WAL against the caller-provided schema, and a replayed
    mirror-instance create would not know its class.  Open durable consumer
    sites with ``Database.open(path, federated_schema(build_schema()))`` so
    the mirror classes exist before any record replays.

    Returns the schema, frozen, for call-site convenience.
    """
    if schema.frozen:
        schema.unfreeze()
    for rel_name, rel in schema.relationship_types.items():
        for end in (End.PLUG, End.SOCKET):
            if not rel.values_sent_by(end):
                continue
            if mirror_class_name(rel_name, end) in schema.classes:
                continue
            schema.add_class(_mirror_class(rel_name, rel, end))
    return schema.freeze()


@dataclass(frozen=True)
class CrossLink:
    """One cross-site dependency edge."""

    consumer_site: str
    consumer_iid: int
    consumer_port: str
    producer_site: str
    producer_iid: int
    producer_port: str
    mirror_iid: int


@dataclass
class FederationStats:
    """Federation-lifetime accounting behind :meth:`Federation.metrics`."""

    batches_shipped: int = 0
    batches_applied: int = 0
    batches_deduped: int = 0
    batches_failed: int = 0
    dangling_links_dropped: int = 0
    mirrors_collected: int = 0
    migrations: int = 0


@dataclass
class SyncReport:
    """Outcome of one federation synchronisation pass."""

    #: flow values examined against their mirrors during collection.
    values_checked: int = 0
    #: changed values durably applied on consumer sites this pass.
    messages_sent: int = 0
    #: change batches that entered a channel outbox this pass.
    batches_shipped: int = 0
    #: batches applied on their consumer site this pass.
    batches_applied: int = 0
    #: re-delivered batches dropped by the consumer's applied high-water mark.
    batches_deduped: int = 0
    #: deliveries rolled back (constraint violation); the batch stays queued.
    batches_failed: int = 0
    #: links whose producer no longer exists, recorded and dropped this pass.
    dangling_links: list[CrossLink] = field(default_factory=list)
    #: ``(channel, seq, reason)`` for each failed delivery this pass.
    failed_deliveries: list[tuple[str, int, str]] = field(default_factory=list)
    #: mirror key -> values applied into that mirror this pass.
    per_link: dict = field(default_factory=dict)

    @property
    def quiescent(self) -> bool:
        return (
            self.batches_shipped == 0
            and self.batches_applied == 0
            and self.batches_deduped == 0
            and self.batches_failed == 0
        )


class Federation:
    """A set of named sites with batched, sequenced cross-site delivery."""

    def __init__(self) -> None:
        self.sites: dict[str, "Database"] = {}
        self.links: list[CrossLink] = []
        #: (consumer site, producer site, producer iid, producer port) ->
        #: mirror instance id, so several consumers share one mirror.
        self._mirrors: dict[tuple[str, str, int, str], int] = {}
        #: channel -> {seq: [(mirror_iid, attr, value), ...]} awaiting ack.
        self._outbox: dict[str, dict[int, list]] = {}
        #: channel -> next batch sequence number to assign.
        self._next_seq: dict[str, int] = {}
        #: channel -> highest batch sequence applied on the consumer.
        self._applied: dict[str, int] = {}
        #: observed values-applied per cross-link (placement's edge weights).
        self.link_traffic: Counter[CrossLink] = Counter()
        self.stats = FederationStats()
        self.total_messages = 0
        self.sync_passes = 0

    # -- membership ------------------------------------------------------------

    def add_site(self, name: str, db: "Database") -> None:
        """Register a site; adopts any federation state the database carries.

        A recovered durable site re-derives its links and mirror registry
        from the mirror instances it holds, and merges the outbox /
        applied-sequence state its persistence manager replayed from the
        WAL -- so a federation rebuilt after a crash resumes in-flight
        deliveries instead of losing them.
        """
        if name in self.sites:
            raise FederationError(f"site {name!r} is already registered")
        if ">" in name:
            raise FederationError("site names may not contain '>'")
        self.sites[name] = db
        db.add_delete_listener(
            lambda iid, site=name: self._forget_instance(site, iid)
        )
        self._adopt_mirrors(name, db)
        self._merge_fed_state(name, db)

    def site(self, name: str) -> "Database":
        try:
            return self.sites[name]
        except KeyError:
            raise FederationError(f"unknown site {name!r}") from None

    def _adopt_mirrors(self, name: str, db: "Database") -> None:
        """Rebuild link/mirror bookkeeping from a site's mirror instances."""
        for iid in db.instance_ids():
            instance = db.instance(iid)
            if not instance.class_name.startswith(MIRROR_PREFIX):
                continue
            attrs = instance.attrs
            key = (
                name,
                attrs["origin_site"],
                attrs["origin_instance"],
                attrs["origin_port"],
            )
            self._mirrors.setdefault(key, iid)
            for conn in instance.connections_on("remote"):
                link = CrossLink(
                    name, conn.peer, conn.peer_port,
                    attrs["origin_site"], attrs["origin_instance"],
                    attrs["origin_port"], iid,
                )
                if link not in self.links:
                    self.links.append(link)

    def _merge_fed_state(self, name: str, db: "Database") -> None:
        """Fold a durable site's recovered delivery state into this run."""
        manager = getattr(db, "persistence", None)
        if manager is None or manager.fed.empty:
            return
        fed = manager.fed
        for channel, pending in fed.outbox.items():
            if channel.split(">", 1)[0] != name:
                continue
            queue = self._outbox.setdefault(channel, {})
            for seq, changes in pending.items():
                queue.setdefault(seq, [tuple(change) for change in changes])
        for channel, nxt in fed.next_seq.items():
            if channel.split(">", 1)[0] == name:
                self._next_seq[channel] = max(
                    self._next_seq.get(channel, 1), nxt
                )
        for channel, seq in fed.applied.items():
            if channel.split(">", 1)[1] == name:
                self._applied[channel] = max(self._applied.get(channel, 0), seq)

    def _forget_instance(self, site: str, iid: int) -> None:
        """Delete-listener hook: drop bookkeeping naming a gone instance.

        Consumer- and mirror-side references are pruned here; a *producer*
        deletion is deliberately left alone so the next :meth:`sync` can
        record the now-dangling link in its report before dropping it.
        """
        dead = [
            link
            for link in self.links
            if link.consumer_site == site
            and (link.consumer_iid == iid or link.mirror_iid == iid)
        ]
        for link in dead:
            self.links.remove(link)
            self.link_traffic.pop(link, None)
        for key, mirror_iid in list(self._mirrors.items()):
            if key[0] == site and mirror_iid == iid:
                del self._mirrors[key]

    # -- linking ------------------------------------------------------------

    def link(
        self,
        consumer_site: str,
        consumer_iid: int,
        consumer_port: str,
        producer_site: str,
        producer_iid: int,
        producer_port: str,
    ) -> CrossLink:
        """Make a consumer on one site depend on a producer on another."""
        if consumer_site == producer_site:
            raise FederationError(
                "both ends are on the same site; use an ordinary connect"
            )
        consumer_db = self.site(consumer_site)
        producer_db = self.site(producer_site)
        consumer_def = consumer_db._port_def(
            consumer_db.instance(consumer_iid), consumer_port
        )
        producer_def = producer_db._port_def(
            producer_db.instance(producer_iid), producer_port
        )
        if consumer_def.rel_type != producer_def.rel_type:
            raise FederationError(
                f"relationship types differ: {consumer_def.rel_type!r} vs "
                f"{producer_def.rel_type!r}"
            )
        if consumer_def.end is producer_def.end:
            raise FederationError(
                "both ports are on the same end of the relationship type"
            )
        self._check_flows_agree(consumer_db, producer_db, consumer_def.rel_type)
        mirror_iid = self._mirror_for(
            consumer_site, producer_site, producer_iid, producer_port,
            consumer_db, producer_def.rel_type, producer_def.end,
        )
        consumer_db.connect(consumer_iid, consumer_port, mirror_iid, "remote")
        link = CrossLink(
            consumer_site, consumer_iid, consumer_port,
            producer_site, producer_iid, producer_port, mirror_iid,
        )
        self.links.append(link)
        return link

    def unlink(self, link: CrossLink) -> None:
        """Remove a cross-site dependency (the mirror stays, idle).

        An idle mirror ships nothing -- :meth:`sync` only collects for
        mirrors with at least one live link -- and :meth:`gc_mirrors`
        reclaims it once no consumer is connected.
        """
        if link not in self.links:
            raise FederationError("unknown cross-link")
        consumer_db = self.site(link.consumer_site)
        consumer_db.disconnect(
            link.consumer_iid, link.consumer_port, link.mirror_iid, "remote"
        )
        if link in self.links:  # the delete listener may have pruned it
            self.links.remove(link)
        self.link_traffic.pop(link, None)

    def _check_flows_agree(self, db_a, db_b, rel_type: str) -> None:
        flows_a = {
            (f.value, f.sent_by)
            for f in db_a.schema.relationship_type(rel_type).flows.values()
        }
        flows_b = {
            (f.value, f.sent_by)
            for f in db_b.schema.relationship_type(rel_type).flows.values()
        }
        if flows_a != flows_b:
            raise FederationError(
                f"sites disagree about relationship type {rel_type!r}"
            )

    def _mirror_for(
        self,
        consumer_site: str,
        producer_site: str,
        producer_iid: int,
        producer_port: str,
        consumer_db: "Database",
        rel_type: str,
        producer_end: End,
    ) -> int:
        key = (consumer_site, producer_site, producer_iid, producer_port)
        existing = self._mirrors.get(key)
        if existing is not None:
            return existing
        self._ensure_mirror_class(consumer_db, rel_type, producer_end)
        mirror_iid = consumer_db.create(
            mirror_class_name(rel_type, producer_end),
            origin_site=producer_site,
            origin_instance=producer_iid,
            origin_port=producer_port,
        )
        self._mirrors[key] = mirror_iid
        return mirror_iid

    def _ensure_mirror_class(
        self, db: "Database", rel_type: str, producer_end: End
    ) -> None:
        name = mirror_class_name(rel_type, producer_end)
        if name in db.schema.classes:
            return
        rel = db.schema.relationship_type(rel_type)
        with db.extend_schema() as schema:
            schema.add_class(_mirror_class(rel_type, rel, producer_end))

    # -- synchronisation ------------------------------------------------------

    def sync(self) -> SyncReport:
        """One synchronisation pass: collect change batches, then deliver.

        Collection diffs each live-linked mirror against its producer's
        current transmitted values and ships the changed ones as one batch
        per channel (journalled ``fed_send`` on durable producers).
        Delivery applies each pending batch atomically on its consumer in
        sequence order.  A write into a mirror is an ordinary intrinsic
        update on the consumer site, so the local incremental engine marks
        exactly the affected region.
        """
        report = SyncReport()
        self.sync_passes += 1
        self._collect(report)
        self._deliver(report)
        self.total_messages += report.messages_sent
        return report

    def _collect(self, report: SyncReport) -> None:
        # A producer deleted on its own site leaves its links dangling;
        # record them once and drop them instead of letting the lookup
        # raise out of the pass (consumers keep the last synced value).
        for link in list(self.links):
            producer_db = self.sites.get(link.producer_site)
            if producer_db is not None and not producer_db.exists(
                link.producer_iid
            ):
                report.dangling_links.append(link)
                self.links.remove(link)
                self.link_traffic.pop(link, None)
        self.stats.dangling_links_dropped += len(report.dangling_links)

        live: dict[tuple[str, str, int, str], list[CrossLink]] = {}
        for link in self.links:
            key = (
                link.consumer_site, link.producer_site,
                link.producer_iid, link.producer_port,
            )
            live.setdefault(key, []).append(link)

        # Channels with unacked batches skip collection this pass: their
        # mirrors still show pre-delivery values, so re-diffing would ship
        # the same changes twice.  Delivery below drains them first.
        blocked = {ch for ch, pending in self._outbox.items() if pending}
        batches: dict[str, list] = {}
        for key, mirror_iid in self._mirrors.items():
            links_here = live.get(key)
            if not links_here:
                continue  # idle mirror: every link was removed
            consumer_site, producer_site, producer_iid, producer_port = key
            channel = channel_key(producer_site, consumer_site)
            if channel in blocked:
                continue
            consumer_db = self.site(consumer_site)
            producer_db = self.site(producer_site)
            if not consumer_db.exists(mirror_iid):
                continue  # mirror deleted locally; skip
            mirror = consumer_db.instance(mirror_iid)
            port_def = consumer_db._port_def(mirror, "remote")
            rel = consumer_db.schema.relationship_type(port_def.rel_type)
            for flow in rel.values_sent_by(port_def.end):
                report.values_checked += 1
                value = producer_db.get_transmitted(
                    producer_iid, producer_port, flow.value
                )
                attr = mirror_attr_name(flow.value)
                if consumer_db.get_attr(mirror_iid, attr) != value:
                    batches.setdefault(channel, []).append(
                        (mirror_iid, attr, value)
                    )

        for channel, changes in batches.items():
            producer_site = channel.split(">", 1)[0]
            producer_db = self.site(producer_site)
            seq = self._next_seq.get(channel, 1)
            self._next_seq[channel] = seq + 1
            manager = getattr(producer_db, "persistence", None)
            if manager is not None:
                manager.log_fed_send(channel, seq, changes)
            self._outbox.setdefault(channel, {})[seq] = changes
            report.batches_shipped += 1
            self.stats.batches_shipped += 1
            hub = producer_db.obs.hub
            if hub.active:
                hub.emit(
                    FedBatchShipped(
                        channel=channel, seq=seq, values=len(changes)
                    )
                )

    def _deliver(self, report: SyncReport) -> None:
        mirror_key_of = {
            (key[0], mirror_iid): key for key, mirror_iid in self._mirrors.items()
        }
        for channel in sorted(self._outbox):
            producer_site, consumer_site = channel.split(">", 1)
            producer_db = self.site(producer_site)
            consumer_db = self.site(consumer_site)
            for seq in sorted(self._outbox[channel]):
                changes = self._outbox[channel][seq]
                if seq <= self._applied.get(channel, 0):
                    # Redelivery of a batch the consumer durably applied
                    # (crash between apply and ack): acknowledge and drop.
                    self._ack(producer_db, channel, seq)
                    report.batches_deduped += 1
                    self.stats.batches_deduped += 1
                    self._emit_applied(
                        consumer_db, channel, seq, 0, deduped=True
                    )
                    continue
                try:
                    applied = self._apply_batch(
                        consumer_db, channel, seq, changes
                    )
                except TransactionAborted as exc:
                    report.batches_failed += 1
                    self.stats.batches_failed += 1
                    report.failed_deliveries.append((channel, seq, str(exc)))
                    break  # preserve order: later batches wait for this one
                self._applied[channel] = seq
                manager = getattr(consumer_db, "persistence", None)
                if manager is not None:
                    manager.log_fed_recv(channel, seq)
                self._ack(producer_db, channel, seq)
                report.batches_applied += 1
                self.stats.batches_applied += 1
                report.messages_sent += applied
                self._emit_applied(consumer_db, channel, seq, applied)
                for mirror_iid, __, __ in changes:
                    key = mirror_key_of.get((consumer_site, mirror_iid))
                    if key is None:
                        continue
                    report.per_link[key] = report.per_link.get(key, 0) + 1
                    for link in self.links:
                        if (
                            link.consumer_site,
                            link.producer_site,
                            link.producer_iid,
                            link.producer_port,
                        ) == key:
                            self.link_traffic[link] += 1

    def _apply_batch(
        self, consumer_db: "Database", channel: str, seq: int, changes: list
    ) -> int:
        """Apply one batch atomically; returns values written.

        The batched transaction coalesces every mirror write into one
        propagation wave, and a constraint violation at commit rolls the
        whole delivery back (surfacing as ``TransactionAborted``).
        """
        applied = 0
        with consumer_db.transaction(label=f"fed:{channel}:{seq}", batch=True):
            for mirror_iid, attr, value in changes:
                if not consumer_db.exists(mirror_iid):
                    continue  # mirror deleted after shipment
                consumer_db.set_attr(mirror_iid, attr, value)
                applied += 1
        return applied

    def _ack(self, producer_db: "Database", channel: str, seq: int) -> None:
        manager = getattr(producer_db, "persistence", None)
        if manager is not None:
            manager.log_fed_ack(channel, seq)
        pending = self._outbox.get(channel)
        if pending is not None:
            pending.pop(seq, None)
            if not pending:
                del self._outbox[channel]

    def _emit_applied(
        self,
        consumer_db: "Database",
        channel: str,
        seq: int,
        values: int,
        deduped: bool = False,
    ) -> None:
        hub = consumer_db.obs.hub
        if hub.active:
            hub.emit(
                FedBatchApplied(
                    channel=channel, seq=seq, values=values, deduped=deduped
                )
            )

    def sync_until_quiescent(self, max_passes: int = 16) -> int:
        """Repeat sync until no message moves (chained cross-site paths).

        Returns the number of passes executed.  A ring of cross-site
        dependencies that never stabilises raises, mirroring the single-
        site cycle prohibition.
        """
        for passes in range(1, max_passes + 1):
            if self.sync().quiescent:
                return passes
        raise FederationError(
            f"federation did not stabilise in {max_passes} passes; "
            f"is there a cross-site dependency cycle?"
        )

    # -- migration (the placement layer's primitive) ---------------------------

    def migrate_instance(self, from_site: str, iid: int, to_site: str) -> int:
        """Move one instance to another site, rewiring every relationship.

        Cross-links whose far end lives on ``to_site`` collapse into
        ordinary local connections (the payoff placement is after); local
        connections left behind become cross-links.  Mirror values on the
        new site start at flow defaults and repopulate on the next sync.
        The move is bracketed by ``fed_migrate`` journal records on a
        durable source site; the per-site creates, connects, and deletes
        are ordinary logged primitives, so each site recovers
        independently.  Returns the instance's id on the target site.
        """
        if from_site == to_site:
            raise FederationError("source and target site are the same")
        src = self.site(from_site)
        dst = self.site(to_site)
        instance = src.instance(iid)
        if instance.class_name.startswith(MIRROR_PREFIX):
            raise FederationError(
                "mirrors are delivery artifacts; they are not migrated"
            )
        manager = getattr(src, "persistence", None)
        if manager is not None:
            manager.log_fed_migrate("begin", iid, from_site, to_site)
        resolved = src.schema.resolved(instance.class_name)
        intrinsics = {
            a.name: instance.attrs[a.name]
            for a in resolved.attributes.values()
            if a.intrinsic and a.name in instance.attrs
        }
        new_iid = dst.create(instance.class_name, **intrinsics)
        rewired = 0
        for link in [
            l for l in self.links
            if l.producer_site == from_site and l.producer_iid == iid
        ]:
            self.unlink(link)
            if link.consumer_site == to_site:
                dst.connect(
                    link.consumer_iid, link.consumer_port,
                    new_iid, link.producer_port,
                )
            else:
                self.link(
                    link.consumer_site, link.consumer_iid, link.consumer_port,
                    to_site, new_iid, link.producer_port,
                )
            rewired += 1
        for link in [
            l for l in self.links
            if l.consumer_site == from_site and l.consumer_iid == iid
        ]:
            self.unlink(link)
            if link.producer_site == to_site:
                dst.connect(
                    new_iid, link.consumer_port,
                    link.producer_iid, link.producer_port,
                )
            else:
                self.link(
                    to_site, new_iid, link.consumer_port,
                    link.producer_site, link.producer_iid, link.producer_port,
                )
            rewired += 1
        for port, conn in list(src.instance(iid).all_connections()):
            src.disconnect(iid, port, conn.peer, conn.peer_port)
            if src.instance(conn.peer).class_name.startswith(MIRROR_PREFIX):
                continue  # an orphaned mirror edge; gc_mirrors reclaims it
            rewired += self._split_connection(
                from_site, conn.peer, conn.peer_port, to_site, new_iid, port
            )
        src.delete(iid)
        if manager is not None:
            manager.log_fed_migrate("end", iid, from_site, to_site)
        self.stats.migrations += 1
        hub = src.obs.hub
        if hub.active:
            hub.emit(
                FedMigration(
                    iid=iid, from_site=from_site, to_site=to_site,
                    links_rewired=rewired,
                )
            )
        return new_iid

    def _split_connection(
        self,
        site_a: str, iid_a: int, port_a: str,
        site_b: str, iid_b: int, port_b: str,
    ) -> int:
        """Turn a broken local connection into cross-links, one per
        direction that transmits values (or one for pure topology)."""
        db_a = self.site(site_a)
        def_a = db_a._port_def(db_a.instance(iid_a), port_a)
        rel = db_a.schema.relationship_type(def_a.rel_type)
        end_a = def_a.end
        end_b = End.PLUG if end_a is End.SOCKET else End.SOCKET
        created = 0
        if rel.values_sent_by(end_b):  # b produces for a
            self.link(site_a, iid_a, port_a, site_b, iid_b, port_b)
            created += 1
        if rel.values_sent_by(end_a):  # a produces for b
            self.link(site_b, iid_b, port_b, site_a, iid_a, port_a)
            created += 1
        if not created:  # no flows either way: keep the topology one-way
            self.link(site_a, iid_a, port_a, site_b, iid_b, port_b)
            created += 1
        return created

    def gc_mirrors(self) -> int:
        """Delete mirrors with no live link and no connected consumer.

        A mirror whose links were dropped but whose consumers are still
        physically connected is left alone -- those consumers keep the last
        synced value by design (e.g. after a producer deletion).
        """
        live_keys = {
            (
                link.consumer_site, link.producer_site,
                link.producer_iid, link.producer_port,
            )
            for link in self.links
        }
        removed = 0
        for key, mirror_iid in list(self._mirrors.items()):
            if key in live_keys:
                continue
            consumer_db = self.site(key[0])
            if not consumer_db.exists(mirror_iid):
                del self._mirrors[key]
                continue
            if consumer_db.instance(mirror_iid).connections_on("remote"):
                continue
            consumer_db.delete(mirror_iid)  # listener drops the registry entry
            removed += 1
        self.stats.mirrors_collected += removed
        return removed

    # -- observability ---------------------------------------------------------

    def metrics(self) -> MetricsSnapshot:
        """Federation-level counters as a diff-able snapshot.

        Per-site engine/WAL/buffer counters live on each site's own
        ``Database.metrics()``; this section covers only the cross-site
        layer (documented in docs/DISTRIBUTED.md).
        """
        return MetricsSnapshot(
            {
                "federation": {
                    "sites": len(self.sites),
                    "links": len(self.links),
                    "mirrors": len(self._mirrors),
                    "sync_passes": self.sync_passes,
                    "total_messages": self.total_messages,
                    "batches_shipped": self.stats.batches_shipped,
                    "batches_applied": self.stats.batches_applied,
                    "batches_deduped": self.stats.batches_deduped,
                    "batches_failed": self.stats.batches_failed,
                    "dangling_links_dropped": self.stats.dangling_links_dropped,
                    "mirrors_collected": self.stats.mirrors_collected,
                    "migrations": self.stats.migrations,
                    "outbox_pending": sum(
                        len(pending) for pending in self._outbox.values()
                    ),
                }
            }
        )
