"""Distributed Cactis (the Section 5 direction).

"We are in the process of constructing a distributed version of Cactis ...
It will be necessary to allow different users at different machines to
configure their own environments privately and share information."

This module implements that direction over the existing engine.  Each
*site* is an ordinary :class:`~repro.core.database.Database` (its own
schema, storage, transactions, users).  Sites share information through
**cross-site relationships**: when a consumer on site B depends on a value
transmitted by a producer on site A, the federation

1. installs (once per schema) a *mirror* object class on B for the
   relationship type -- one intrinsic attribute per flow, plus transmit
   rules republishing them locally;
2. creates a mirror instance standing in for the remote producer and
   connects B's consumer to it, so B's dependency graph, incremental
   evaluation, laziness, and undo all work unchanged; and
3. on :meth:`Federation.sync`, pulls each linked producer's current
   transmitted values and writes only the *changed* ones into the mirrors
   -- each write is one "message", and B's own incremental machinery takes
   it from there.

The result is the paper's sketch made concrete: private local databases,
explicit synchronisation points, and message traffic proportional to what
actually changed (measured by :class:`SyncReport`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.rules import Local, Rule, TransmitTarget
from repro.core.schema import AttributeDef, End, ObjectClass, PortDef
from repro.errors import CactisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database


class FederationError(CactisError):
    """Cross-site linking misuse (unknown sites, mismatched types...)."""


def mirror_class_name(rel_type: str, end: End) -> str:
    """Name of the mirror class standing in for remote producers on ``end``."""
    return f"__mirror__{rel_type}__{end.value}"


def mirror_attr_name(flow_value: str) -> str:
    """Mirror intrinsic attribute caching one remote flow value."""
    return f"v_{flow_value}"


@dataclass(frozen=True)
class CrossLink:
    """One cross-site dependency edge."""

    consumer_site: str
    consumer_iid: int
    consumer_port: str
    producer_site: str
    producer_iid: int
    producer_port: str
    mirror_iid: int


@dataclass
class SyncReport:
    """Outcome of one federation synchronisation pass."""

    values_checked: int = 0
    messages_sent: int = 0
    per_link: dict = field(default_factory=dict)

    @property
    def quiescent(self) -> bool:
        return self.messages_sent == 0


class Federation:
    """A set of named sites with pull-based cross-site value sharing."""

    def __init__(self) -> None:
        self.sites: dict[str, "Database"] = {}
        self.links: list[CrossLink] = []
        #: (consumer site, producer site, producer iid, producer port) ->
        #: mirror instance id, so several consumers share one mirror.
        self._mirrors: dict[tuple[str, str, int, str], int] = {}
        self.total_messages = 0
        self.sync_passes = 0

    # -- membership ------------------------------------------------------------

    def add_site(self, name: str, db: "Database") -> None:
        if name in self.sites:
            raise FederationError(f"site {name!r} is already registered")
        self.sites[name] = db

    def site(self, name: str) -> "Database":
        try:
            return self.sites[name]
        except KeyError:
            raise FederationError(f"unknown site {name!r}") from None

    # -- linking ------------------------------------------------------------

    def link(
        self,
        consumer_site: str,
        consumer_iid: int,
        consumer_port: str,
        producer_site: str,
        producer_iid: int,
        producer_port: str,
    ) -> CrossLink:
        """Make a consumer on one site depend on a producer on another."""
        if consumer_site == producer_site:
            raise FederationError(
                "both ends are on the same site; use an ordinary connect"
            )
        consumer_db = self.site(consumer_site)
        producer_db = self.site(producer_site)
        consumer_def = consumer_db._port_def(
            consumer_db.instance(consumer_iid), consumer_port
        )
        producer_def = producer_db._port_def(
            producer_db.instance(producer_iid), producer_port
        )
        if consumer_def.rel_type != producer_def.rel_type:
            raise FederationError(
                f"relationship types differ: {consumer_def.rel_type!r} vs "
                f"{producer_def.rel_type!r}"
            )
        if consumer_def.end is producer_def.end:
            raise FederationError(
                "both ports are on the same end of the relationship type"
            )
        self._check_flows_agree(consumer_db, producer_db, consumer_def.rel_type)
        mirror_iid = self._mirror_for(
            consumer_site, producer_site, producer_iid, producer_port,
            consumer_db, producer_def.rel_type, producer_def.end,
        )
        consumer_db.connect(consumer_iid, consumer_port, mirror_iid, "remote")
        link = CrossLink(
            consumer_site, consumer_iid, consumer_port,
            producer_site, producer_iid, producer_port, mirror_iid,
        )
        self.links.append(link)
        return link

    def unlink(self, link: CrossLink) -> None:
        """Remove a cross-site dependency (the mirror stays, idle)."""
        if link not in self.links:
            raise FederationError("unknown cross-link")
        consumer_db = self.site(link.consumer_site)
        consumer_db.disconnect(
            link.consumer_iid, link.consumer_port, link.mirror_iid, "remote"
        )
        self.links.remove(link)

    def _check_flows_agree(self, db_a, db_b, rel_type: str) -> None:
        flows_a = {
            (f.value, f.sent_by)
            for f in db_a.schema.relationship_type(rel_type).flows.values()
        }
        flows_b = {
            (f.value, f.sent_by)
            for f in db_b.schema.relationship_type(rel_type).flows.values()
        }
        if flows_a != flows_b:
            raise FederationError(
                f"sites disagree about relationship type {rel_type!r}"
            )

    def _mirror_for(
        self,
        consumer_site: str,
        producer_site: str,
        producer_iid: int,
        producer_port: str,
        consumer_db: "Database",
        rel_type: str,
        producer_end: End,
    ) -> int:
        key = (consumer_site, producer_site, producer_iid, producer_port)
        existing = self._mirrors.get(key)
        if existing is not None:
            return existing
        self._ensure_mirror_class(consumer_db, rel_type, producer_end)
        mirror_iid = consumer_db.create(
            mirror_class_name(rel_type, producer_end),
            origin_site=producer_site,
            origin_instance=producer_iid,
            origin_port=producer_port,
        )
        self._mirrors[key] = mirror_iid
        return mirror_iid

    def _ensure_mirror_class(
        self, db: "Database", rel_type: str, producer_end: End
    ) -> None:
        name = mirror_class_name(rel_type, producer_end)
        if name in db.schema.classes:
            return
        rel = db.schema.relationship_type(rel_type)
        flows = rel.values_sent_by(producer_end)
        attributes = [
            AttributeDef("origin_site", "string"),
            AttributeDef("origin_instance", "integer"),
            AttributeDef("origin_port", "string"),
        ]
        rules = []
        for flow in flows:
            attributes.append(AttributeDef(mirror_attr_name(flow.value), flow.atom))
            rules.append(
                Rule(
                    TransmitTarget("remote", flow.value),
                    {"v": Local(mirror_attr_name(flow.value))},
                    lambda v: v,
                    name=f"mirror:{rel_type}:{flow.value}",
                )
            )
        with db.extend_schema() as schema:
            schema.add_class(
                ObjectClass(
                    name,
                    attributes=attributes,
                    ports=[PortDef("remote", rel_type, producer_end, multi=True)],
                    rules=rules,
                )
            )

    # -- synchronisation ------------------------------------------------------

    def sync(self) -> SyncReport:
        """Pull every linked producer value; ship only the changes.

        One pass per mirror (shared by all of its consumers).  A write into
        a mirror is an ordinary intrinsic update on the consumer site, so
        the local incremental engine marks exactly the affected region.
        """
        report = SyncReport()
        self.sync_passes += 1
        for key, mirror_iid in self._mirrors.items():
            consumer_site, producer_site, producer_iid, producer_port = key
            consumer_db = self.site(consumer_site)
            producer_db = self.site(producer_site)
            if not consumer_db.exists(mirror_iid):
                continue  # mirror deleted locally; skip
            mirror = consumer_db.instance(mirror_iid)
            rel_type = consumer_db._port_def(mirror, "remote").rel_type
            producer_end = consumer_db._port_def(mirror, "remote").end
            rel = consumer_db.schema.relationship_type(rel_type)
            shipped = 0
            for flow in rel.values_sent_by(producer_end):
                report.values_checked += 1
                value = producer_db.get_transmitted(
                    producer_iid, producer_port, flow.value
                )
                attr = mirror_attr_name(flow.value)
                if consumer_db.get_attr(mirror_iid, attr) != value:
                    consumer_db.set_attr(mirror_iid, attr, value)
                    shipped += 1
            if shipped:
                report.per_link[key] = shipped
                report.messages_sent += shipped
        self.total_messages += report.messages_sent
        return report

    def sync_until_quiescent(self, max_passes: int = 16) -> int:
        """Repeat sync until no message moves (chained cross-site paths).

        Returns the number of passes executed.  A ring of cross-site
        dependencies that never stabilises raises, mirroring the single-
        site cycle prohibition.
        """
        for passes in range(1, max_passes + 1):
            if self.sync().quiescent:
                return passes
        raise FederationError(
            f"federation did not stabilise in {max_passes} passes; "
            f"is there a cross-site dependency cycle?"
        )
