"""Federation smoke: ``python -m repro.distributed --smoke``.

Builds a 4-site federation of dependency chains scattered round-robin
across the sites (every edge crosses a site boundary), drives it to
quiescence, then rebalances with the placement layer and proves the same
update wave costs strictly fewer cross-site messages afterwards -- with
every derived value still correct.  Used by ``make federation-check``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.database import Database
from repro.distributed import Federation, Placement
from repro.workloads import sum_node_schema

N_SITES = 4
N_CHAINS = 8
CHAIN_LEN = 5


def build_scattered_federation():
    """Chains whose consecutive nodes live on consecutive sites."""
    fed = Federation()
    names = [f"S{i}" for i in range(N_SITES)]
    for name in names:
        fed.add_site(name, Database(sum_node_schema(), pool_capacity=256))
    chains = []
    for c in range(N_CHAINS):
        chain = []
        for i in range(CHAIN_LEN):
            site = names[(c + i) % N_SITES]
            iid = fed.site(site).create("node", weight=1 + i)
            chain.append((site, iid))
        for (up_site, up), (down_site, down) in zip(chain, chain[1:]):
            fed.link(down_site, down, "inputs", up_site, up, "outputs")
        chains.append(chain)
    return fed, chains


def check_totals(fed, chains, bump: int) -> None:
    expected = sum(range(1, CHAIN_LEN + 1)) + bump
    for chain in chains:
        site, iid = chain[-1]
        total = fed.site(site).get_attr(iid, "total")
        assert total == expected, (
            f"tail of chain at {site}:{iid} computed {total}, "
            f"expected {expected}"
        )


def update_wave(fed, chains, value: int) -> int:
    """Bump every chain head; returns cross-site messages to re-quiesce."""
    before = fed.total_messages
    for chain in chains:
        site, iid = chain[0]
        fed.site(site).set_attr(iid, "weight", value)
    fed.sync_until_quiescent(max_passes=32)
    return fed.total_messages - before


def relocate(chains, relocated):
    return [
        [relocated.get(node, node) for node in chain] for chain in chains
    ]


def smoke() -> int:
    fed, chains = build_scattered_federation()
    fed.sync_until_quiescent(max_passes=32)
    check_totals(fed, chains, bump=0)

    scattered_msgs = update_wave(fed, chains, value=11)
    check_totals(fed, chains, bump=10)

    plan = Placement(fed).rebalance()
    fed.sync_until_quiescent(max_passes=32)
    chains = relocate(chains, plan.relocated)
    check_totals(fed, chains, bump=10)

    placed_msgs = update_wave(fed, chains, value=21)
    check_totals(fed, chains, bump=20)

    assert placed_msgs < scattered_msgs, (
        f"placement did not reduce cross-site traffic: "
        f"{placed_msgs} vs {scattered_msgs}"
    )
    assert plan.cross_weight_after < plan.cross_weight_before
    flat = fed.metrics().flatten()
    print(
        f"federation smoke ok: {N_SITES} sites, {N_CHAINS} chains; "
        f"update wave cost {scattered_msgs} messages scattered -> "
        f"{placed_msgs} after rebalance ({len(plan.executed)} migrations, "
        f"cross weight {plan.cross_weight_before:.0f} -> "
        f"{plan.cross_weight_after:.0f}); "
        f"batches shipped={flat['federation.batches_shipped']} "
        f"applied={flat['federation.batches_applied']} "
        f"failed={flat['federation.batches_failed']}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.distributed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the 4-site federation + placement smoke",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.print_help()
        return 2
    return smoke()


if __name__ == "__main__":
    sys.exit(main())
