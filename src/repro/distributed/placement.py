"""Cluster-driven placement: the paper's reorganiser, lifted to shards.

Section 2.3's greedy clustering packs hot neighborhoods into disk blocks
using observed access and crossing counts.  Darmont & Gruenwald's
clustering-policy comparison (PAPERS.md) observes the same policies apply
at any granularity -- so this module runs the *identical* algorithm
(:func:`repro.storage.clustering.greedy_cluster`) over the **cross-site
crossing graph**: nodes are ``(site, iid)`` pairs across every federation
site, edges are local connections plus cross-links, and weights come from
each site's own :class:`~repro.storage.usage.UsageStats` snapshot plus the
federation's observed per-link delivery traffic.

The resulting groups are whole neighborhoods; :func:`repro.storage.
clustering.assign_groups_to_shards` bin-packs them onto sites (preferring
each group's current majority site, so converged layouts cost zero moves),
and :meth:`Placement.rebalance` executes the plan through
:meth:`~repro.distributed.federation.Federation.migrate_instance` -- the
reorg-style pattern: journal intent, move through ordinary logged
primitives, reclaim orphaned mirrors afterwards.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.distributed.federation import MIRROR_PREFIX, FederationError
from repro.storage.clustering import assign_groups_to_shards, greedy_cluster
from repro.storage.usage import UsageStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.distributed.federation import Federation

#: a global placement node: (site name, instance id on that site).
Node = tuple[str, int]


@dataclass
class PlacementPlan:
    """One computed (and possibly executed) shard assignment."""

    #: clustered neighborhoods over the global crossing graph.
    groups: list[list[Node]]
    #: every node's assigned site.
    assignment: dict[Node, str]
    #: planned migrations as ``(from_site, iid, to_site)``.
    moves: list[tuple[str, int, str]]
    #: directed cross-site edge weight under the current layout.
    cross_weight_before: float
    #: the same quantity under the planned assignment.
    cross_weight_after: float
    #: executed migrations as ``(from_site, iid, to_site, new_iid)``.
    executed: list[tuple[str, int, str, int]] = field(default_factory=list)
    #: old node -> new node for every executed migration.
    relocated: dict[Node, Node] = field(default_factory=dict)


class Placement:
    """Builds the cross-site crossing graph and migrates toward its cut."""

    def __init__(
        self, federation: "Federation", group_capacity: int | None = None
    ) -> None:
        self.federation = federation
        #: max instances per clustered neighborhood; defaults to one
        #: shard's fair share, so no single group can overload a site.
        self.group_capacity = group_capacity

    # -- the global crossing graph ---------------------------------------------

    def crossing_graph(
        self,
    ) -> tuple[dict[Node, int], dict[Node, list[tuple[str, Node]]], UsageStats]:
        """``(sizes, edges, usage)`` over every non-mirror instance.

        Local connections contribute edges within a site; cross-links
        contribute edges *through* their mirrors -- the mirror itself never
        appears (it moves implicitly with its links).  Usage counters are
        each site's own observed numbers keyed by global node, and every
        cross-link edge carries at least weight 1 plus the federation's
        observed per-link delivery traffic, so topology places cold data
        and traffic places hot data.
        """
        fed = self.federation
        sizes: dict[Node, int] = {}
        for site, db in fed.sites.items():
            for iid in db.instance_ids():
                if db.instance(iid).class_name.startswith(MIRROR_PREFIX):
                    continue
                sizes[(site, iid)] = 1
        edges: dict[Node, list[tuple[str, Node]]] = {}
        usage = UsageStats()
        for site, db in fed.sites.items():
            for iid, count in db.usage.instance_accesses.items():
                if (site, iid) in sizes:
                    usage.instance_accesses[(site, iid)] += count
            for (iid, port), count in db.usage.relationship_crossings.items():
                if (site, iid) in sizes:
                    usage.relationship_crossings[((site, iid), port)] += count
            for node in [n for n in sizes if n[0] == site]:
                for port, peer in db.neighbors(node[1]):
                    if db.instance(peer).class_name.startswith(MIRROR_PREFIX):
                        continue  # cross edges come from the links index
                    edges.setdefault(node, []).append((port, (site, peer)))
        for link in fed.links:
            producer = (link.producer_site, link.producer_iid)
            consumer = (link.consumer_site, link.consumer_iid)
            if producer not in sizes or consumer not in sizes:
                continue
            edges.setdefault(consumer, []).append(
                (link.consumer_port, producer)
            )
            edges.setdefault(producer, []).append(
                (link.producer_port, consumer)
            )
            traffic = 1 + fed.link_traffic.get(link, 0)
            usage.relationship_crossings[(consumer, link.consumer_port)] += (
                traffic
            )
            usage.relationship_crossings[(producer, link.producer_port)] += (
                traffic
            )
        return sizes, edges, usage

    @staticmethod
    def cross_weight(
        edges: dict[Node, list[tuple[str, Node]]],
        usage: UsageStats,
        placement: dict[Node, str],
    ) -> float:
        """Directed crossing weight cut by site boundaries under ``placement``."""
        total = 0.0
        for node, peers in edges.items():
            for port, peer in peers:
                if placement.get(node) != placement.get(peer):
                    total += max(usage.crossing_count(node, port), 1)
        return total

    # -- planning --------------------------------------------------------------

    def plan(self, slack: float = 1.25) -> PlacementPlan:
        """Cluster the global graph and assign whole groups to sites."""
        fed = self.federation
        if not fed.sites:
            raise FederationError("cannot place over an empty federation")
        sizes, edges, usage = self.crossing_graph()
        shards = sorted(fed.sites)
        if not sizes:
            return PlacementPlan([], {}, [], 0.0, 0.0)
        capacity = self.group_capacity or max(
            1, -(-len(sizes) // len(shards))
        )
        groups = greedy_cluster(
            sizes, lambda node: edges.get(node, ()), usage, capacity
        )
        affinity = {
            index: Counter(site for site, __ in group).most_common(1)[0][0]
            for index, group in enumerate(groups)
        }
        shard_of_group = assign_groups_to_shards(
            groups, sizes, shards, affinity=affinity, slack=slack
        )
        assignment: dict[Node, str] = {}
        moves: list[tuple[str, int, str]] = []
        for index, group in enumerate(groups):
            shard = shard_of_group[index]
            for node in group:
                assignment[node] = shard
                if node[0] != shard:
                    moves.append((node[0], node[1], shard))
        current = {node: node[0] for node in sizes}
        return PlacementPlan(
            groups=groups,
            assignment=assignment,
            moves=moves,
            cross_weight_before=self.cross_weight(edges, usage, current),
            cross_weight_after=self.cross_weight(edges, usage, assignment),
        )

    # -- execution -------------------------------------------------------------

    def rebalance(
        self, plan: PlacementPlan | None = None, slack: float = 1.25
    ) -> PlacementPlan:
        """Execute a plan's migrations; reclaims orphaned mirrors after.

        Moves run one instance at a time through the federation's
        journalled migration primitive.  Instances already migrated away
        (e.g. by a concurrent rebalance) are skipped.  Returns the plan
        with ``executed``/``relocated`` filled in; run a sync afterwards to
        repopulate the rewired mirrors.
        """
        fed = self.federation
        if plan is None:
            plan = self.plan(slack=slack)
        for from_site, iid, to_site in plan.moves:
            if not fed.site(from_site).exists(iid):
                continue
            new_iid = fed.migrate_instance(from_site, iid, to_site)
            plan.executed.append((from_site, iid, to_site, new_iid))
            plan.relocated[(from_site, iid)] = (to_site, new_iid)
        fed.gc_mirrors()
        return plan
