"""Distributed Cactis -- the future-work direction of Section 5.

Sites are ordinary databases; :class:`Federation` shares transmitted
values across them through mirror objects and explicit, batched,
sequence-numbered synchronisation with durable at-least-once delivery.
:class:`Placement` runs the paper's greedy clusterer over the cross-site
crossing graph and migrates instances so hot neighborhoods co-locate.
See :mod:`repro.distributed.federation`,
:mod:`repro.distributed.placement`, and docs/DISTRIBUTED.md.
"""

from repro.distributed.federation import (
    CrossLink,
    Federation,
    FederationError,
    FederationStats,
    SyncReport,
    channel_key,
    federated_schema,
    mirror_attr_name,
    mirror_class_name,
)
from repro.distributed.placement import Placement, PlacementPlan

__all__ = [
    "CrossLink",
    "Federation",
    "FederationError",
    "FederationStats",
    "Placement",
    "PlacementPlan",
    "SyncReport",
    "channel_key",
    "federated_schema",
    "mirror_attr_name",
    "mirror_class_name",
]
