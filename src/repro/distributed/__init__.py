"""Distributed Cactis -- the future-work direction of Section 5.

Sites are ordinary databases; :class:`Federation` shares transmitted
values across them through mirror objects and explicit, change-only
synchronisation.  See :mod:`repro.distributed.federation`.
"""

from repro.distributed.federation import (
    CrossLink,
    Federation,
    FederationError,
    SyncReport,
    mirror_attr_name,
    mirror_class_name,
)

__all__ = [
    "CrossLink",
    "Federation",
    "FederationError",
    "SyncReport",
    "mirror_attr_name",
    "mirror_class_name",
]
