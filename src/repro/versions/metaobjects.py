"""Deltas and change descriptions as first-class database objects.

Section 3: "Because we can support data of arbitrary types as objects in
the Cactis model it is easy to create objects which represent the edit
operations that make up a delta.  Since these deltas are normal objects
they can be attached to other objects such as change descriptions, and in
general can be integrated with the rest of the database."

:class:`DeltaCatalog` does exactly that: it extends a live database's
schema with ``delta`` and ``change_description`` classes, then mirrors
every committed transaction into a ``delta`` object.  Change descriptions
attach to deltas through an ordinary relationship, and a derived attribute
on the description aggregates the total primitive-change volume it covers
-- the metadata itself benefits from incremental evaluation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.rules import AttributeTarget, Local, Received, Rule, TransmitTarget
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
)
from repro.errors import VersionError
from repro.txn.log import Delta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database

DELTA_CLASS = "delta"
DESCRIPTION_CLASS = "change_description"
REL_TYPE = "describes_change"


class DeltaCatalog:
    """Mirrors committed deltas into the database itself."""

    def __init__(self, db: "Database") -> None:
        self.db = db
        self._delta_iids: dict[int, int] = {}  # txn id -> delta object id
        self._installed = False
        self._install_schema()
        db.txn.add_commit_listener(self._on_commit)
        self._mirroring = False

    # -- schema ------------------------------------------------------------

    def _install_schema(self) -> None:
        schema = self.db.schema
        if DELTA_CLASS in schema.classes:
            self._installed = True
            return
        with self.db.extend_schema() as live:
            live.add_relationship_type(
                RelationshipType(
                    REL_TYPE,
                    [
                        FlowDecl("record_count", "integer", End.PLUG, default=0),
                        FlowDecl("byte_size", "integer", End.PLUG, default=0),
                    ],
                )
            )
            live.add_class(
                ObjectClass(
                    DELTA_CLASS,
                    attributes=[
                        AttributeDef("txn_id", "integer"),
                        AttributeDef("label", "string"),
                        AttributeDef("record_count", "integer"),
                        AttributeDef("byte_size", "integer"),
                    ],
                    ports=[
                        PortDef("described_by", REL_TYPE, End.PLUG, multi=True)
                    ],
                    rules=[
                        Rule(
                            TransmitTarget("described_by", "record_count"),
                            {"n": Local("record_count")},
                            lambda n: n,
                        ),
                        Rule(
                            TransmitTarget("described_by", "byte_size"),
                            {"n": Local("byte_size")},
                            lambda n: n,
                        ),
                    ],
                )
            )
            live.add_class(
                ObjectClass(
                    DESCRIPTION_CLASS,
                    attributes=[
                        AttributeDef("title", "string"),
                        AttributeDef("author", "string"),
                        AttributeDef(
                            "total_records", "integer", AttrKind.DERIVED
                        ),
                        AttributeDef(
                            "total_bytes", "integer", AttrKind.DERIVED
                        ),
                    ],
                    ports=[
                        PortDef("covers", REL_TYPE, End.SOCKET, multi=True)
                    ],
                    rules=[
                        Rule(
                            AttributeTarget("total_records"),
                            {"counts": Received("covers", "record_count")},
                            lambda counts: sum(counts),
                        ),
                        Rule(
                            AttributeTarget("total_bytes"),
                            {"sizes": Received("covers", "byte_size")},
                            lambda sizes: sum(sizes),
                        ),
                    ],
                )
            )
        self._installed = True

    # -- mirroring ------------------------------------------------------------

    def _on_commit(self, delta: Delta) -> None:
        if self._mirroring:
            return  # the mirror's own transaction must not mirror itself
        self._mirroring = True
        try:
            iid = self.db.create(
                DELTA_CLASS,
                txn_id=delta.txn_id,
                label=delta.label,
                record_count=len(delta),
                byte_size=delta.size_estimate(),
            )
            self._delta_iids[delta.txn_id] = iid
        finally:
            self._mirroring = False

    # -- API ------------------------------------------------------------

    def delta_object(self, txn_id: int) -> int:
        try:
            return self._delta_iids[txn_id]
        except KeyError:
            raise VersionError(
                f"no mirrored delta object for transaction {txn_id}"
            ) from None

    def mirrored_txn_ids(self) -> list[int]:
        return sorted(self._delta_iids)

    def last_mirrored_txn(self) -> int:
        """Transaction id of the most recently mirrored *user* commit.

        The mirror objects themselves commit through ordinary transactions
        (they are normal objects!), so ``db.txn.history[-1]`` is usually
        the mirror's own commit; this accessor names the user-level one.
        """
        if not self._delta_iids:
            raise VersionError("no transactions have been mirrored yet")
        return max(self._delta_iids)

    def describe(
        self, title: str, txn_ids: list[int], author: str = ""
    ) -> int:
        """Create a change description covering the given transactions."""
        self._mirroring = True
        try:
            description = self.db.create(
                DESCRIPTION_CLASS, title=title, author=author
            )
            for txn_id in txn_ids:
                self.db.connect(
                    description,
                    "covers",
                    self.delta_object(txn_id),
                    "described_by",
                )
        finally:
            self._mirroring = False
        return description

    def description_report(self, description_iid: int) -> dict:
        """The aggregated metadata of one change description."""
        view = self.db.view(description_iid)
        return {
            "title": view["title"],
            "author": view["author"],
            "deltas": len(view.connections("covers")),
            "total_records": view["total_records"],
            "total_bytes": view["total_bytes"],
        }
