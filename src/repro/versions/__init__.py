"""The version facility built on first-class deltas.

* :mod:`repro.versions.stream` -- version trees over transaction deltas
  with branch-aware checkout.
* :mod:`repro.versions.configuration` -- configurations binding components
  (streams) to versions, with materialise/diff/containment operations.
"""

from repro.versions.configuration import Configuration, ConfigurationManager
from repro.versions.stream import Version, VersionStream

__all__ = [
    "Configuration",
    "ConfigurationManager",
    "Version",
    "VersionStream",
]
