"""Configurations: named bindings of components to versions.

"We need the ability to manipulate versions and version streams as objects
in themselves in order to support configuration management tools within the
system."  A :class:`Configuration` binds each named *component* (a version
stream, typically one database per subsystem) to one of its versions; the
:class:`ConfigurationManager` stores configurations, materialises them
(checking out every component), and answers diff/containment queries the
way a configuration-management tool would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import VersionError
from repro.versions.stream import VersionStream


@dataclass(frozen=True)
class Configuration:
    """An immutable component -> version-name binding."""

    name: str
    bindings: Mapping[str, str]
    description: str = ""

    def version_of(self, component: str) -> str:
        try:
            return self.bindings[component]
        except KeyError:
            raise VersionError(
                f"configuration {self.name!r} does not bind component "
                f"{component!r}"
            ) from None


@dataclass
class ConfigurationManager:
    """Registry of components (version streams) and configurations."""

    streams: dict[str, VersionStream] = field(default_factory=dict)
    configurations: dict[str, Configuration] = field(default_factory=dict)

    # -- components ------------------------------------------------------------

    def add_component(self, name: str, stream: VersionStream) -> None:
        if name in self.streams:
            raise VersionError(f"component {name!r} is already registered")
        self.streams[name] = stream

    def component(self, name: str) -> VersionStream:
        try:
            return self.streams[name]
        except KeyError:
            raise VersionError(f"unknown component {name!r}") from None

    # -- configurations ------------------------------------------------------------

    def define(
        self, name: str, bindings: Mapping[str, str], description: str = ""
    ) -> Configuration:
        """Create a configuration, validating every binding."""
        if name in self.configurations:
            raise VersionError(f"configuration {name!r} is already defined")
        for component, version_name in bindings.items():
            self.component(component).version(version_name)  # validates both
        config = Configuration(name=name, bindings=dict(bindings), description=description)
        self.configurations[name] = config
        return config

    def snapshot(self, name: str, description: str = "") -> Configuration:
        """Bind every component to its *current* version as a configuration."""
        bindings = {
            component: stream.versions[stream.current].name
            for component, stream in self.streams.items()
        }
        return self.define(name, bindings, description)

    def get(self, name: str) -> Configuration:
        try:
            return self.configurations[name]
        except KeyError:
            raise VersionError(f"unknown configuration {name!r}") from None

    # -- operations ------------------------------------------------------------

    def materialize(self, name: str, discard_pending: bool = False) -> None:
        """Check every bound component out to its configured version."""
        config = self.get(name)
        for component, version_name in config.bindings.items():
            self.component(component).checkout(
                version_name, discard_pending=discard_pending
            )

    def diff(self, name_a: str, name_b: str) -> dict[str, tuple[str | None, str | None]]:
        """Components whose bound versions differ between two configurations.

        Returns ``{component: (version_in_a, version_in_b)}`` with ``None``
        when a configuration does not bind the component at all.
        """
        a = self.get(name_a)
        b = self.get(name_b)
        components = set(a.bindings) | set(b.bindings)
        result: dict[str, tuple[str | None, str | None]] = {}
        for component in sorted(components):
            va = a.bindings.get(component)
            vb = b.bindings.get(component)
            if va != vb:
                result[component] = (va, vb)
        return result

    def configurations_containing(self, component: str, version_name: str) -> list[str]:
        """Names of configurations binding ``component`` to ``version_name``."""
        return sorted(
            name
            for name, config in self.configurations.items()
            if config.bindings.get(component) == version_name
        )
