"""Version streams over transaction deltas.

Section 3: "we need only remember the small changes made in order to
restore the database to its old status.  This gives us an efficient *delta*
mechanism which allows us to recover old versions from the current one."

A :class:`VersionStream` listens to a database's commits and groups the
resulting :class:`~repro.txn.log.Delta` objects into named *versions*.
Versions form a tree: checking out an old version and committing new work
creates a branch.  Checkout navigates the tree -- applying delta inverses
up to the common ancestor, then deltas forward down to the target -- so the
cost of moving between versions is proportional to the primitive changes
between them, never to the derived ripple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import VersionError
from repro.txn.log import Delta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database


@dataclass
class Version:
    """A named point in a stream's history."""

    version_id: int
    name: str
    parent: int | None
    #: deltas leading from the parent version to this one, oldest first.
    deltas: list[Delta] = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    def change_size(self) -> int:
        """Total stored size of the deltas (bytes, per the log's estimate)."""
        return sum(delta.size_estimate() for delta in self.deltas)

    def record_count(self) -> int:
        return sum(len(delta) for delta in self.deltas)


class VersionStream:
    """The version history of one database.

    The stream starts at an implicit root version (id 0, the state of the
    database when the stream attached).  Committed deltas accumulate as
    *pending* until :meth:`tag` freezes them into a new version.
    """

    def __init__(self, db: "Database", name: str = "main") -> None:
        self.db = db
        self.name = name
        root = Version(version_id=0, name="root", parent=None)
        self.versions: dict[int, Version] = {0: root}
        self._by_name: dict[str, int] = {"root": 0}
        self._next_id = 1
        self.current: int = 0
        self.pending: list[Delta] = []
        db.txn.add_commit_listener(self._on_commit)
        self._replaying = False

    # -- commit capture ------------------------------------------------------

    def _on_commit(self, delta: Delta) -> None:
        if not self._replaying:
            self.pending.append(delta)

    # -- tagging ------------------------------------------------------------

    def tag(self, name: str) -> Version:
        """Freeze pending deltas into a new version named ``name``.

        The new version's parent is the current version; tagging from a
        non-tip version creates a branch.
        """
        if name in self._by_name:
            raise VersionError(f"version name {name!r} is already used")
        version = Version(
            version_id=self._next_id,
            name=name,
            parent=self.current,
            deltas=list(self.pending),
        )
        self._next_id += 1
        self.versions[version.version_id] = version
        self._by_name[name] = version.version_id
        self.versions[self.current].children.append(version.version_id)
        self.pending.clear()
        self.current = version.version_id
        return version

    # -- lookup ------------------------------------------------------------

    def version(self, ref: int | str) -> Version:
        if isinstance(ref, str):
            try:
                ref = self._by_name[ref]
            except KeyError:
                raise VersionError(f"unknown version name {ref!r}") from None
        try:
            return self.versions[ref]
        except KeyError:
            raise VersionError(f"unknown version id {ref!r}") from None

    def lineage(self, ref: int | str) -> list[int]:
        """Version ids from the root down to ``ref`` (inclusive)."""
        chain: list[int] = []
        current: int | None = self.version(ref).version_id
        while current is not None:
            chain.append(current)
            current = self.versions[current].parent
        chain.reverse()
        return chain

    def tips(self) -> list[Version]:
        """Versions with no children (the heads of every branch)."""
        return [v for v in self.versions.values() if not v.children]

    # -- checkout ------------------------------------------------------------

    def checkout(self, ref: int | str, discard_pending: bool = False) -> Version:
        """Move the database to the state of version ``ref``.

        Pending (untagged) deltas block a checkout unless
        ``discard_pending`` is given, in which case they are rolled back
        first -- the Undo guarantee extends to version navigation.
        """
        target = self.version(ref)
        if self.pending:
            if not discard_pending:
                raise VersionError(
                    f"{len(self.pending)} untagged committed transaction(s) "
                    f"pending; tag them or pass discard_pending=True"
                )
            self._replaying = True
            try:
                for delta in reversed(self.pending):
                    self.db.txn.apply_inverse_delta(delta)
            finally:
                self._replaying = False
            self.pending.clear()
        if target.version_id == self.current:
            return target
        here = self.lineage(self.current)
        there = self.lineage(target.version_id)
        common = 0
        for a, b in zip(here, there):
            if a != b:
                break
            common += 1
        self._replaying = True
        try:
            # Walk up: undo every version between current and the ancestor.
            for vid in reversed(here[common:]):
                for delta in reversed(self.versions[vid].deltas):
                    self.db.txn.apply_inverse_delta(delta)
            # Walk down: redo every version from the ancestor to the target.
            for vid in there[common:]:
                for delta in self.versions[vid].deltas:
                    self.db.txn.apply_forward(delta)
        finally:
            self._replaying = False
        self.current = target.version_id
        return target

    # -- diagnostics ------------------------------------------------------------

    def distance(self, ref_a: int | str, ref_b: int | str) -> int:
        """Number of log records replayed by a checkout from ``a`` to ``b``."""
        a_line = self.lineage(ref_a)
        b_line = self.lineage(ref_b)
        common = 0
        for x, y in zip(a_line, b_line):
            if x != y:
                break
            common += 1
        records = 0
        for vid in a_line[common:]:
            records += self.versions[vid].record_count()
        for vid in b_line[common:]:
            records += self.versions[vid].record_count()
        return records

    def __repr__(self) -> str:
        return (
            f"VersionStream({self.name!r}, versions={len(self.versions)}, "
            f"current={self.versions[self.current].name!r})"
        )
