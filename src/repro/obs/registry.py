"""Metrics registry: one diff-able snapshot over every stats substrate.

The reproduction accumulated five ad-hoc stats structures (evaluation
counters, CC stats, buffer stats, disk stats, usage stats, WAL counters).
:class:`Observability` unifies them: each substrate registers a *provider*
-- a zero-argument callable returning a flat ``{name: number}`` dict --
under a section name, and :meth:`Observability.snapshot` assembles them
into a single nested :class:`MetricsSnapshot`.

Snapshots are plain immutable views over nested dicts and support
subtraction (``after - before``) so a workload's cost is one expression.
Latency distributions for waves, chunks, commits, and recovery are kept in
:class:`LatencyTimer` instances owned by the registry.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator, Mapping

from repro.obs.events import EventHub

Provider = Callable[[], dict[str, Any]]

#: latency distributions every database carries, in snapshot order.
TIMER_NAMES = ("wave", "chunk", "commit", "recovery", "reorg_step")


class LatencyTimer:
    """A tiny streaming histogram: count / total / min / max seconds."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if self.count == 0 or seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.count += 1
        self.total += seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min,
            "max_seconds": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"LatencyTimer(count={self.count}, total={self.total:.6f}s, "
            f"mean={self.mean:.6f}s)"
        )


def _diff_value(left: Any, right: Any) -> Any:
    """Counters subtract; identity-ish values (bools, strings) keep ``left``."""
    if isinstance(left, dict) and isinstance(right, dict):
        return {
            key: _diff_value(left[key], right[key]) if key in right else left[key]
            for key in left
        }
    if (
        isinstance(left, (int, float))
        and not isinstance(left, bool)
        and isinstance(right, (int, float))
        and not isinstance(right, bool)
    ):
        return left - right
    return left


class MetricsSnapshot(Mapping[str, Any]):
    """An immutable nested view of every registered metric.

    Behaves as a mapping of section name -> ``{metric: value}``; supports
    ``snapshot_b - snapshot_a`` for workload deltas, :meth:`flatten` for
    dotted-name access, and :meth:`render` for human-readable dumps.
    """

    __slots__ = ("_data",)

    def __init__(self, data: dict[str, Any]) -> None:
        self._data = data

    # Mapping protocol ------------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # views -----------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Deep-copied plain dict (JSON-ready)."""
        return json.loads(json.dumps(self._data))

    def flatten(self, *, sep: str = ".") -> dict[str, Any]:
        """``{"buffer.hits": 3, ...}`` -- handy for assertions and docs."""
        flat: dict[str, Any] = {}

        def walk(prefix: str, node: Any) -> None:
            if isinstance(node, dict):
                for key, value in node.items():
                    walk(f"{prefix}{sep}{key}" if prefix else key, value)
            else:
                flat[prefix] = node

        walk("", self._data)
        return flat

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return MetricsSnapshot(_diff_value(self._data, other._data))

    def render(self) -> str:
        """Indented text dump, one metric per line."""
        lines: list[str] = []
        for section in self._data:
            lines.append(f"{section}:")
            for name, value in sorted(self.flatten().items()):
                prefix = section + "."
                if name.startswith(prefix):
                    if isinstance(value, float):
                        value = f"{value:.6f}"
                    lines.append(f"  {name[len(prefix):]:<28} {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MetricsSnapshot(sections={list(self._data)})"


class Observability:
    """Per-database observability root: event hub + metrics registry.

    Created by :class:`~repro.core.database.Database` before any substrate,
    so the storage, evaluation, transaction, and persistence layers can all
    reference ``db.obs.hub`` and register their providers during their own
    construction.
    """

    def __init__(self) -> None:
        self.hub = EventHub()
        self.timers: dict[str, LatencyTimer] = {
            name: LatencyTimer() for name in TIMER_NAMES
        }
        self._providers: dict[str, Provider] = {}

    def register(self, section: str, provider: Provider) -> None:
        """Attach (or replace) the provider for one snapshot section.

        Replacement is deliberate: the database registers a zeroed ``cc``
        provider so single-user snapshots have the section, and the
        multi-user scheduler overrides it with its live TimestampManager;
        likewise ``wal`` is zeroed until persistence attaches.
        """
        self._providers[section] = provider

    def sections(self) -> list[str]:
        return list(self._providers) + ["latency", "events"]

    def snapshot(self) -> MetricsSnapshot:
        """Collect every provider plus timers and hub accounting."""
        data: dict[str, Any] = {}
        for section, provider in self._providers.items():
            data[section] = dict(provider())
        data["latency"] = {
            name: timer.as_dict() for name, timer in self.timers.items()
        }
        data["events"] = {
            "emitted": self.hub.emitted,
            "subscribers": len(self.hub.subscribers),
        }
        return MetricsSnapshot(data)
