"""Typed events and the hub they flow through.

Every layer of the reproduction exposes first-class hook points that emit
one of the event types below through an :class:`EventHub`:

* the evaluation engine -- wave start/end, slot marked, slot evaluated,
  chunk run, fast-lane hit;
* the buffer pool -- block loaded, block evicted;
* timestamp concurrency control -- TO rejections;
* the transaction manager -- commit, abort;
* the persistence manager -- WAL append, WAL fsync, checkpoint, recovery.

The hub stamps each emitted event with the current *session* (set by the
multi-user scheduler around each interleaved step) and *transaction id*
(set by the transaction manager while a delta is active), so a consumer
can answer "what did this transaction cost end to end".

Emission is free when nobody listens: every hook point checks
``hub.active`` (a plain attribute maintained by subscribe/unsubscribe)
before even constructing the event object, so the hot paths of the engine
pay one attribute load and one branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Sequence

from repro.core.slots import Slot


@dataclass
class Event:
    """Base class: attribution stamped by the hub at emit time."""

    TYPE = "event"

    session: str | None = field(default=None, init=False)
    txn: int | None = field(default=None, init=False)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (slots become lists) for the trace writer."""
        payload: dict[str, Any] = {"type": self.TYPE}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, list):
                value = [list(v) if isinstance(v, tuple) else v for v in value]
            payload[f.name] = value
        return payload


@dataclass
class WaveStart(Event):
    """A propagation wave begins (engine phase 1)."""

    TYPE = "wave_start"

    kind: str = "intrinsic"  # "intrinsic" | "derived" | "batch"
    intrinsic_seeds: list[Slot] = field(default_factory=list)
    derived_seeds: list[Slot] = field(default_factory=list)


@dataclass
class WaveEnd(Event):
    """The matching wave finished; ``seconds`` is its wall-clock cost."""

    TYPE = "wave_end"

    kind: str = "intrinsic"
    seconds: float = 0.0


@dataclass
class SlotMarked(Event):
    """Phase 1 marked one slot out of date (first time this wave)."""

    TYPE = "slot_marked"

    slot: Slot = (0, "")
    crossing_port: str | None = None


@dataclass
class SlotEvaluated(Event):
    """Phase 2 ran a rule and stored the slot's new value."""

    TYPE = "slot_evaluated"

    slot: Slot = (0, "")
    value: Any = None
    unchanged: bool = False


@dataclass
class ChunkRun(Event):
    """The scheduler executed one closure-carrying chunk."""

    TYPE = "chunk_run"

    kind: str = ""  # "mark" | "request" | "collect" | "compute"
    slot: Slot = (0, "")


@dataclass
class FastLaneHit(Event):
    """A unit of work rode the allocation-free resident fast lane."""

    TYPE = "fast_lane_hit"

    kind: str = ""
    slot: Slot = (0, "")


@dataclass
class BlockLoaded(Event):
    """The buffer pool read a block from disk into a frame."""

    TYPE = "block_loaded"

    block_id: int = 0


@dataclass
class BlockEvicted(Event):
    """A block left the pool (LRU eviction, drop, or clear)."""

    TYPE = "block_evicted"

    block_id: int = 0
    dirty: bool = False
    reason: str = "lru"  # "lru" | "drop" | "clear"


@dataclass
class TORejection(Event):
    """Timestamp ordering rejected a read or write."""

    TYPE = "to_rejection"

    kind: str = "read"  # "read" | "write"
    iid: int = 0
    ts: int = 0
    conflict_ts: int = 0
    conflict_kind: str = "write"  # mark that caused the rejection


@dataclass
class TxnCommit(Event):
    """A transaction committed (explicit, autocommit, or session)."""

    TYPE = "txn_commit"

    txn_id: int = 0
    label: str = ""
    records: int = 0
    seconds: float = 0.0


@dataclass
class TxnAbort(Event):
    """A transaction rolled back."""

    TYPE = "txn_abort"

    txn_id: int = 0
    label: str = ""
    records: int = 0


@dataclass
class WalAppend(Event):
    """The WAL framed and wrote one durable record."""

    TYPE = "wal_append"

    seq: int = 0
    kind: str = "commit"  # payload type
    bytes: int = 0
    synced: bool = False


@dataclass
class WalFsync(Event):
    """The WAL fsynced its file (the durability hard cost)."""

    TYPE = "wal_fsync"

    seconds: float = 0.0


@dataclass
class Checkpoint(Event):
    """The WAL was folded into a fresh atomic image."""

    TYPE = "checkpoint"

    seq: int = 0


@dataclass
class Recovery(Event):
    """An opening recovery pass finished."""

    TYPE = "recovery"

    replayed: int = 0
    skipped: int = 0
    dropped: str | None = None
    seconds: float = 0.0


@dataclass
class ReorgEpochStart(Event):
    """An online reorganisation epoch planned its target layout."""

    TYPE = "reorg_epoch_start"

    epoch: int = 0
    steps_planned: int = 0
    instances: int = 0


@dataclass
class ReorgStep(Event):
    """One bounded migration step moved a target block's worth of instances."""

    TYPE = "reorg_step"

    epoch: int = 0
    step: int = 0
    moved: int = 0
    skipped: int = 0
    blocks_released: int = 0
    seconds: float = 0.0


@dataclass
class ReorgEpochEnd(Event):
    """The epoch finished (every step ran) or was abandoned."""

    TYPE = "reorg_epoch_end"

    epoch: int = 0
    steps_run: int = 0
    completed: bool = True


@dataclass
class FedBatchShipped(Event):
    """A federation change batch entered the producer site's outbox."""

    TYPE = "fed_batch_shipped"

    channel: str = ""  # "producer>consumer" site pair
    seq: int = 0  # per-channel batch sequence number
    values: int = 0  # changed values carried by the batch


@dataclass
class FedBatchApplied(Event):
    """A consumer site durably applied (or deduplicated) one batch."""

    TYPE = "fed_batch_applied"

    channel: str = ""
    seq: int = 0
    values: int = 0
    deduped: bool = False  # redelivery dropped by the applied high-water mark


@dataclass
class FedMigration(Event):
    """The placement layer moved one instance to another site."""

    TYPE = "fed_migration"

    iid: int = 0
    from_site: str = ""
    to_site: str = ""
    links_rewired: int = 0


@dataclass
class QueryPlanned(Event):
    """The query planner chose an access path for one execution."""

    TYPE = "query_planned"

    class_name: str = ""
    access_path: str = ""  # "scan" | "extent" | "index_eq" | "index_range" | "index_order"
    index_attr: str | None = None  # attribute of the chosen index, if any
    cost: float = 0.0  # planner's estimate for the chosen path
    scan_cost: float = 0.0  # what the naive scan was priced at
    degraded: bool = False  # an indexed plan fell back to the scan at run time


@dataclass
class IndexSweep(Event):
    """An index/extent refresh evaluated stale or pending derived slots."""

    TYPE = "index_sweep"

    kind: str = "attr"  # "attr" | "extent"
    name: str = ""  # "class.attr" for attr indexes, subtype name for extents
    stale: int = 0  # slots found in the engine's out-of-date set
    pending: int = 0  # covered slots never evaluated before this sweep


#: event type name -> class; the doc cross-check and trace tooling key off it.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.TYPE: cls
    for cls in (
        WaveStart,
        WaveEnd,
        SlotMarked,
        SlotEvaluated,
        ChunkRun,
        FastLaneHit,
        BlockLoaded,
        BlockEvicted,
        TORejection,
        TxnCommit,
        TxnAbort,
        WalAppend,
        WalFsync,
        Checkpoint,
        Recovery,
        ReorgEpochStart,
        ReorgStep,
        ReorgEpochEnd,
        FedBatchShipped,
        FedBatchApplied,
        FedMigration,
        QueryPlanned,
        IndexSweep,
    )
}

Listener = Callable[[Event], None]


class EventHub:
    """Dispatches events to subscribers and stamps attribution context."""

    __slots__ = ("_subscribers", "active", "emitted", "session", "txn")

    def __init__(self) -> None:
        self._subscribers: list[Listener] = []
        #: kept in sync with the subscriber list; hook points check this
        #: single attribute before constructing an event.
        self.active = False
        #: events delivered to at least one subscriber.
        self.emitted = 0
        #: current multi-user session name (set by MultiUserScheduler).
        self.session: str | None = None
        #: current transaction id (set by TransactionManager).
        self.txn: int | None = None

    @property
    def subscribers(self) -> Sequence[Listener]:
        return tuple(self._subscribers)

    def subscribe(self, listener: Listener) -> Listener:
        """Register a listener; returns it for later :meth:`unsubscribe`."""
        self._subscribers.append(listener)
        self.active = True
        return listener

    def unsubscribe(self, listener: Listener) -> None:
        try:
            self._subscribers.remove(listener)
        except ValueError:
            pass
        self.active = bool(self._subscribers)

    def emit(self, event: Event) -> None:
        """Stamp attribution and deliver to every subscriber."""
        if not self.active:
            return
        event.session = self.session
        event.txn = self.txn
        self.emitted += 1
        for listener in tuple(self._subscribers):
            listener(event)
