"""Unified observability: metrics registry, typed event stream, trace export.

Public surface:

* :class:`Observability` -- per-database root (``db.obs``): event hub,
  latency timers, and the metrics provider registry behind
  ``Database.metrics()``.
* :class:`MetricsSnapshot` / :class:`LatencyTimer` -- diff-able snapshots.
* :class:`EventHub` and the typed events in :mod:`repro.obs.events`.
* :class:`TraceWriter` / :func:`read_trace` / :func:`summarize_trace` --
  JSONL trace export, consumed by ``python -m repro.obs``.
"""

from repro.obs.events import EVENT_TYPES, Event, EventHub
from repro.obs.registry import (
    TIMER_NAMES,
    LatencyTimer,
    MetricsSnapshot,
    Observability,
)
from repro.obs.tracefile import (
    TraceWriter,
    read_trace,
    render_summary,
    summarize_trace,
)

__all__ = [
    "EVENT_TYPES",
    "Event",
    "EventHub",
    "LatencyTimer",
    "MetricsSnapshot",
    "Observability",
    "TIMER_NAMES",
    "TraceWriter",
    "read_trace",
    "render_summary",
    "summarize_trace",
]
