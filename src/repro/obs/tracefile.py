"""JSONL trace export and offline summarisation.

:class:`TraceWriter` subscribes to a database's event hub and streams every
event to a JSON-lines file -- one self-describing object per line with a
``type`` field naming the event and ``session``/``txn`` attribution.  The
file can be re-read with :func:`read_trace` and condensed with
:func:`summarize_trace`; ``python -m repro.obs summarize`` wraps both.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any

from repro.obs.events import EVENT_TYPES, Event


class TraceWriter:
    """Stream a database's events to a JSONL file.

    Usage::

        with TraceWriter(db, "run.jsonl"):
            db.set_attr(node, "weight", 5)

    The writer subscribes on ``__enter__`` (or construction with
    ``start=True``) and unsubscribes on ``__exit__``/:meth:`close`, so the
    engine's hot paths return to zero-cost emission afterwards.
    """

    def __init__(self, db: Any, path: str | Path, *, start: bool = False) -> None:
        self.hub = db.obs.hub
        self.path = Path(path)
        self.written = 0
        self._fh: IO[str] | None = None
        if start:
            self._open()

    def _open(self) -> None:
        if self._fh is None:
            self._fh = self.path.open("w", encoding="utf-8")
            self.hub.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(event.to_dict(), default=repr) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self.hub.unsubscribe(self._on_event)
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        self._open()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL trace back into a list of event dicts.

    Unknown event types are kept (forward compatibility); blank lines are
    skipped; a torn final line (crash mid-write) is dropped.
    """
    events: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail -- everything before it is intact
    return events


def summarize_trace(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Condense a trace into counts, wave costs, and per-session work."""
    by_type: dict[str, int] = {}
    by_session: dict[str, int] = {}
    wave_seconds = 0.0
    waves = 0
    evaluated = 0
    unchanged = 0
    commits = 0
    aborts = 0
    rejections = 0
    for event in events:
        etype = event.get("type", "?")
        by_type[etype] = by_type.get(etype, 0) + 1
        session = event.get("session")
        if session is not None:
            by_session[session] = by_session.get(session, 0) + 1
        if etype == "wave_end":
            waves += 1
            wave_seconds += event.get("seconds", 0.0)
        elif etype == "slot_evaluated":
            evaluated += 1
            if event.get("unchanged"):
                unchanged += 1
        elif etype == "txn_commit":
            commits += 1
        elif etype == "txn_abort":
            aborts += 1
        elif etype == "to_rejection":
            rejections += 1
    return {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "by_session": dict(sorted(by_session.items())),
        "waves": waves,
        "wave_seconds_total": wave_seconds,
        "slots_evaluated": evaluated,
        "unchanged_evaluations": unchanged,
        "commits": commits,
        "aborts": aborts,
        "to_rejections": rejections,
        "unknown_types": sorted(
            {t for t in by_type if t not in EVENT_TYPES and t != "?"}
        ),
    }


def render_summary(summary: dict[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = [f"events: {summary['events']}"]
    lines.append("by type:")
    for etype, count in summary["by_type"].items():
        lines.append(f"  {etype:<18} {count}")
    if summary["by_session"]:
        lines.append("by session:")
        for session, count in summary["by_session"].items():
            lines.append(f"  {session:<18} {count}")
    lines.append(
        f"waves: {summary['waves']} "
        f"({summary['wave_seconds_total']:.6f}s total)"
    )
    lines.append(
        f"evaluated: {summary['slots_evaluated']} "
        f"({summary['unchanged_evaluations']} unchanged)"
    )
    lines.append(
        f"txns: {summary['commits']} committed, {summary['aborts']} aborted, "
        f"{summary['to_rejections']} TO rejections"
    )
    if summary["unknown_types"]:
        lines.append("unknown types: " + ", ".join(summary["unknown_types"]))
    return "\n".join(lines)
