"""CLI for the observability layer.

Subcommands::

    python -m repro.obs demo [--trace PATH] [--json]
        Run a small built-in workload (chain build + updates + a multi-user
        schedule) and print the unified metrics snapshot.  ``--trace``
        additionally records the full event stream to a JSONL file --
        convenient for producing a real trace to feed ``summarize``.

    python -m repro.obs summarize TRACE [--json]
        Condense a recorded JSONL trace: event counts by type and session,
        wave costs, evaluation and transaction tallies.

    python -m repro.obs snapshot FILE [--flat]
        Pretty-print a previously saved metrics snapshot (e.g. the
        ``metrics`` object embedded in a BENCH_*.json section).

    python -m repro.obs diff AFTER BEFORE
        Subtract two saved snapshots and print the delta.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.obs.registry import MetricsSnapshot
from repro.obs.tracefile import (
    TraceWriter,
    read_trace,
    render_summary,
    summarize_trace,
)


def _demo_workload(trace_path: str | None) -> "Any":
    """Build a chain, push updates through it, run a two-user schedule."""
    from repro.core.database import Database
    from repro.txn.manager import MultiUserScheduler
    from repro.workloads.topologies import build_chain, sum_node_schema

    db = Database(sum_node_schema(), pool_capacity=4)
    writer = TraceWriter(db, trace_path, start=True) if trace_path else None
    try:
        nodes = build_chain(db, 12)
        for step in range(3):
            db.set_attr(nodes[0], "weight", 5 + step)
            db.get_attr(nodes[-1], "total")

        def bump(session, target=nodes[0]):
            yield
            session.set_attr(target, "weight", session.get_attr(target, "weight") + 1)
            yield

        def probe(session, target=nodes[-1]):
            yield
            session.get_attr(target, "total")
            yield

        MultiUserScheduler(db, seed=7).run([("writer", bump), ("reader", probe)])
    finally:
        if writer is not None:
            writer.close()
    return db


def _load_snapshot(path: str) -> MetricsSnapshot:
    return MetricsSnapshot(json.loads(Path(path).read_text(encoding="utf-8")))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarise traces and metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a demo workload and dump metrics")
    demo.add_argument("--trace", help="record the event stream to this JSONL file")
    demo.add_argument("--json", action="store_true", help="emit JSON")

    summarize = sub.add_parser("summarize", help="condense a JSONL trace")
    summarize.add_argument("trace", help="path to a JSONL trace file")
    summarize.add_argument("--json", action="store_true", help="emit JSON")

    snapshot = sub.add_parser("snapshot", help="pretty-print a saved snapshot")
    snapshot.add_argument("file", help="path to a JSON metrics snapshot")
    snapshot.add_argument(
        "--flat", action="store_true", help="one dotted name per line"
    )

    diff = sub.add_parser("diff", help="subtract two saved snapshots")
    diff.add_argument("after", help="later snapshot (minuend)")
    diff.add_argument("before", help="earlier snapshot (subtrahend)")

    args = parser.parse_args(argv)

    if args.command == "demo":
        db = _demo_workload(args.trace)
        snap = db.metrics()
        if args.json:
            print(json.dumps(snap.as_dict(), indent=2, sort_keys=True))
        else:
            print(snap.render())
        if args.trace:
            print(f"\ntrace written to {args.trace}", file=sys.stderr)
        return 0

    if args.command == "summarize":
        events = read_trace(args.trace)
        summary = summarize_trace(events)
        if args.json:
            print(json.dumps(summary, indent=2))
        else:
            print(render_summary(summary))
        return 0

    if args.command == "snapshot":
        snap = _load_snapshot(args.file)
        if args.flat:
            for name, value in sorted(snap.flatten().items()):
                print(f"{name} = {value}")
        else:
            print(snap.render())
        return 0

    if args.command == "diff":
        delta = _load_snapshot(args.after) - _load_snapshot(args.before)
        print(delta.render())
        return 0

    return 2  # unreachable: argparse enforces a command


if __name__ == "__main__":
    raise SystemExit(main())
