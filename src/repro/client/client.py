"""Sync and async clients, the op builder, and the parsed result."""

from __future__ import annotations

import asyncio
import socket
from typing import Any

from repro.errors import CactisError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
    read_frame,
    recv_frame,
)


class ServerError(CactisError):
    """The server answered with an ``error`` frame."""


class TxnBuilder:
    """Compose a transaction's op list fluently.

    Every method appends one op and returns a ``{"$": k}`` reference to its
    result, so later ops can use it::

        txn = TxnBuilder()
        a = txn.create("node", weight=3)
        b = txn.create("node", weight=4)
        txn.connect(a, "outputs", b, "inputs")
        txn.get_attr(b, "total")
        result = client.run(txn)
    """

    def __init__(self) -> None:
        self.ops: list[list] = []

    def _add(self, op: list) -> dict:
        self.ops.append(op)
        return {"$": len(self.ops) - 1}

    def create(self, class_name: str, **intrinsics: Any) -> dict:
        return self._add(["create", class_name, intrinsics])

    def delete(self, iid: Any) -> dict:
        return self._add(["delete", iid])

    def connect(self, iid_a: Any, port_a: str, iid_b: Any, port_b: str) -> dict:
        return self._add(["connect", iid_a, port_a, iid_b, port_b])

    def disconnect(self, iid_a: Any, port_a: str, iid_b: Any, port_b: str) -> dict:
        return self._add(["disconnect", iid_a, port_a, iid_b, port_b])

    def set_attr(self, iid: Any, attr: str, value: Any) -> dict:
        return self._add(["set_attr", iid, attr, value])

    def get_attr(self, iid: Any, attr: str) -> dict:
        return self._add(["get_attr", iid, attr])


class TxnResult:
    """The terminal answer for one submitted transaction."""

    __slots__ = ("status", "results", "error", "restarts")

    def __init__(self, frame: dict) -> None:
        self.status: str = frame["status"]
        self.results: list = frame.get("results") or []
        self.error: str | None = frame.get("error")
        self.restarts: int = frame.get("restarts", 0)

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TxnResult(status={self.status!r}, results={self.results!r}, "
            f"error={self.error!r}, restarts={self.restarts})"
        )


def _ops_of(txn: "TxnBuilder | list") -> list:
    return txn.ops if isinstance(txn, TxnBuilder) else list(txn)


class ReproClient:
    """Blocking client: one request in flight at a time."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._max_frame_bytes = max_frame_bytes
        self._next_id = 1

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _roundtrip(self, request: dict) -> dict:
        rid = self._next_id
        self._next_id += 1
        request["id"] = rid
        self._sock.sendall(encode_frame(request, self._max_frame_bytes))
        response = recv_frame(self._sock, self._max_frame_bytes)
        if response is None:
            raise ProtocolError("server closed the connection")
        if response.get("t") == "error":
            raise ServerError(str(response.get("error")))
        if response.get("id") != rid:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request {rid}"
            )
        return response

    def ping(self) -> None:
        self._roundtrip({"t": "ping"})

    def metrics(self) -> dict:
        return self._roundtrip({"t": "metrics"})["metrics"]

    def run(self, txn: "TxnBuilder | list") -> TxnResult:
        """Submit one transaction and block for its terminal result."""
        return TxnResult(self._roundtrip({"t": "txn", "ops": _ops_of(txn)}))


class AsyncReproClient:
    """Asyncio client; pipelines many transactions per connection."""

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._max_frame_bytes = max_frame_bytes
        self._next_id = 1
        self._pending: dict[int, asyncio.Future] = {}
        self._pump: asyncio.Task | None = None

    async def connect(self, host: str, port: int) -> "AsyncReproClient":
        self._reader, self._writer = await asyncio.open_connection(host, port)
        self._pump = asyncio.ensure_future(self._pump_responses())
        return self

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._fail_pending(ProtocolError("client closed"))

    async def __aenter__(self) -> "AsyncReproClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _pump_responses(self) -> None:
        """Match response frames back to their submitters by request id."""
        try:
            while True:
                frame = await read_frame(self._reader, self._max_frame_bytes)
                if frame is None:
                    self._fail_pending(ProtocolError("server closed the connection"))
                    return
                future = self._pending.pop(frame.get("id"), None)
                if future is None or future.done():
                    continue  # e.g. an unsolicited error frame
                if frame.get("t") == "error":
                    future.set_exception(ServerError(str(frame.get("error"))))
                else:
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except (ProtocolError, ConnectionError, OSError) as exc:
            self._fail_pending(ProtocolError(f"connection lost: {exc}"))

    async def _request(self, request: dict) -> "asyncio.Future[dict]":
        rid = self._next_id
        self._next_id += 1
        request["id"] = rid
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending[rid] = future
        self._writer.write(encode_frame(request, self._max_frame_bytes))
        await self._writer.drain()
        return future

    async def ping(self) -> None:
        await (await self._request({"t": "ping"}))

    async def metrics(self) -> dict:
        frame = await (await self._request({"t": "metrics"}))
        return frame["metrics"]

    async def submit(self, txn: "TxnBuilder | list") -> "asyncio.Future[dict]":
        """Fire one transaction; returns the future of its raw result frame.

        This is the pipelining primitive: callers may submit many before
        awaiting any.  Use :meth:`run` for the one-shot convenience.
        """
        return await self._request({"t": "txn", "ops": _ops_of(txn)})

    async def run(self, txn: "TxnBuilder | list") -> TxnResult:
        return TxnResult(await (await self.submit(txn)))
