"""Thin client library for the :mod:`repro.server` wire protocol.

Two transports over the same frames: :class:`ReproClient` wraps a blocking
socket (one request, one response -- the shape tests and the smoke check
want), :class:`AsyncReproClient` wraps an asyncio stream pair and pipelines
-- many transactions may be in flight per connection, matched back to their
futures by request id.  :class:`TxnBuilder` composes the ``ops`` payload
(with ``ref()`` for referencing earlier results) without hand-writing
lists; :class:`TxnResult` is the parsed terminal answer.
"""

from repro.client.client import (
    AsyncReproClient,
    ReproClient,
    ServerError,
    TxnBuilder,
    TxnResult,
)

__all__ = [
    "AsyncReproClient",
    "ReproClient",
    "ServerError",
    "TxnBuilder",
    "TxnResult",
]
