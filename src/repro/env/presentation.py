"""Attribute-driven presentation (the paper's UIMS substitution).

"Cactis attributed graphs can be used to manage the user interface ...
Attribute evaluation rules are used to create, combine and control these
program fragments in order to manage a user interface.  This allows the
user interface to automatically reflect the state of the underlying data
regardless of how it is modified."

The Higgens UIMS itself is out of scope (separate papers); this module
reproduces the *database-side* mechanism with a text renderer:

* a :class:`ReportView` declares rows of ``(label, instance, attribute)``;
* every watched attribute gets a standing demand, so the engine keeps it
  evaluated through each propagation wave;
* :meth:`ReportView.render` rebuilds the panel text, and
  :meth:`ReportView.refresh_log` records one entry per render whose content
  actually changed -- making "the display reflects the data, however it was
  modified" an assertable property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database


@dataclass(frozen=True)
class ReportRow:
    """One line of the panel: a label plus the attribute it mirrors."""

    label: str
    iid: int
    attr: str
    fmt: str = "{}"


class ReportView:
    """A text panel that mirrors derived attributes of database objects."""

    def __init__(self, db: "Database", title: str = "report") -> None:
        self.db = db
        self.title = title
        self.rows: list[ReportRow] = []
        self._last_render: str | None = None
        #: one entry per render whose content differed from the previous.
        self.refresh_log: list[str] = []

    # -- construction ------------------------------------------------------------

    def add_row(self, label: str, iid: int, attr: str, fmt: str = "{}") -> None:
        """Mirror ``attr`` of instance ``iid``; keeps it eagerly evaluated."""
        self.rows.append(ReportRow(label, iid, attr, fmt))
        self.db.watch(iid, attr)

    def remove_rows_for(self, iid: int) -> None:
        """Stop mirroring a (typically deleted) instance."""
        for row in [r for r in self.rows if r.iid == iid]:
            self.db.unwatch(row.iid, row.attr)
            self.rows.remove(row)

    def close(self) -> None:
        for row in self.rows:
            self.db.unwatch(row.iid, row.attr)
        self.rows.clear()

    # -- rendering ------------------------------------------------------------

    def value_of(self, row: ReportRow) -> Any:
        return self.db.get_attr(row.iid, row.attr)

    def render(self) -> str:
        """Current panel text; logs a refresh when the content changed."""
        width = max((len(r.label) for r in self.rows), default=0)
        lines = [f"[{self.title}]"]
        for row in self.rows:
            value = row.fmt.format(self.value_of(row))
            lines.append(f"  {row.label.ljust(width)} : {value}")
        text = "\n".join(lines)
        if text != self._last_render:
            self._last_render = text
            self.refresh_log.append(text)
        return text

    def is_stale(self) -> bool:
        """True when some mirrored attribute changed since the last render.

        Watched slots are re-evaluated eagerly, so staleness means the
        *rendered text* lags the data, which a UI loop would use as its
        repaint trigger.
        """
        if self._last_render is None:
            return bool(self.rows)
        return self.render_preview() != self._last_render

    def render_preview(self) -> str:
        """The text render() would produce, without logging a refresh."""
        width = max((len(r.label) for r in self.rows), default=0)
        lines = [f"[{self.title}]"]
        for row in self.rows:
            value = row.fmt.format(self.value_of(row))
            lines.append(f"  {row.label.ljust(width)} : {value}")
        return "\n".join(lines)
