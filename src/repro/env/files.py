"""A simulated file system with logical modification times.

"While the Cactis model cannot directly handle the files that usually
constitute source, object, and executable programs, it can deal with them
indirectly ... it can represent a file stored in a normal file system
simply by its name."  The make facility (Figures 2-4) consumes exactly two
operations from its environment: ``file_mod_time(name)`` and
``system_command(cmd)``.  This module provides both, deterministically:

* :class:`SimulatedFileSystem` -- named files with contents and a logical
  clock that ticks on every write; ``mod_time`` returns
  :data:`~repro.core.atoms.TIME_FUTURE` for missing files, exactly as the
  paper specifies for ``file_mod_time``;
* :class:`CommandRunner` -- a registry of command handlers plus a journal
  of every command executed, so tests can assert *which* recompilations a
  build performed and in what order;
* :func:`toy_compiler` -- a handler for ``cc -o out in...`` commands that
  "compiles" by concatenating the inputs, enough to make rebuild effects
  observable in file contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.atoms import TIME_FUTURE
from repro.errors import CactisError


class FileError(CactisError):
    """A simulated-file operation failed (missing file, bad command)."""


@dataclass
class _File:
    content: str
    mtime: int


class SimulatedFileSystem:
    """Named files with contents and logical modification times."""

    def __init__(self) -> None:
        self._files: dict[str, _File] = {}
        self._clock = 0

    # -- clock ------------------------------------------------------------

    def tick(self) -> int:
        """Advance and return the logical clock."""
        self._clock += 1
        return self._clock

    @property
    def now(self) -> int:
        return self._clock

    # -- operations ------------------------------------------------------------

    def write(self, name: str, content: str) -> int:
        """Create or overwrite a file; returns its new mtime."""
        mtime = self.tick()
        self._files[name] = _File(content=content, mtime=mtime)
        return mtime

    def touch(self, name: str) -> int:
        """Bump a file's mtime without changing content (creates if absent)."""
        mtime = self.tick()
        existing = self._files.get(name)
        if existing is None:
            self._files[name] = _File(content="", mtime=mtime)
        else:
            existing.mtime = mtime
        return mtime

    def read(self, name: str) -> str:
        try:
            return self._files[name].content
        except KeyError:
            raise FileError(f"no such file: {name!r}") from None

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise FileError(f"no such file: {name!r}")
        del self._files[name]

    def exists(self, name: str) -> bool:
        return name in self._files

    def mod_time(self, name: str) -> int:
        """Last modification time; ``TIME_FUTURE`` when the file is missing.

        This is the paper's ``file_mod_time``: "returns the last
        modification time of the named file, or a time in the distant
        future if the file does not exist".
        """
        file = self._files.get(name)
        return file.mtime if file is not None else TIME_FUTURE

    def names(self) -> list[str]:
        return sorted(self._files)


#: a command handler receives (fs, command) and performs the effect.
CommandHandler = Callable[[SimulatedFileSystem, str], None]


class CommandRunner:
    """Executes "system" commands against the simulated file system.

    Handlers are matched by command prefix (first whitespace-separated
    word); every executed command is appended to :attr:`journal`.
    """

    def __init__(self, fs: SimulatedFileSystem) -> None:
        self.fs = fs
        self._handlers: dict[str, CommandHandler] = {}
        self.journal: list[str] = []

    def register(self, prefix: str, handler: CommandHandler) -> None:
        if prefix in self._handlers:
            raise FileError(f"handler for {prefix!r} already registered")
        self._handlers[prefix] = handler

    def run(self, command: str) -> None:
        """Execute a command; unknown prefixes raise :class:`FileError`."""
        command = command.strip()
        if not command:
            raise FileError("empty command")
        prefix = command.split()[0]
        handler = self._handlers.get(prefix)
        if handler is None:
            raise FileError(f"no handler for command {command!r}")
        self.journal.append(command)
        handler(self.fs, command)

    def commands_run(self) -> list[str]:
        return list(self.journal)

    def clear_journal(self) -> None:
        self.journal.clear()


def toy_compiler(fs: SimulatedFileSystem, command: str) -> None:
    """Handler for ``cc -o <out> <in>...``: writes out the "compiled" inputs.

    The output content embeds each input's name and content, so rebuild
    effects are observable and deterministic.
    """
    parts = command.split()
    if len(parts) < 4 or parts[0] != "cc" or parts[1] != "-o":
        raise FileError(f"toy compiler cannot parse {command!r}")
    out = parts[2]
    inputs = parts[3:]
    pieces = []
    for name in inputs:
        if not fs.exists(name):
            raise FileError(f"cc: missing input {name!r}")
        pieces.append(f"[{name}:{fs.read(name)}]")
    fs.write(out, "compiled(" + "+".join(pieces) + ")")


def make_default_runner(fs: SimulatedFileSystem) -> CommandRunner:
    """A runner with the toy compiler plus ``touch`` and ``link`` commands."""
    runner = CommandRunner(fs)
    runner.register("cc", toy_compiler)
    runner.register("touch", lambda f, cmd: f.touch(cmd.split()[1]))

    def linker(f: SimulatedFileSystem, cmd: str) -> None:
        # "ld -o <out> <in>..." -- same shape as the compiler.
        parts = cmd.split()
        if len(parts) < 4 or parts[1] != "-o":
            raise FileError(f"linker cannot parse {cmd!r}")
        out = parts[2]
        body = "+".join(f.read(name) for name in parts[3:])
        f.write(out, f"linked({body})")

    runner.register("ld", linker)
    return runner
