"""Syntax-directed editing over database objects.

The paper's evaluation machinery "extends techniques derived from Knuth's
attribute grammars as well as from more recent incremental attribute
evaluation work used in syntax directed editors", and Section 4 notes that
Cactis "can support a whole range of capabilities for dealing with programs
based on attribute grammars" (the Cornell Program Synthesizer lineage).

This module closes that loop: an arithmetic-expression syntax tree stored
*as Cactis objects*, with the classic synthesized attributes --

* ``value``  -- the subtree's computed value,
* ``depth``  -- subtree height (a display attribute),
* ``text``   -- the pretty-printed form, parentheses per precedence --

all derived by ordinary rules over a ``child`` relationship.  Editing a
leaf (``set_literal``) or restructuring the tree (``replace_child``) is a
plain database primitive; the incremental engine updates exactly the spine
above the edit, which is the editor-response-time property the cited
syntax-editor work is about.
"""

from __future__ import annotations

from repro.core.database import Database
from repro.core.rules import AttributeTarget, Local, Received, Rule, TransmitTarget
from repro.core.schema import (
    AttrKind,
    AttributeDef,
    End,
    FlowDecl,
    ObjectClass,
    PortDef,
    RelationshipType,
    Schema,
)
from repro.errors import CactisError

_OPS = {
    "+": (1, lambda a, b: a + b),
    "-": (1, lambda a, b: a - b),
    "*": (2, lambda a, b: a * b),
    "/": (2, lambda a, b: a // b if b else 0),
}


class SynTreeError(CactisError):
    """Syntax-tree misuse (arity violations, unknown operators)."""


def expression_schema() -> Schema:
    """Nodes: ``literal`` leaves and binary ``operation`` nodes."""
    schema = Schema()
    schema.add_relationship_type(
        RelationshipType(
            "child",
            [
                FlowDecl("value", "integer", End.PLUG, default=0),
                FlowDecl("depth", "integer", End.PLUG, default=0),
                FlowDecl("text", "string", End.PLUG, default="?"),
                FlowDecl("prec", "integer", End.PLUG, default=99),
            ],
        )
    )

    def combine_value(op: str, vs: list[int]) -> int:
        if len(vs) != 2:
            return 0  # incomplete tree: placeholder, per dummy semantics
        __, fn = _OPS[op]
        return fn(vs[0], vs[1])

    def combine_text(op: str, texts: list[str], precs: list[int]) -> str:
        if len(texts) != 2:
            return "?"
        prec, __ = _OPS[op]
        left = f"({texts[0]})" if precs[0] < prec else texts[0]
        right = f"({texts[1]})" if precs[1] <= prec else texts[1]
        return f"{left} {op} {right}"

    schema.add_class(
        ObjectClass(
            "literal",
            attributes=[
                AttributeDef("number", "integer"),
            ],
            ports=[PortDef("parent", "child", End.PLUG)],
            rules=[
                Rule(TransmitTarget("parent", "value"),
                     {"n": Local("number")}, lambda n: n),
                Rule(TransmitTarget("parent", "depth"), {}, lambda: 1),
                Rule(TransmitTarget("parent", "text"),
                     {"n": Local("number")}, lambda n: str(n)),
                Rule(TransmitTarget("parent", "prec"), {}, lambda: 99),
            ],
        )
    )
    schema.add_class(
        ObjectClass(
            "operation",
            attributes=[
                AttributeDef("op", "string", default="+"),
                AttributeDef("value", "integer", AttrKind.DERIVED),
                AttributeDef("depth", "integer", AttrKind.DERIVED),
                AttributeDef("text", "string", AttrKind.DERIVED),
            ],
            ports=[
                PortDef("parent", "child", End.PLUG),
                PortDef("children", "child", End.SOCKET, multi=True),
            ],
            rules=[
                Rule(
                    AttributeTarget("value"),
                    {"op": Local("op"), "vs": Received("children", "value")},
                    combine_value,
                ),
                Rule(
                    AttributeTarget("depth"),
                    {"ds": Received("children", "depth")},
                    lambda ds: 1 + max(ds, default=0),
                ),
                Rule(
                    AttributeTarget("text"),
                    {
                        "op": Local("op"),
                        "texts": Received("children", "text"),
                        "precs": Received("children", "prec"),
                    },
                    combine_text,
                ),
                Rule(TransmitTarget("parent", "value"),
                     {"v": Local("value")}, lambda v: v),
                Rule(TransmitTarget("parent", "depth"),
                     {"d": Local("depth")}, lambda d: d),
                Rule(TransmitTarget("parent", "text"),
                     {"t": Local("text")}, lambda t: t),
                Rule(
                    TransmitTarget("parent", "prec"),
                    {"op": Local("op")},
                    lambda op: _OPS[op][0],
                ),
            ],
        )
    )
    return schema.freeze()


class ExpressionTree:
    """An editable expression whose semantics live in the database."""

    def __init__(self, db: Database | None = None) -> None:
        self.db = db if db is not None else Database(expression_schema())

    # -- construction ------------------------------------------------------------

    def literal(self, number: int) -> int:
        return self.db.create("literal", number=number)

    def operation(self, op: str, left: int, right: int) -> int:
        if op not in _OPS:
            raise SynTreeError(f"unknown operator {op!r}")
        with self._atomic("operation"):
            node = self.db.create("operation", op=op)
            self.db.connect(node, "children", left, "parent")
            self.db.connect(node, "children", right, "parent")
        return node

    def _atomic(self, label: str):
        """One editor gesture = one transaction (so Undo is gesture-level).

        Nested gestures (parse building operations) join the outer
        transaction instead of opening their own.
        """
        from contextlib import nullcontext

        if self.db.txn.in_transaction:
            return nullcontext()
        return self.db.transaction(label)

    def parse(self, source: str) -> int:
        """Build a tree from an infix string (reusing the mini parser)."""
        from repro.env.flow import minilang as ml

        program = ml.parse_program(f"__root__ = {source};")
        assign = program.body[0]
        assert isinstance(assign, ml.Assign)

        def build(expr) -> int:
            if isinstance(expr, ml.Num):
                return self.literal(expr.value)
            if isinstance(expr, ml.BinOp) and expr.op in _OPS:
                return self.operation(
                    expr.op, build(expr.left), build(expr.right)
                )
            raise SynTreeError(f"unsupported construct {expr!r}")

        with self._atomic("parse"):
            return build(assign.value)

    # -- editing ------------------------------------------------------------

    def set_literal(self, leaf: int, number: int) -> None:
        self.db.set_attr(leaf, "number", number)

    def set_operator(self, node: int, op: str) -> None:
        if op not in _OPS:
            raise SynTreeError(f"unknown operator {op!r}")
        self.db.set_attr(node, "op", op)

    def replace_child(self, node: int, old_child: int, new_child: int) -> None:
        """Structural edit: swap a subtree, preserving operand order."""
        children = self.db.view(node).connections("children")
        if old_child not in children:
            raise SynTreeError(f"{old_child} is not a child of {node}")
        index = children.index(old_child)
        # Disconnect everything from `index` on, then reconnect with the
        # replacement in place (connection order is operand order).
        with self._atomic("replace_child"):
            tail = children[index:]
            for child in tail:
                self.db.disconnect(node, "children", child, "parent")
            tail[0] = new_child
            for child in tail:
                self.db.connect(node, "children", child, "parent")

    # -- readout ------------------------------------------------------------

    def value(self, node: int) -> int:
        if self.db.instance(node).class_name == "literal":
            return self.db.get_attr(node, "number")
        return self.db.get_attr(node, "value")

    def text(self, node: int) -> str:
        if self.db.instance(node).class_name == "literal":
            return str(self.db.get_attr(node, "number"))
        return self.db.get_attr(node, "text")

    def depth(self, node: int) -> int:
        if self.db.instance(node).class_name == "literal":
            return 1
        return self.db.get_attr(node, "depth")
