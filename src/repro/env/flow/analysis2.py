"""Further dataflow analyses: constant propagation and available expressions.

Completes the classic repertoire the paper's citations cover ([FoO76],
[BaJ78] survey exactly these) over the same fixed-point machinery:

* **constant propagation** (forward, must): each variable maps to bottom
  (no information), a concrete constant, or TOP (conflicting values).  The
  transfer function evaluates right-hand sides over the constant
  environment; merges join pointwise.  Derived diagnostic:
  :func:`constant_folds` -- expressions whose value is fully known.
* **available expressions** (forward, must-intersect): a binary expression
  is available at a node when every path computed it and none of its
  operands were redefined since.  Derived diagnostic:
  :func:`redundant_computations` -- re-evaluations of available
  expressions, the classic CSE opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.env.flow import minilang as ml
from repro.env.flow.cfg import CfgNode, ControlFlowGraph
from repro.evaluation.fixedpoint import CircularAttributeSystem

# Constant lattice: BOTTOM < concrete int < TOP.
BOTTOM = "__bottom__"
TOP = "__top__"

ConstValue = Union[int, str]  # int, or one of the sentinels
ConstEnv = tuple  # sorted tuple of (var, value) pairs -- hashable & comparable


def _env_get(env: ConstEnv, var: str) -> ConstValue:
    for name, value in env:
        if name == var:
            return value
    return BOTTOM


def _env_set(env: ConstEnv, var: str, value: ConstValue) -> ConstEnv:
    items = [(n, v) for n, v in env if n != var]
    if value != BOTTOM:
        items.append((var, value))
    return tuple(sorted(items))


def _join_values(a: ConstValue, b: ConstValue) -> ConstValue:
    if a == BOTTOM:
        return b
    if b == BOTTOM:
        return a
    if a == b:
        return a
    return TOP


def _join_envs(envs: list[ConstEnv]) -> ConstEnv:
    merged: dict[str, ConstValue] = {}
    for env in envs:
        for var, value in env:
            merged[var] = _join_values(merged.get(var, BOTTOM), value)
    return tuple(sorted(merged.items()))


def _eval_const(expr: ml.MExpr, env: ConstEnv) -> ConstValue:
    if isinstance(expr, ml.Num):
        return expr.value
    if isinstance(expr, ml.Var):
        return _env_get(env, expr.name)
    left = _eval_const(expr.left, env)
    right = _eval_const(expr.right, env)
    if left in (BOTTOM, TOP) or right in (BOTTOM, TOP):
        return TOP if TOP in (left, right) else BOTTOM
    assert isinstance(left, int) and isinstance(right, int)
    op = expr.op
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left // right if right else TOP
        return int(
            {"<": left < right, ">": left > right, "<=": left <= right,
             ">=": left >= right, "==": left == right, "!=": left != right}[op]
        )
    except KeyError:  # pragma: no cover - grammar bounds the operators
        return TOP


@dataclass
class ConstantPropagation:
    """Solved constant facts."""

    env_in: dict[int, ConstEnv]
    env_out: dict[int, ConstEnv]
    iterations: int

    def constant_at(self, node_id: int, var: str) -> int | None:
        """The known constant value of ``var`` entering a node, if any."""
        value = _env_get(self.env_in[node_id], var)
        return value if isinstance(value, int) else None


def constant_propagation(cfg: ControlFlowGraph) -> ConstantPropagation:
    """Solve constant propagation over the CFG."""
    system = CircularAttributeSystem()
    for node in cfg.nodes.values():
        nid = node.node_id
        preds = list(node.predecessors)
        system.define(
            ("in", nid),
            [("out", p) for p in preds],
            lambda *outs: _join_envs([o for o in outs if o is not None]),
            bottom=(),
        )
        system.define(
            ("out", nid),
            [("in", nid)],
            _make_const_transfer(node),
            bottom=(),
        )
    values = system.solve()
    return ConstantPropagation(
        env_in={nid: values[("in", nid)] for nid in cfg.nodes},
        env_out={nid: values[("out", nid)] for nid in cfg.nodes},
        iterations=system.iterations,
    )


def _make_const_transfer(node: CfgNode):
    if node.kind != "assign":
        return lambda env: env if env is not None else ()
    # Reconstruct the assignment's RHS from the label is fragile; keep the
    # AST alongside instead: the CFG stores it in ``node.rhs`` when built
    # via build_cfg_with_ast below, else fall back to TOP.
    rhs = getattr(node, "rhs", None)
    var = node.defines

    def transfer(env):
        env = env if env is not None else ()
        value = _eval_const(rhs, env) if rhs is not None else TOP
        return _env_set(env, var, value)

    return transfer


def attach_rhs_asts(cfg: ControlFlowGraph, program: ml.Program) -> None:
    """Attach assignment RHS ASTs to CFG nodes (needed by constant prop).

    Statements are matched to nodes in program order; the CFG builder
    creates nodes in that same order.
    """
    assigns: list[ml.Assign] = []

    def walk(stmts):
        for stmt in stmts:
            if isinstance(stmt, ml.Assign):
                assigns.append(stmt)
            elif isinstance(stmt, ml.If):
                walk(stmt.then_body)
                walk(stmt.else_body)
            elif isinstance(stmt, ml.While):
                walk(stmt.body)

    walk(program.body)
    assign_nodes = [n for n in cfg.nodes.values() if n.kind == "assign"]
    for node, stmt in zip(assign_nodes, assigns):
        node.rhs = stmt.value  # type: ignore[attr-defined]


def constant_folds(cfg: ControlFlowGraph) -> list[tuple[int, str, int]]:
    """``(node_id, label, value)`` for assignments with fully known RHS."""
    cp = constant_propagation(cfg)
    folds = []
    for node in cfg.statement_nodes():
        rhs = getattr(node, "rhs", None)
        if node.kind != "assign" or rhs is None:
            continue
        value = _eval_const(rhs, cp.env_in[node.node_id])
        if isinstance(value, int):
            folds.append((node.node_id, node.label, value))
    return folds


# ---------------------------------------------------------------------------
# available expressions
# ---------------------------------------------------------------------------

_ALL = "__all__"  # the top element of the must-intersect lattice


def _expressions_of(node: CfgNode) -> frozenset[str]:
    rhs = getattr(node, "rhs", None)
    result: set[str] = set()

    def walk(expr) -> None:
        if isinstance(expr, ml.BinOp):
            result.add(_render(expr))
            walk(expr.left)
            walk(expr.right)

    if rhs is not None:
        walk(rhs)
    return frozenset(result)


def _render(expr: ml.MExpr) -> str:
    if isinstance(expr, ml.Num):
        return str(expr.value)
    if isinstance(expr, ml.Var):
        return expr.name
    return f"({_render(expr.left)} {expr.op} {_render(expr.right)})"


def _expr_uses(text_expr: str, var: str) -> bool:
    # Conservative: textual containment on rendered operands.
    import re

    return re.search(rf"\b{re.escape(var)}\b", text_expr) is not None


@dataclass
class AvailableExpressions:
    """Solved availability facts (must, forward)."""

    avail_in: dict[int, frozenset[str]]
    avail_out: dict[int, frozenset[str]]
    iterations: int


def available_expressions(cfg: ControlFlowGraph) -> AvailableExpressions:
    """Solve available expressions over the CFG (requires RHS ASTs)."""
    system = CircularAttributeSystem()
    universe: set[str] = set()
    for node in cfg.nodes.values():
        universe.update(_expressions_of(node))
    top = frozenset(universe)

    for node in cfg.nodes.values():
        nid = node.node_id
        preds = list(node.predecessors)
        if not preds:
            system.define(("in", nid), [], lambda: frozenset(), bottom=top)
        else:
            system.define(
                ("in", nid),
                [("out", p) for p in preds],
                lambda *outs: _intersect(
                    [o if o is not None else top for o in outs], top
                ),
                bottom=top,
            )
        gen = _expressions_of(node)
        define = node.defines

        def transfer(inset, gen=gen, define=define, top=top):
            inset = inset if inset is not None else top
            result = set(inset) | set(gen)
            if define is not None:
                result = {e for e in result if not _expr_uses(e, define)}
            return frozenset(result)

        system.define(("out", nid), [("in", nid)], transfer, bottom=top)
    values = system.solve()
    return AvailableExpressions(
        avail_in={nid: values[("in", nid)] for nid in cfg.nodes},
        avail_out={nid: values[("out", nid)] for nid in cfg.nodes},
        iterations=system.iterations,
    )


def _intersect(sets, top):
    result = set(top)
    for s in sets:
        result &= s
    return frozenset(result)


def redundant_computations(cfg: ControlFlowGraph) -> list[tuple[int, str, str]]:
    """``(node_id, label, expression)`` where an available expression is
    recomputed -- the classic common-subexpression opportunity."""
    availability = available_expressions(cfg)
    findings = []
    for node in cfg.statement_nodes():
        for expr in sorted(_expressions_of(node)):
            if expr in availability.avail_in[node.node_id]:
                findings.append((node.node_id, node.label, expr))
    return findings
