"""Program flow analysis via attribute evaluation.

* :mod:`repro.env.flow.minilang` -- the goto-less mini language.
* :mod:`repro.env.flow.cfg` -- control-flow graph construction.
* :mod:`repro.env.flow.analysis` -- reaching definitions, live variables,
  and the derived diagnostics (uninitialised uses, dead stores), solved
  with the Farrow fixed-point evaluator so ``while`` loops (cyclic flow
  graphs) are supported -- the extension the paper says was "being
  incorporated into Cactis".
"""

from repro.env.flow.analysis import (
    Diagnostic,
    LiveVariables,
    ReachingDefinitions,
    dead_stores,
    live_variables,
    reaching_definitions,
    uninitialized_uses,
)
from repro.env.flow.analysis2 import (
    AvailableExpressions,
    ConstantPropagation,
    attach_rhs_asts,
    available_expressions,
    constant_folds,
    constant_propagation,
    redundant_computations,
)
from repro.env.flow.cfg import CfgNode, ControlFlowGraph, build_cfg
from repro.env.flow.minilang import Program, parse_program, variables_used

__all__ = [
    "AvailableExpressions",
    "ConstantPropagation",
    "attach_rhs_asts",
    "available_expressions",
    "constant_folds",
    "constant_propagation",
    "redundant_computations",
    "CfgNode",
    "ControlFlowGraph",
    "Diagnostic",
    "LiveVariables",
    "Program",
    "ReachingDefinitions",
    "build_cfg",
    "dead_stores",
    "live_variables",
    "parse_program",
    "reaching_definitions",
    "uninitialized_uses",
    "variables_used",
]
